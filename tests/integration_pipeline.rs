//! Cross-crate integration tests: datagen → sparse → arnoldi → experiments,
//! exercised through the facade crate exactly as a downstream user would.

use lp_arnoldi::arith::types::{Posit16, Takum16};
use lp_arnoldi::datagen::{graph_laplacian_corpus, CorpusConfig, GraphClass};
use lp_arnoldi::experiments::{
    cumulative_distribution, ExperimentConfig, ExperimentPlan, FormatTag, Metric,
};
use lp_arnoldi::sparse::normalized_laplacian;
use lp_arnoldi::{partial_schur, ArnoldiOptions, Real, Which};

#[test]
fn graph_laplacian_eigenvalues_in_low_precision_formats() {
    // Small-world graph -> normalized Laplacian -> largest eigenvalues in two
    // tapered formats; they must agree with float64 to roughly their eps.
    let adj = lp_arnoldi::datagen::graphs::watts_strogatz(72, 3, 0.2, 11);
    let lap = normalized_laplacian(&adj.symmetrize());
    let opts = ArnoldiOptions { nev: 5, which: Which::LargestMagnitude, tol: 1e-10, ..Default::default() };
    let (ps64, _) = partial_schur(&lap, &opts).expect("float64");
    let mut ref_eigs = ps64.real_eigenvalues();
    ref_eigs.sort_by(|a, b| b.partial_cmp(a).unwrap());

    fn largest<T: lp_arnoldi::arith::BatchReal>(lap: &lp_arnoldi::CsrMatrix<f64>) -> f64 {
        let a = lap.convert::<T>();
        let opts = ArnoldiOptions { nev: 5, tol: 1e-4, max_restarts: 80, ..Default::default() };
        let (ps, _) = partial_schur(&a, &opts).expect(T::NAME);
        ps.real_eigenvalues().iter().map(|x| x.to_f64()).fold(f64::MIN, f64::max)
    }
    let p16 = largest::<Posit16>(&lap);
    let t16 = largest::<Takum16>(&lap);
    assert!((p16 - ref_eigs[0]).abs() < 3e-2, "posit16 {p16} vs {}", ref_eigs[0]);
    assert!((t16 - ref_eigs[0]).abs() < 3e-2, "takum16 {t16} vs {}", ref_eigs[0]);
}

#[test]
fn experiment_pipeline_over_a_tiny_graph_class() {
    // One class, three formats, a couple of matrices: the cumulative error
    // distributions must be well formed and float64 must dominate.
    let corpus: Vec<_> = graph_laplacian_corpus(&CorpusConfig {
        scale: 1,
        size_range: (36, 44),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .filter(|t| t.class() == Some(GraphClass::Infrastructure))
    .take(3)
    .collect();
    assert!(!corpus.is_empty());

    let cfg = ExperimentConfig {
        eigenvalue_count: 5,
        eigenvalue_buffer_count: 2,
        max_restarts: 60,
        ..Default::default()
    };
    let formats = [FormatTag::Float64, FormatTag::Bfloat16, FormatTag::Takum16];
    let results = ExperimentPlan::over(&corpus).formats(&formats).config(cfg).run();
    assert_eq!(results.matrices.len() + results.skipped.len(), corpus.len());

    let d64 = cumulative_distribution(&results, FormatTag::Float64, Metric::Eigenvalues);
    let dt16 = cumulative_distribution(&results, FormatTag::Takum16, Metric::Eigenvalues);
    let dbf = cumulative_distribution(&results, FormatTag::Bfloat16, Metric::Eigenvalues);
    // float64 errors are orders of magnitude below the 16-bit formats'.
    if let (Some(a), Some(b)) = (d64.median_log10(), dt16.median_log10()) {
        assert!(a < b - 3.0, "float64 {a} vs takum16 {b}");
    }
    // Every run is accounted for.
    for d in [&d64, &dt16, &dbf] {
        assert_eq!(d.sorted_errors.len() + d.not_converged + d.range_exceeded, d.total);
    }
}

#[test]
fn matrix_market_roundtrip_through_laplacian_pipeline() {
    // Write an adjacency matrix to Matrix Market, read it back, and run the
    // Laplacian + Arnoldi pipeline on the result.
    let adj = lp_arnoldi::datagen::graphs::ring_with_chords(50, 10, 3);
    let mut buf = Vec::new();
    lp_arnoldi::sparse::write_matrix_market(&adj, &mut buf).unwrap();
    let back: lp_arnoldi::CsrMatrix<f64> = lp_arnoldi::sparse::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(back.nnz(), adj.nnz());
    let lap = normalized_laplacian(&back.symmetrize());
    let opts = ArnoldiOptions { nev: 4, tol: 1e-8, ..Default::default() };
    let (ps, hist) = partial_schur(&lap, &opts).unwrap();
    assert!(hist.converged);
    for e in ps.real_eigenvalues() {
        assert!(e > -1e-9 && e < 2.0 + 1e-9, "normalized Laplacian eigenvalue {e} outside [0,2]");
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The facade exposes the arithmetic directly.
    let x = lp_arnoldi::arith::Takum32::from_f64(0.1);
    let y = lp_arnoldi::arith::Posit32::from_f64(0.1);
    assert!((x.to_f64() - 0.1).abs() < 1e-7);
    assert!((y.to_f64() - 0.1).abs() < 1e-7);
    let d = lp_arnoldi::Dd::from_f64(2.0).sqrt();
    assert!((d.to_f64() - std::f64::consts::SQRT_2).abs() < 1e-15);
}
