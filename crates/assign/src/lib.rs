//! # lpa-assign — Hungarian (Kuhn–Munkres) assignment
//!
//! The experiment harness matches computed eigenvectors to reference
//! eigenvectors by maximizing total absolute cosine similarity.  As in the
//! paper (which uses `Hungarian.jl`), the optimal permutation is found with
//! the Hungarian algorithm; the cost matrices are tiny
//! (`eigenvalue_count + buffer` ≈ 12), so the `O(n^3)` complexity is
//! irrelevant.
//!
//! The implementation is the shortest-augmenting-path formulation (a.k.a.
//! the Jonker–Volgenant variant of Kuhn–Munkres) for square cost matrices of
//! `f64` values; it minimizes total cost.  Use [`maximize_similarity`] for
//! the similarity-maximization wrapper used by the pipeline.

/// Solve the square assignment problem, minimizing total cost.
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`.  Returns
/// `perm` with `perm[i] = j` meaning row `i` is assigned column `j`.
///
/// # Panics
///
/// Panics if the matrix is not square or contains NaN.
pub fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(cost.iter().all(|row| row.len() == n), "cost matrix must be square");
    assert!(
        cost.iter().all(|row| row.iter().all(|c| !c.is_nan())),
        "cost matrix must not contain NaN"
    );

    // Shortest augmenting path algorithm with potentials, 1-based sentinel
    // column 0 (standard e-maxx formulation).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[j] = row assigned to column j (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut perm = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            perm[p[j] - 1] = j - 1;
        }
    }
    perm
}

/// Total cost of an assignment.
pub fn assignment_cost(cost: &[Vec<f64>], perm: &[usize]) -> f64 {
    perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum()
}

/// Find the permutation maximizing the total similarity
/// (`similarity[i][j]` = similarity between reference `i` and candidate `j`),
/// by minimizing the negated matrix — exactly how the paper feeds its
/// absolute cosine similarity matrix to the Hungarian algorithm.
pub fn maximize_similarity(similarity: &[Vec<f64>]) -> Vec<usize> {
    let neg: Vec<Vec<f64>> =
        similarity.iter().map(|row| row.iter().map(|&s| -s).collect()).collect();
    hungarian(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal assignment for small n.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        permutations(cost.len())
            .into_iter()
            .map(|p| assignment_cost(cost, &p))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn simple_cases() {
        assert_eq!(hungarian(&[]), Vec::<usize>::new());
        assert_eq!(hungarian(&[vec![5.0]]), vec![0]);
        // Classic example.
        let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]];
        let perm = hungarian(&cost);
        assert_eq!(assignment_cost(&cost, &perm), 5.0);
        assert_eq!(perm, vec![1, 0, 2]);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_dominant_similarity() {
        let n = 6;
        let sim: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n).map(|j| if i == j { 0.99 } else { 0.01 * ((i + j) as f64 % 3.0) }).collect()
            })
            .collect();
        let perm = maximize_similarity(&sim);
        assert_eq!(perm, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn detects_swapped_pairs() {
        // Reference vectors 0 and 1 are swapped among the candidates.
        let sim = vec![
            vec![0.1, 0.98, 0.05],
            vec![0.97, 0.2, 0.01],
            vec![0.02, 0.03, 0.99],
        ];
        let perm = maximize_similarity(&sim);
        assert_eq!(perm, vec![1, 0, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut seed = 123u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in 1..=6usize {
            for _ in 0..30 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| (rand() * 20.0).round()).collect()).collect();
                let perm = hungarian(&cost);
                // Valid permutation.
                let mut seen = vec![false; n];
                for &j in &perm {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                let best = brute_force(&cost);
                assert!(
                    (assignment_cost(&cost, &perm) - best).abs() < 1e-9,
                    "n={n}: {} vs {best}",
                    assignment_cost(&cost, &perm)
                );
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 2.0], vec![1.0, -3.0]];
        let perm = hungarian(&cost);
        assert_eq!(assignment_cost(&cost, &perm), -8.0);
    }
}
