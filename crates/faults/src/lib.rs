//! # lpa-faults — vendored fail-point facility
//!
//! A minimal, dependency-free take on the `fail_point!` pattern that
//! production stores (tikv-fail, Sui) build their failure testing on:
//! every interesting failure mode of the workspace is a **named fault
//! point**, armed from the outside, so crash isolation, store healing and
//! retry policies can be exercised deterministically in tests and CI
//! without ever shipping a "break things" code path that is on by default.
//!
//! ## Fault points
//!
//! The registry is fixed (arming an unknown name is a configuration error,
//! not a silent no-op):
//!
//! | point                | effect at the instrumented site                  |
//! |----------------------|--------------------------------------------------|
//! | `store.read.corrupt` | artifact bytes are flipped after the disk read   |
//! | `store.write.torn`   | the artifact frame is truncated before the write |
//! | `store.io.transient` | the raw I/O op fails with `ErrorKind::Interrupted` |
//! | `solver.panic`       | the solve panics (`injected fault: solver.panic`) |
//! | `solver.stall`       | each Arnoldi restart sleeps ~25 ms               |
//!
//! ## Arming: the `LPA_FAULTS` spec
//!
//! Per the harness knob discipline, the environment variable is read in
//! exactly one place — this module. Grammar (comma-separated, no spaces
//! required):
//!
//! ```text
//! LPA_FAULTS="<point>=<trigger>[,<point>=<trigger>...][,seed=N]"
//! trigger := off | once | always | prob:P        (0 <= P <= 1)
//! ```
//!
//! e.g. `LPA_FAULTS="store.read.corrupt=prob:0.2,solver.panic=once,seed=7"`.
//! `once` fires on the first evaluation only; `prob:P` draws from a
//! splitmix64 stream seeded by `seed ^ hash(point)` and advanced once per
//! evaluation, so a given spec fires at exactly the same evaluation indices
//! on every run. A malformed spec or unknown point name panics (mirroring
//! `LPA_ARITH_TIER`): a typo must not silently disarm a fault run.
//!
//! ## Disarmed cost
//!
//! When `LPA_FAULTS` is unset (every production run), [`fired`] compiles to
//! a single relaxed atomic load and a branch — the spec registry, the RNG
//! and the string comparison are all behind the armed branch. The
//! `micro_kernels` bench guards this.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Artifact bytes are corrupted in memory after the disk read.
pub const STORE_READ_CORRUPT: &str = "store.read.corrupt";
/// The encoded artifact frame is truncated before the disk write.
pub const STORE_WRITE_TORN: &str = "store.write.torn";
/// A raw store I/O operation fails with a retryable error.
pub const STORE_IO_TRANSIENT: &str = "store.io.transient";
/// The solver panics at the start of a solve.
pub const SOLVER_PANIC: &str = "solver.panic";
/// Each Arnoldi restart sleeps, so deadlines can be exercised quickly.
pub const SOLVER_STALL: &str = "solver.stall";
/// An `lpa-serve` worker panics at the start of a request — exercises
/// the daemon's unwind isolation (degraded but alive, typed error
/// response, permit returned).
pub const SERVE_WORKER_PANIC: &str = "serve.worker.panic";

/// Every fault point the workspace defines.
pub const POINTS: [&str; 6] = [
    STORE_READ_CORRUPT,
    STORE_WRITE_TORN,
    STORE_IO_TRANSIENT,
    SOLVER_PANIC,
    SOLVER_STALL,
    SERVE_WORKER_PANIC,
];

const UNSET: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

/// Tri-state gate: `UNSET` until the first evaluation, then `DISARMED`
/// (the permanent state of every production run — one relaxed load) or
/// `ARMED` (the spec registry is consulted).
static STATE: AtomicU8 = AtomicU8::new(UNSET);

/// The armed spec; only locked on the armed path and while (dis)arming.
static SPEC: Mutex<Option<Spec>> = Mutex::new(None);

/// Serializes tests that arm the process-global registry.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    Off,
    Once,
    Always,
    Prob(f64),
}

#[derive(Debug)]
struct PointState {
    name: &'static str,
    trigger: Trigger,
    /// `once` not yet consumed.
    pending_once: bool,
    /// Evaluations so far (the `prob` stream position).
    draws: u64,
}

#[derive(Debug)]
struct Spec {
    /// The original spec string, for reporting (bench config, logs).
    text: String,
    seed: u64,
    points: Vec<PointState>,
}

/// Should the named fault point fire now? Disarmed cost: one relaxed
/// atomic load. Panics if `name` is not in [`POINTS`] while armed.
#[inline]
pub fn fired(name: &'static str) -> bool {
    match STATE.load(Ordering::Relaxed) {
        DISARMED => false,
        ARMED => fired_armed(name),
        _ => {
            init_from_env();
            fired(name)
        }
    }
}

/// Is any fault armed at all (after lazy env initialization)?
pub fn armed() -> bool {
    if STATE.load(Ordering::Relaxed) == UNSET {
        init_from_env();
    }
    STATE.load(Ordering::Relaxed) == ARMED
}

/// The armed spec string, if any — for run provenance (bench config).
pub fn active_spec() -> Option<String> {
    if !armed() {
        return None;
    }
    lock_spec().as_ref().map(|s| s.text.clone())
}

/// Panic with a recognizable message when the point fires. The injected
/// panic is what the driver's per-cell `catch_unwind` turns into
/// `Outcome::Crashed`.
#[inline]
pub fn inject_panic(name: &'static str) {
    if fired(name) {
        panic!("injected fault: {name}");
    }
}

/// Sleep ~25 ms when the point fires (long against any test deadline,
/// short against a test suite).
#[inline]
pub fn stall(name: &'static str) {
    if fired(name) {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// Deterministically corrupt `bytes` in place when the point fires: the
/// middle byte is flipped (every bit), which defeats any checksum while
/// keeping the damage reproducible.
#[inline]
pub fn corrupt_if(name: &'static str, bytes: &mut [u8]) {
    if fired(name) && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
    }
}

/// Arm the registry programmatically for the lifetime of the returned
/// guard, which also serializes concurrent arming tests (the registry is
/// process-global). Dropping the guard disarms everything.
pub struct FaultScope {
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Parse and arm `spec` (same grammar as `LPA_FAULTS`); panics on a
    /// malformed spec.
    pub fn arm(spec: &str) -> FaultScope {
        let serial = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(parse_spec(spec).unwrap_or_else(|e| panic!("fault spec: {e}")));
        FaultScope { _serial: serial }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *lock_spec() = None;
        STATE.store(DISARMED, Ordering::Relaxed);
    }
}

fn lock_spec() -> MutexGuard<'static, Option<Spec>> {
    // An injected panic can never unwind while this lock is held (all
    // helpers release it before panicking), but a *test* panic elsewhere
    // may poison it; the registry is always in a consistent state.
    SPEC.lock().unwrap_or_else(|e| e.into_inner())
}

fn install(spec: Spec) {
    *lock_spec() = Some(spec);
    STATE.store(ARMED, Ordering::Relaxed);
}

/// First-evaluation path: parse `LPA_FAULTS` (the variable's only read in
/// the workspace) and settle the gate. Racing threads both parse; the
/// result is identical, and the gate is monotone `UNSET -> {DISARMED,ARMED}`.
#[cold]
fn init_from_env() {
    let value = std::env::var("LPA_FAULTS").ok().filter(|v| !v.trim().is_empty());
    match value {
        None => {
            let _ = STATE.compare_exchange(UNSET, DISARMED, Ordering::Relaxed, Ordering::Relaxed);
        }
        Some(text) => {
            install(parse_spec(&text).unwrap_or_else(|e| panic!("LPA_FAULTS: {e}")));
        }
    }
}

#[cold]
fn fired_armed(name: &'static str) -> bool {
    let mut guard = lock_spec();
    let Some(spec) = guard.as_mut() else { return false };
    let seed = spec.seed;
    let Some(p) = spec.points.iter_mut().find(|p| p.name == name) else {
        assert!(POINTS.contains(&name), "unknown fault point {name:?} evaluated");
        return false;
    };
    let draw = p.draws;
    p.draws += 1;
    match p.trigger {
        Trigger::Off => false,
        Trigger::Always => true,
        Trigger::Once => {
            let fire = p.pending_once;
            p.pending_once = false;
            fire
        }
        Trigger::Prob(prob) => {
            let r = splitmix64(seed ^ fnv1a(name.as_bytes()) ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // 53 uniform bits -> [0, 1).
            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
            u < prob
        }
    }
}

fn parse_spec(text: &str) -> Result<Spec, String> {
    let mut seed = 0u64;
    let mut points: Vec<PointState> = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| format!("expected <point>=<trigger>, got {part:?}"))?;
        let (name, value) = (name.trim(), value.trim());
        if name == "seed" {
            seed = value.parse().map_err(|_| format!("seed must be an integer, got {value:?}"))?;
            continue;
        }
        let canonical = *POINTS
            .iter()
            .find(|p| **p == name)
            .ok_or_else(|| format!("unknown fault point {name:?} (known: {})", POINTS.join(", ")))?;
        if points.iter().any(|p| p.name == canonical) {
            return Err(format!("fault point {name:?} armed twice"));
        }
        let trigger = parse_trigger(value)?;
        points.push(PointState {
            name: canonical,
            trigger,
            pending_once: trigger == Trigger::Once,
            draws: 0,
        });
    }
    if points.is_empty() {
        return Err("no fault points armed".to_string());
    }
    Ok(Spec { text: text.to_string(), seed, points })
}

fn parse_trigger(value: &str) -> Result<Trigger, String> {
    match value {
        "off" => Ok(Trigger::Off),
        "once" => Ok(Trigger::Once),
        "always" => Ok(Trigger::Always),
        _ => match value.strip_prefix("prob:") {
            Some(p) => {
                let p: f64 =
                    p.parse().map_err(|_| format!("prob wants a number, got {value:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("prob {p} outside [0, 1]"));
                }
                Ok(Trigger::Prob(p))
            }
            None => Err(format!("unknown trigger {value:?} (off|once|always|prob:P)")),
        },
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share the process-global registry; FaultScope serializes
    // them, and the disarmed assertions run inside a scope-free window of
    // their own lock acquisition.

    #[test]
    fn disarmed_points_never_fire() {
        let _serial = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        *lock_spec() = None;
        STATE.store(DISARMED, Ordering::Relaxed);
        for p in POINTS {
            assert!(!fired(p));
        }
        let mut bytes = vec![1, 2, 3];
        corrupt_if(STORE_READ_CORRUPT, &mut bytes);
        assert_eq!(bytes, vec![1, 2, 3]);
        inject_panic(SOLVER_PANIC); // must not panic
    }

    #[test]
    fn once_fires_exactly_once_and_always_always() {
        let _scope = FaultScope::arm("solver.panic=once,solver.stall=always");
        assert!(fired(SOLVER_PANIC));
        assert!(!fired(SOLVER_PANIC));
        assert!(!fired(SOLVER_PANIC));
        assert!(fired(SOLVER_STALL));
        assert!(fired(SOLVER_STALL));
        // Unarmed (but known) points do not fire.
        assert!(!fired(STORE_READ_CORRUPT));
    }

    #[test]
    fn prob_stream_is_deterministic_and_roughly_calibrated() {
        let draws = |spec: &str| -> Vec<bool> {
            let _scope = FaultScope::arm(spec);
            (0..400).map(|_| fired(STORE_READ_CORRUPT)).collect()
        };
        let a = draws("store.read.corrupt=prob:0.2,seed=7");
        let b = draws("store.read.corrupt=prob:0.2,seed=7");
        assert_eq!(a, b, "same spec, same stream");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((40..=160).contains(&hits), "p=0.2 over 400 draws fired {hits} times");
        let c = draws("store.read.corrupt=prob:0.2,seed=8");
        assert_ne!(a, c, "different seed, different stream");
        // Edge probabilities are exact.
        assert!(draws("store.read.corrupt=prob:1").iter().all(|&x| x));
        assert!(!draws("store.read.corrupt=prob:0").iter().any(|&x| x));
    }

    #[test]
    fn corrupt_if_flips_one_byte_deterministically() {
        let _scope = FaultScope::arm("store.read.corrupt=always");
        let mut bytes = vec![0u8; 9];
        corrupt_if(STORE_READ_CORRUPT, &mut bytes);
        assert_eq!(bytes.iter().filter(|&&b| b == 0xff).count(), 1);
        assert_eq!(bytes[4], 0xff);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_if(STORE_READ_CORRUPT, &mut empty); // must not panic
    }

    #[test]
    fn inject_panic_panics_with_the_point_name() {
        let _scope = FaultScope::arm("solver.panic=always");
        let err = std::panic::catch_unwind(|| inject_panic(SOLVER_PANIC)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "injected fault: solver.panic");
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        for bad in [
            "store.read.corrupt",          // no trigger
            "store.read.korrupt=once",     // unknown point
            "store.read.corrupt=sometimes", // unknown trigger
            "store.read.corrupt=prob:1.5", // out of range
            "store.read.corrupt=prob:x",   // not a number
            "seed=zzz",                    // bad seed
            "seed=3",                      // no points at all
            "",                            // empty
            "solver.panic=once,solver.panic=always", // duplicate
        ] {
            assert!(parse_spec(bad).is_err(), "{bad:?} should be rejected");
        }
        let spec = parse_spec(" solver.panic = once , seed = 42 ").unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.points.len(), 1);
        assert_eq!(spec.points[0].trigger, Trigger::Once);
    }

    #[test]
    fn active_spec_reports_the_armed_text() {
        let _scope = FaultScope::arm("solver.stall=off");
        assert!(armed());
        assert_eq!(active_spec().as_deref(), Some("solver.stall=off"));
    }
}
