//! # lpa-numerics — the versioned numerics-feature table
//!
//! The store's content addresses used to fold in one monolithic
//! `CODE_VERSION_SALT`: any numerics change invalidated *every* cached
//! reference and outcome at once. This crate replaces the salt with a
//! structured table (in the spirit of Sui's `sui-protocol-config`): every
//! numerics-relevant feature — the double-double reference solver, the
//! Arnoldi restart scheme, the shared soft-float kernel, the 16-bit decode
//! tables, the batch rounder, the 8-bit result LUTs, and one codec feature
//! per number format — carries an integer version, and each artifact's key
//! hashes only the versions that can affect *that* artifact's kind and
//! format (its [`Slice`]).
//!
//! ## Byte stability
//!
//! The key material of a slice is [`BASE_SALT`] (little-endian, the old
//! salt's exact bytes) followed by `name NUL version_le` for every
//! *relevant* feature whose version differs from [`BASELINE_VERSION`], in
//! feature-id order. At the baseline table the material is therefore
//! byte-identical to the old `write_u64(CODE_VERSION_SALT)`, so every
//! pre-table store address reproduces exactly; bumping one feature appends
//! bytes only for the slices it is relevant to, invalidating exactly those.
//!
//! ## Bump policy (replaces the salt-bump rule)
//!
//! A PR that changes computed numerics bumps the version of the *feature it
//! changed* — `batch_round` for the batch engine, `dec16_tables` for the
//! 16-bit decode tables, `fmt_posit16` for a posit16 codec fix, and so on —
//! in [`builtin`](NumericsConfig::builtin). Only the affected (kind,
//! format) slices then miss; everything else stays warm. Changes that
//! cannot affect results must not bump anything.
//!
//! ## The `LPA_NUMERICS_BUMP` knob
//!
//! Per the harness knob discipline the environment variable is read in
//! exactly one place — this crate ([`NumericsConfig::current`]). A spec
//! like `batch_round=2,fmt_posit16=3` overlays the builtin table, which is
//! how CI simulates a version bump against a real store without editing
//! source; an unknown feature name or unparsable version panics (a typo
//! must not silently address the wrong slice).

use std::sync::OnceLock;

/// The historical `CODE_VERSION_SALT` value; every key still starts with
/// its little-endian bytes so baseline addresses match pre-table stores.
pub const BASE_SALT: u64 = 0x6c70_6131_0000_0001;

/// Every feature starts here; versions only ever grow.
pub const BASELINE_VERSION: u32 = 1;

/// Serialization format tag of [`NumericsConfig::to_bytes`].
const SER_VERSION: u8 = 1;

/// Number of named (non-per-format) features.
const NAMED_FEATURES: usize = 6;
/// Number of per-format codec features (one per stable wire format id).
pub const FORMAT_COUNT: usize = 14;
/// Total feature count.
pub const FEATURE_COUNT: usize = NAMED_FEATURES + FORMAT_COUNT;

/// One numerics-relevant feature, identified by a stable id (the index
/// into [`FEATURE_NAMES`]). **Append-only**: ids appear inside persisted
/// frames, so renumbering orphans recorded configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Feature(u8);

/// The double-double reference solver (tolerance, Dd arithmetic, matching).
pub const DD_REFERENCE: Feature = Feature(0);
/// The Krylov–Schur restart iteration (affects every solve).
pub const ARNOLDI_RESTART: Feature = Feature(1);
/// The shared integer soft-float kernel every emulated format rounds through.
pub const SOFTFLOAT_KERNEL: Feature = Feature(2);
/// The unpack-once 16-bit decode tables (Lut16).
pub const DEC16_TABLES: Feature = Feature(3);
/// The decoded-operand batch kernel engine's value-level rounder.
pub const BATCH_ROUND: Feature = Feature(4);
/// The 8-bit full-result lookup tables.
pub const LUT8_TABLES: Feature = Feature(5);

/// Feature names, indexed by feature id. Names are key material (they are
/// hashed into addresses when non-baseline), so they are as append-only as
/// the ids.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "dd_reference",
    "arnoldi_restart",
    "softfloat_kernel",
    "dec16_tables",
    "batch_round",
    "lut8_tables",
    // Per-format codec features, in stable wire format-id order (must
    // match `lpa_experiments::persist::format_id`).
    "fmt_ofp8_e4m3",
    "fmt_ofp8_e5m2",
    "fmt_posit8",
    "fmt_takum8",
    "fmt_float16",
    "fmt_bfloat16",
    "fmt_posit16",
    "fmt_takum16",
    "fmt_float32",
    "fmt_posit32",
    "fmt_takum32",
    "fmt_float64",
    "fmt_posit64",
    "fmt_takum64",
];

/// Which arithmetic backend serves a format's outcomes — this decides
/// which shared-kernel features are relevant to the format's slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormatClass {
    /// 8-bit formats: full-result LUTs (built by the soft-float kernel).
    Lut8,
    /// 16-bit formats: unpack-once decode tables + batch-routed kernels.
    Dec16,
    /// Hardware `f32`/`f64`: no emulation feature can affect them.
    Native,
    /// 32/64-bit emulated formats: soft-float ops, batch-routed kernels.
    Soft,
}

/// Backend class per stable wire format id.
pub const FORMAT_CLASSES: [FormatClass; FORMAT_COUNT] = [
    FormatClass::Lut8,   // 0  OFP8 E4M3
    FormatClass::Lut8,   // 1  OFP8 E5M2
    FormatClass::Lut8,   // 2  posit8
    FormatClass::Lut8,   // 3  takum8
    FormatClass::Dec16,  // 4  float16
    FormatClass::Dec16,  // 5  bfloat16
    FormatClass::Dec16,  // 6  posit16
    FormatClass::Dec16,  // 7  takum16
    FormatClass::Native, // 8  float32
    FormatClass::Soft,   // 9  posit32
    FormatClass::Soft,   // 10 takum32
    FormatClass::Native, // 11 float64
    FormatClass::Soft,   // 12 posit64
    FormatClass::Soft,   // 13 takum64
];

impl Feature {
    /// Stable id of this feature.
    pub fn id(self) -> u8 {
        self.0
    }

    /// The feature with this id, if it exists in this build.
    pub fn from_id(id: u8) -> Option<Feature> {
        ((id as usize) < FEATURE_COUNT).then_some(Feature(id))
    }

    /// The per-format codec feature of a stable wire format id.
    pub fn for_format(format_id: u8) -> Option<Feature> {
        ((format_id as usize) < FORMAT_COUNT)
            .then(|| Feature(NAMED_FEATURES as u8 + format_id))
    }

    pub fn name(self) -> &'static str {
        FEATURE_NAMES[self.0 as usize]
    }

    /// Look a feature up by name (the `LPA_NUMERICS_BUMP` vocabulary).
    pub fn from_name(name: &str) -> Option<Feature> {
        FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| Feature(i as u8))
    }

    /// Every feature, in id order.
    pub fn all() -> impl Iterator<Item = Feature> {
        (0..FEATURE_COUNT as u8).map(Feature)
    }
}

/// The address space an artifact lives in: its kind plus (for outcomes)
/// its stable wire format id. `Outcome { format: None }` describes a
/// legacy frame whose format was not recorded — only the features relevant
/// to *every* outcome slice can be attributed to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slice {
    Reference,
    Outcome { format: Option<u8> },
}

/// The features whose versions can affect artifacts of `slice`, in
/// feature-id order.
pub fn relevant_features(slice: Slice) -> Vec<Feature> {
    // The reference solve and the error computation against it reach every
    // artifact; everything else is format-class specific.
    let mut set = vec![DD_REFERENCE, ARNOLDI_RESTART];
    // An `Outcome { format: None }` (legacy frame, format not recorded)
    // keeps only the universally relevant features above.
    if let Slice::Outcome { format: Some(id) } = slice {
        match FORMAT_CLASSES.get(id as usize) {
            Some(FormatClass::Lut8) => set.extend([SOFTFLOAT_KERNEL, LUT8_TABLES]),
            Some(FormatClass::Dec16) => {
                set.extend([SOFTFLOAT_KERNEL, DEC16_TABLES, BATCH_ROUND])
            }
            Some(FormatClass::Soft) => set.extend([SOFTFLOAT_KERNEL, BATCH_ROUND]),
            // Native formats round in hardware; unknown ids (a newer
            // binary's format) contribute nothing attributable.
            Some(FormatClass::Native) | None => {}
        }
        if let Some(f) = Feature::for_format(id) {
            set.push(f);
        }
    }
    set.sort();
    set
}

/// The full feature-version table one binary (or one recorded frame)
/// computes under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumericsConfig {
    versions: [u32; FEATURE_COUNT],
}

impl Default for NumericsConfig {
    fn default() -> NumericsConfig {
        NumericsConfig::baseline()
    }
}

impl NumericsConfig {
    /// Every feature at [`BASELINE_VERSION`] — the table whose key
    /// material is byte-identical to the historical salt.
    pub fn baseline() -> NumericsConfig {
        NumericsConfig { versions: [BASELINE_VERSION; FEATURE_COUNT] }
    }

    /// The table this build implements. Bump the feature you changed here,
    /// in the same commit as the numerics change (see the module docs).
    /// The arithmetic tiers declare the versions they implement
    /// (`lpa_arith::numerics_versions`, `lpa_arnoldi::NUMERICS_VERSIONS`)
    /// and `lpa_experiments::numerics` cross-checks them against this
    /// table in one place.
    pub fn builtin() -> NumericsConfig {
        NumericsConfig::baseline()
    }

    /// The effective table of this process: [`builtin`] overlaid with the
    /// `LPA_NUMERICS_BUMP` spec, read once (this crate's only `std::env`
    /// read). Panics on an unknown feature name or unparsable version.
    pub fn current() -> NumericsConfig {
        static CURRENT: OnceLock<NumericsConfig> = OnceLock::new();
        *CURRENT.get_or_init(|| {
            let mut cfg = NumericsConfig::builtin();
            if let Ok(spec) = std::env::var("LPA_NUMERICS_BUMP") {
                if !spec.trim().is_empty() {
                    cfg = cfg.with_bump_spec(&spec).unwrap_or_else(|e| {
                        panic!("LPA_NUMERICS_BUMP: {e} (spec {spec:?})")
                    });
                }
            }
            cfg
        })
    }

    /// Apply a `feature=version[,feature=version...]` spec.
    pub fn with_bump_spec(&self, spec: &str) -> Result<NumericsConfig, String> {
        let mut cfg = *self;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, version) = part
                .split_once('=')
                .ok_or_else(|| format!("expected feature=version, got {part:?}"))?;
            let feature = Feature::from_name(name.trim())
                .ok_or_else(|| format!("unknown feature {name:?}"))?;
            let version: u32 = version
                .trim()
                .parse()
                .map_err(|_| format!("unparsable version {version:?} for {name}"))?;
            cfg = cfg.with_version(feature, version);
        }
        Ok(cfg)
    }

    pub fn version(&self, feature: Feature) -> u32 {
        self.versions[feature.0 as usize]
    }

    pub fn with_version(&self, feature: Feature, version: u32) -> NumericsConfig {
        let mut cfg = *self;
        cfg.versions[feature.0 as usize] = version;
        cfg
    }

    /// `(name, version)` pairs in feature-id order — the run manifest's
    /// `plan.numerics` section.
    pub fn to_pairs(&self) -> Vec<(&'static str, u32)> {
        Feature::all().map(|f| (f.name(), self.version(f))).collect()
    }

    /// The bytes a key hashes for one slice: [`BASE_SALT`] little-endian,
    /// then `name NUL version_le` per non-baseline relevant feature in id
    /// order. At the baseline table this is exactly the old salt's bytes.
    pub fn key_material(&self, slice: Slice) -> Vec<u8> {
        let mut out = BASE_SALT.to_le_bytes().to_vec();
        for f in relevant_features(slice) {
            let v = self.version(f);
            if v != BASELINE_VERSION {
                out.extend_from_slice(f.name().as_bytes());
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Canonical frame serialization: `[SER_VERSION, n]` then `(id,
    /// version_le)` per non-baseline feature in id order. The baseline
    /// table is two bytes; absent features decode as baseline, so older
    /// and newer binaries read each other's frames.
    pub fn to_bytes(&self) -> Vec<u8> {
        let non_baseline: Vec<Feature> =
            Feature::all().filter(|&f| self.version(f) != BASELINE_VERSION).collect();
        let mut out = Vec::with_capacity(2 + 5 * non_baseline.len());
        out.push(SER_VERSION);
        out.push(non_baseline.len() as u8);
        for f in non_baseline {
            out.push(f.id());
            out.extend_from_slice(&self.version(f).to_le_bytes());
        }
        out
    }

    /// Does moving from `recorded` (the table an artifact was produced
    /// under) to this table invalidate artifacts of `slice`? True iff a
    /// relevant feature's version differs. Feature ids recorded by a newer
    /// binary that this build does not know are ignored — their relevance
    /// cannot be established, and keeping a warm artifact is the safe side.
    pub fn invalidates(&self, slice: Slice, recorded: &RecordedNumerics) -> bool {
        relevant_features(slice)
            .into_iter()
            .any(|f| recorded.version(f) != self.version(f))
    }

    /// Human/counter-friendly rendering of the non-baseline entries
    /// (`"baseline"` when there are none) — the per-version slice label
    /// `lpa-store stats`/`verify` group by.
    pub fn fingerprint(&self) -> String {
        fingerprint_of(
            Feature::all()
                .filter(|&f| self.version(f) != BASELINE_VERSION)
                .map(|f| (f.id(), self.version(f))),
        )
    }
}

fn fingerprint_of(pairs: impl Iterator<Item = (u8, u32)>) -> String {
    let parts: Vec<String> = pairs
        .map(|(id, v)| match Feature::from_id(id) {
            Some(f) => format!("{}={v}", f.name()),
            None => format!("feature#{id}={v}"),
        })
        .collect();
    if parts.is_empty() {
        "baseline".to_string()
    } else {
        parts.join(",")
    }
}

/// A numerics table decoded from a frame. Kept separate from
/// [`NumericsConfig`] because a frame written by a newer binary may carry
/// feature ids this build does not know; they are preserved for reporting
/// but excluded from staleness decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedNumerics {
    /// `(feature id, version)` non-baseline entries, id-sorted.
    pairs: Vec<(u8, u32)>,
}

impl RecordedNumerics {
    /// The table a frame without a recorded config (v1/v2 legacy frames)
    /// was produced under: everything baseline, by the byte-stability
    /// contract.
    pub fn legacy_baseline() -> RecordedNumerics {
        RecordedNumerics { pairs: Vec::new() }
    }

    /// Decode a frame's numerics section.
    pub fn from_bytes(bytes: &[u8]) -> Result<RecordedNumerics, String> {
        let [version, count, rest @ ..] = bytes else {
            return Err(format!("numerics section of {} bytes", bytes.len()));
        };
        if *version != SER_VERSION {
            return Err(format!("numerics serialization version {version}"));
        }
        if rest.len() != *count as usize * 5 {
            return Err(format!(
                "numerics section claims {count} entries but has {} entry bytes",
                rest.len()
            ));
        }
        let mut pairs = Vec::with_capacity(*count as usize);
        for chunk in rest.chunks_exact(5) {
            let id = chunk[0];
            let v = u32::from_le_bytes(chunk[1..5].try_into().expect("4-byte slice"));
            pairs.push((id, v));
        }
        pairs.sort();
        Ok(RecordedNumerics { pairs })
    }

    /// Recorded version of a feature (absent = baseline).
    pub fn version(&self, feature: Feature) -> u32 {
        self.pairs
            .iter()
            .find(|(id, _)| *id == feature.id())
            .map(|(_, v)| *v)
            .unwrap_or(BASELINE_VERSION)
    }

    /// The non-baseline entries as a slice label (see
    /// [`NumericsConfig::fingerprint`]); unknown ids render as
    /// `feature#<id>=<v>`.
    pub fn fingerprint(&self) -> String {
        fingerprint_of(self.pairs.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_key_material_is_exactly_the_old_salt() {
        let cfg = NumericsConfig::baseline();
        for slice in [
            Slice::Reference,
            Slice::Outcome { format: None },
            Slice::Outcome { format: Some(0) },
            Slice::Outcome { format: Some(6) },
            Slice::Outcome { format: Some(11) },
        ] {
            assert_eq!(cfg.key_material(slice), BASE_SALT.to_le_bytes().to_vec(), "{slice:?}");
        }
    }

    #[test]
    fn bumps_touch_exactly_the_relevant_slices() {
        let base = NumericsConfig::baseline();
        let outcome = |id: u8| Slice::Outcome { format: Some(id) };

        // batch_round reaches exactly the batch-routed (Dec16 + Soft)
        // outcome slices, never references, natives or 8-bit LUT formats.
        let bumped = base.with_version(BATCH_ROUND, 2);
        assert_eq!(bumped.key_material(Slice::Reference), base.key_material(Slice::Reference));
        for id in 0..FORMAT_COUNT as u8 {
            let changed = bumped.key_material(outcome(id)) != base.key_material(outcome(id));
            let batch_routed = matches!(
                FORMAT_CLASSES[id as usize],
                FormatClass::Dec16 | FormatClass::Soft
            );
            assert_eq!(changed, batch_routed, "format id {id}");
        }

        // dd_reference reaches everything.
        let bumped = base.with_version(DD_REFERENCE, 2);
        assert_ne!(bumped.key_material(Slice::Reference), base.key_material(Slice::Reference));
        for id in 0..FORMAT_COUNT as u8 {
            assert_ne!(bumped.key_material(outcome(id)), base.key_material(outcome(id)));
        }

        // A per-format codec feature reaches only its own outcome slice.
        let bumped = base.with_version(Feature::for_format(6).unwrap(), 3);
        assert_eq!(bumped.key_material(Slice::Reference), base.key_material(Slice::Reference));
        for id in 0..FORMAT_COUNT as u8 {
            assert_eq!(
                bumped.key_material(outcome(id)) != base.key_material(outcome(id)),
                id == 6,
                "format id {id}"
            );
        }
    }

    #[test]
    fn serialization_round_trips_and_tolerates_unknown_ids() {
        let base = NumericsConfig::baseline();
        assert_eq!(base.to_bytes(), vec![SER_VERSION, 0]);
        let rec = RecordedNumerics::from_bytes(&base.to_bytes()).unwrap();
        assert_eq!(rec, RecordedNumerics::legacy_baseline());
        assert_eq!(rec.fingerprint(), "baseline");

        let bumped = base.with_version(BATCH_ROUND, 2).with_version(DEC16_TABLES, 7);
        let rec = RecordedNumerics::from_bytes(&bumped.to_bytes()).unwrap();
        assert_eq!(rec.version(BATCH_ROUND), 2);
        assert_eq!(rec.version(DEC16_TABLES), 7);
        assert_eq!(rec.version(DD_REFERENCE), BASELINE_VERSION);
        assert_eq!(rec.fingerprint(), "dec16_tables=7,batch_round=2");

        // A frame from a newer binary: unknown id 200 is preserved in the
        // fingerprint but never drives staleness.
        let mut bytes = bumped.to_bytes();
        bytes[1] += 1;
        bytes.extend_from_slice(&[200, 9, 0, 0, 0]);
        let rec = RecordedNumerics::from_bytes(&bytes).unwrap();
        assert!(rec.fingerprint().contains("feature#200=9"));
        assert!(!NumericsConfig::baseline()
            .with_version(BATCH_ROUND, 2)
            .with_version(DEC16_TABLES, 7)
            .invalidates(Slice::Outcome { format: Some(6) }, &rec));

        // Structural garbage is rejected, not misread.
        assert!(RecordedNumerics::from_bytes(&[]).is_err());
        assert!(RecordedNumerics::from_bytes(&[2, 0]).is_err());
        assert!(RecordedNumerics::from_bytes(&[1, 2, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn invalidation_matches_relevance() {
        let legacy = RecordedNumerics::legacy_baseline();
        let current = NumericsConfig::baseline().with_version(BATCH_ROUND, 2);
        assert!(!current.invalidates(Slice::Reference, &legacy));
        assert!(current.invalidates(Slice::Outcome { format: Some(4) }, &legacy));
        assert!(!current.invalidates(Slice::Outcome { format: Some(0) }, &legacy));
        assert!(!current.invalidates(Slice::Outcome { format: Some(8) }, &legacy));
        // A legacy outcome frame without a recorded format: batch_round is
        // not universally relevant, so it survives (conservative keep)...
        assert!(!current.invalidates(Slice::Outcome { format: None }, &legacy));
        // ...but a universally relevant bump does reach it.
        let current = NumericsConfig::baseline().with_version(ARNOLDI_RESTART, 2);
        assert!(current.invalidates(Slice::Outcome { format: None }, &legacy));
        assert!(current.invalidates(Slice::Reference, &legacy));

        // Matching recorded/current non-baseline versions are not stale.
        let rec = RecordedNumerics::from_bytes(
            &NumericsConfig::baseline().with_version(BATCH_ROUND, 2).to_bytes(),
        )
        .unwrap();
        let current = NumericsConfig::baseline().with_version(BATCH_ROUND, 2);
        assert!(!current.invalidates(Slice::Outcome { format: Some(4) }, &rec));
        // And going back down (current baseline, recorded bumped) is stale.
        assert!(NumericsConfig::baseline().invalidates(Slice::Outcome { format: Some(4) }, &rec));
    }

    #[test]
    fn bump_spec_parses_and_rejects_typos() {
        let cfg = NumericsConfig::baseline()
            .with_bump_spec("batch_round=2, fmt_posit16=3")
            .unwrap();
        assert_eq!(cfg.version(BATCH_ROUND), 2);
        assert_eq!(cfg.version(Feature::from_name("fmt_posit16").unwrap()), 3);
        assert_eq!(cfg.version(DD_REFERENCE), 1);
        assert!(NumericsConfig::baseline().with_bump_spec("batch_rond=2").is_err());
        assert!(NumericsConfig::baseline().with_bump_spec("batch_round=x").is_err());
        assert!(NumericsConfig::baseline().with_bump_spec("batch_round").is_err());
    }

    #[test]
    fn feature_table_is_consistent() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        for f in Feature::all() {
            assert_eq!(Feature::from_name(f.name()), Some(f));
            assert_eq!(Feature::from_id(f.id()), Some(f));
        }
        assert_eq!(Feature::from_id(FEATURE_COUNT as u8), None);
        assert_eq!(Feature::for_format(13).map(|f| f.name()), Some("fmt_takum64"));
        assert_eq!(Feature::for_format(14), None);
        // Relevance sets are id-sorted and deduplicated.
        for slice in (0..FORMAT_COUNT as u8).map(|id| Slice::Outcome { format: Some(id) }) {
            let set = relevant_features(slice);
            let mut sorted = set.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(set, sorted);
        }
    }
}
