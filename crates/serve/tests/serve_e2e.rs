//! End-to-end contract tests of the serving tier, driving a real daemon
//! over real sockets:
//!
//! * a cold request computes and persists; an identical second request
//!   is served warm — byte-identical result line, zero store misses,
//! * N racing clients submitting the same grid dedupe on the store's
//!   single-flight (each reference computed once) and all receive
//!   byte-identical results,
//! * queue overflow yields an immediate typed `rejected: overloaded`,
//!   never a hang,
//! * a client disconnect mid-stream neither poisons the shared store nor
//!   leaks the worker slot (`serve.request.aborted`),
//! * graceful shutdown drains in-flight work,
//! * an armed `serve.worker.panic` fault costs one typed error response,
//!   not the daemon,
//!
//! and after every scenario the lifecycle identity holds:
//! `admitted = completed + aborted + rejected`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lpa_faults::FaultScope;
use lpa_serve::{Client, Daemon, DaemonHandle, RunOutcome, ServeConfig, ServeSummary};
use lpa_store::{ArtifactKind, Store};
use serde::Value;

/// 3 matrices × 2 formats — the grid the store-backed tests share.
const GRID: &str = r#"{"type":"run","id":"grid","corpus":{"kind":"general","seed":7,"size_min":24,"size_max":36,"take":3},"formats":["float64","posit16"],"config":{"eigenvalue_count":3,"max_restarts":40}}"#;
const GRID_MATRICES: u64 = 3;
const GRID_CELLS: u64 = 6;

/// 1 matrix × 1 format — the smallest possible work item, for tests that
/// stall the solver to hold a worker busy.
const TINY: &str = r#"{"type":"run","corpus":{"seed":7,"size_min":24,"size_max":30,"take":1},"formats":["float64"],"config":{"eigenvalue_count":3,"max_restarts":60}}"#;

struct TestDaemon {
    addr: SocketAddr,
    handle: DaemonHandle,
    thread: JoinHandle<ServeSummary>,
}

impl TestDaemon {
    fn start(max_inflight: usize, queue: usize, store: Option<Arc<Store>>) -> TestDaemon {
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_inflight,
            queue,
        };
        let daemon = Daemon::bind(&config, store).expect("bind");
        let addr = daemon.local_addr();
        let handle = daemon.handle();
        let thread = std::thread::spawn(move || daemon.run());
        TestDaemon { addr, handle, thread }
    }

    fn client(&self) -> Client {
        let client = Client::connect(self.addr).expect("connect");
        client.set_timeout(Duration::from_secs(300)).unwrap();
        client
    }

    /// Graceful shutdown; every test ends here so every scenario checks
    /// the lifecycle identity.
    fn finish(self) -> ServeSummary {
        self.handle.begin_shutdown();
        let summary = self.thread.join().expect("daemon thread");
        assert!(summary.invariant_ok, "lifecycle identity violated: {}", summary.summary_line);
        summary
    }
}

fn temp_store(tag: &str) -> (Arc<Store>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("lpa-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Arc::new(Store::open(&dir).unwrap()), dir)
}

fn misses(store: &Store, kind: ArtifactKind) -> u64 {
    store.stats().snapshot(kind).misses
}

fn result_line(outcome: RunOutcome) -> String {
    match outcome {
        RunOutcome::Result { line, .. } => line,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn cold_then_warm_requests_are_byte_identical_with_zero_misses() {
    let (store, dir) = temp_store("coldwarm");
    let daemon = TestDaemon::start(2, 4, Some(store.clone()));

    let cold = result_line(daemon.client().run_to_completion(GRID).unwrap());
    assert_eq!(misses(&store, ArtifactKind::Reference), GRID_MATRICES);
    assert_eq!(misses(&store, ArtifactKind::Outcome), GRID_CELLS);

    // Identical request, different client: served warm, byte-identical.
    let warm = result_line(daemon.client().run_to_completion(GRID).unwrap());
    assert_eq!(cold, warm, "warm result diverged from cold");
    assert_eq!(misses(&store, ArtifactKind::Reference), GRID_MATRICES, "warm run re-computed");
    assert_eq!(misses(&store, ArtifactKind::Outcome), GRID_CELLS, "warm run re-computed");

    // The stats endpoint tells the same story over the wire. (The
    // client reads its result a beat before the worker processes the
    // delivery ack, so give the counter that beat.)
    wait_until("completions to be counted", Duration::from_secs(10), || {
        daemon.handle.metrics().completed.get() == 2
    });
    let stats = daemon.client().stats().unwrap();
    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some("lpa-obs-registry/v1")
    );
    let flat = lpa_serve::client::flatten_stats(&stats);
    let get = |name: &str| {
        flat.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
            panic!("{name} missing from stats: {flat:?}")
        })
    };
    assert_eq!(get("serve.request.admitted"), 2);
    assert_eq!(get("serve.request.completed"), 2);
    assert_eq!(get("store.reference.misses"), GRID_MATRICES);

    let summary = daemon.finish();
    assert_eq!((summary.admitted, summary.completed), (2, 2));
    assert_eq!((summary.aborted, summary.rejected), (0, 0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn racing_duplicate_clients_compute_each_reference_once() {
    let (store, dir) = temp_store("race");
    let n = 4;
    let daemon = TestDaemon::start(n, 8, Some(store.clone()));

    // N simultaneous identical submissions; the store's per-key
    // single-flight must collapse the work.
    let barrier = Arc::new(std::sync::Barrier::new(n));
    let results: Vec<String> = {
        let threads: Vec<_> = (0..n)
            .map(|_| {
                let mut client = daemon.client();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    result_line(client.run_to_completion(GRID).unwrap())
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    };

    for line in &results[1..] {
        assert_eq!(line, &results[0], "racing clients saw different bytes");
    }
    assert_eq!(
        misses(&store, ArtifactKind::Reference),
        GRID_MATRICES,
        "single-flight failed: references computed more than once"
    );
    assert_eq!(misses(&store, ArtifactKind::Outcome), GRID_CELLS);

    let summary = daemon.finish();
    assert_eq!((summary.admitted, summary.completed), (n as u64, n as u64));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queue_overflow_is_rejected_immediately_never_hangs() {
    // One worker, one queue slot; the solver stalled so the worker stays
    // busy while the burst arrives.
    let _stall = FaultScope::arm("solver.stall=always,seed=3");
    let daemon = TestDaemon::start(1, 1, None);

    // R1: wait until it is demonstrably *running* (first progress event
    // arrived), so the worker slot is taken, not just the queue.
    let mut busy = daemon.client();
    busy.send_line(TINY).unwrap();
    loop {
        let value = busy.read_value().unwrap();
        match value.get("type").and_then(Value::as_str) {
            Some("progress") => break,
            Some("accepted") => {}
            other => panic!("unexpected pre-progress response: {other:?}"),
        }
    }

    // R2 fills the single queue slot.
    let mut queued = daemon.client();
    queued.send_line(TINY).unwrap();
    let ack = queued.read_value().unwrap();
    assert_eq!(ack.get("type").and_then(Value::as_str), Some("accepted"));

    // R3 must bounce with the typed reason, and fast — backpressure
    // never stalls the socket.
    let mut burst = daemon.client();
    burst.set_timeout(Duration::from_secs(5)).unwrap();
    let started = Instant::now();
    burst.send_line(TINY).unwrap();
    let rejection = burst.read_value().unwrap();
    assert_eq!(rejection.get("type").and_then(Value::as_str), Some("rejected"));
    assert_eq!(rejection.get("reason").and_then(Value::as_str), Some("overloaded"));
    assert!(started.elapsed() < Duration::from_secs(5), "rejection was not immediate");

    // The stalled work still completes for the patient clients.
    let follow = |mut client: Client| {
        std::thread::spawn(move || loop {
            let value = client.read_value().unwrap();
            if value.get("type").and_then(Value::as_str) == Some("result") {
                return;
            }
        })
    };
    let busy_done = follow(busy);
    let queued_done = follow(queued);
    busy_done.join().unwrap();
    queued_done.join().unwrap();

    let summary = daemon.finish();
    assert_eq!((summary.admitted, summary.completed, summary.rejected), (3, 2, 1));
}

#[test]
fn client_disconnect_mid_stream_aborts_without_poisoning_store_or_permit() {
    let (store, dir) = temp_store("abort");
    let stall = FaultScope::arm("solver.stall=always,seed=5");
    let daemon = TestDaemon::start(1, 4, Some(store.clone()));

    // Submit, confirm admission, then vanish mid-stream.
    {
        let mut doomed = daemon.client();
        doomed.send_line(TINY).unwrap();
        let ack = doomed.read_value().unwrap();
        assert_eq!(ack.get("type").and_then(Value::as_str), Some("accepted"));
    } // dropped: the socket closes while the session is still stalling

    // The worker must finish the session, count the abort, and return
    // its permit.
    wait_until("the abort to be counted", Duration::from_secs(120), || {
        daemon.handle.metrics().aborted.get() == 1
    });
    drop(stall);

    // Store not poisoned: the aborted run persisted its artifacts, so a
    // surviving client gets the same grid warm — and the permit was
    // returned, or this second request would never reach a worker.
    let reference_misses = misses(&store, ArtifactKind::Reference);
    assert!(reference_misses >= 1, "aborted run should still have computed");
    let outcome = daemon.client().run_to_completion(TINY).unwrap();
    let RunOutcome::Result { value, .. } = outcome else {
        panic!("follow-up request failed: {outcome:?}")
    };
    assert_eq!(value.get("degraded").and_then(|v| match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }), Some(false));
    assert_eq!(
        misses(&store, ArtifactKind::Reference),
        reference_misses,
        "follow-up request re-computed: the aborted run poisoned the store"
    );

    let summary = daemon.finish();
    assert_eq!((summary.admitted, summary.completed, summary.aborted), (2, 1, 1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graceful_shutdown_drains_inflight_and_rejects_new_work() {
    let _stall = FaultScope::arm("solver.stall=always,seed=9");
    let daemon = TestDaemon::start(2, 4, None);

    // A request that will still be in flight when shutdown lands.
    let mut patient = daemon.client();
    patient.send_line(TINY).unwrap();
    loop {
        let value = patient.read_value().unwrap();
        if value.get("type").and_then(Value::as_str) == Some("progress") {
            break;
        }
    }

    // One write carrying both the shutdown and a trailing run request:
    // the reader must ack the drain, then reject the new work with the
    // typed reason.
    let mut admin = daemon.client();
    admin
        .send_line(&format!("{}\n{}", r#"{"type":"shutdown","id":"sd"}"#, TINY))
        .unwrap();
    let ack = admin.read_value().unwrap();
    assert_eq!(ack.get("type").and_then(Value::as_str), Some("shutting-down"));
    let rejected = admin.read_value().unwrap();
    assert_eq!(rejected.get("type").and_then(Value::as_str), Some("rejected"));
    assert_eq!(rejected.get("reason").and_then(Value::as_str), Some("shutting-down"));

    // The in-flight request drains to a real result.
    loop {
        let value = patient.read_value().unwrap();
        if value.get("type").and_then(Value::as_str) == Some("result") {
            break;
        }
    }

    let summary = daemon.thread.join().expect("daemon thread");
    assert!(summary.invariant_ok, "{}", summary.summary_line);
    assert_eq!((summary.admitted, summary.completed, summary.rejected), (2, 1, 1));
    assert_eq!(summary.aborted, 0);
}

#[test]
fn armed_worker_panic_costs_one_error_response_not_the_daemon() {
    let _fault = FaultScope::arm("serve.worker.panic=once,seed=1");
    let daemon = TestDaemon::start(1, 2, None);

    // First request absorbs the injected panic as a typed error…
    let first = daemon.client().run_to_completion(TINY).unwrap();
    let RunOutcome::Error { message } = first else {
        panic!("expected the injected panic to surface as an error, got {first:?}")
    };
    assert!(message.contains("injected fault"), "{message}");

    // …and the daemon is degraded-but-alive: the next request succeeds.
    let second = daemon.client().run_to_completion(TINY).unwrap();
    assert!(matches!(second, RunOutcome::Result { .. }), "{second:?}");

    let summary = daemon.finish();
    assert_eq!((summary.admitted, summary.completed), (2, 2));
}

#[test]
fn malformed_lines_get_error_responses_and_are_counted() {
    let daemon = TestDaemon::start(1, 2, None);
    let mut client = daemon.client();
    client.send_line("this is not json").unwrap();
    let error = client.read_value().unwrap();
    assert_eq!(error.get("type").and_then(Value::as_str), Some("error"));
    client.send_line(r#"{"type":"run","formats":["float128"]}"#).unwrap();
    let error = client.read_value().unwrap();
    assert_eq!(error.get("type").and_then(Value::as_str), Some("error"));
    assert!(error
        .get("message")
        .and_then(Value::as_str)
        .unwrap()
        .contains("unknown format"));

    let summary = daemon.finish();
    assert_eq!(summary.malformed, 2);
    assert_eq!(summary.admitted, 0, "malformed lines never reach admission");
}

#[test]
fn progress_stream_matches_the_deterministic_session_order() {
    let daemon = TestDaemon::start(2, 4, None);
    let outcome = daemon.client().run_to_completion(GRID).unwrap();
    let RunOutcome::Result { progress, value, .. } = outcome else {
        panic!("expected a result")
    };
    let kinds: Vec<String> = progress
        .iter()
        .map(|p| {
            p.get("event")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str)
                .expect("progress event kind")
                .to_string()
        })
        .collect();
    assert_eq!(kinds.first().map(String::as_str), Some("grid-started"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("grid-finished"), "{kinds:?}");
    // References stream strictly before outcomes (the sequencer's
    // contract), and every event echoes the request id.
    let first_outcome = kinds.iter().position(|k| k == "outcome-computed").unwrap();
    let last_reference = kinds
        .iter()
        .rposition(|k| k == "reference-computed" || k == "matrix-skipped")
        .unwrap();
    assert!(last_reference < first_outcome, "{kinds:?}");
    for p in &progress {
        assert_eq!(p.get("id").and_then(Value::as_str), Some("grid"));
    }
    // The result agrees with the stream's grid-finished tally.
    let outcomes_streamed = kinds.iter().filter(|k| *k == "outcome-computed").count();
    let matrices = value
        .get("results")
        .and_then(|r| r.get("matrices"))
        .and_then(Value::as_seq)
        .map(<[Value]>::len)
        .unwrap();
    assert_eq!(outcomes_streamed, matrices * 2, "one outcome event per (matrix, format)");

    daemon.finish();
}
