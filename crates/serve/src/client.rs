//! A small blocking client over the line protocol — what the tests, the
//! `lpa-serve client` subcommand and the CI smoke job drive the daemon
//! with.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

/// How one submitted run ended, as seen by the client.
#[derive(Debug)]
pub enum RunOutcome {
    /// The final `result` line (raw bytes — what byte-identity asserts
    /// compare) and the `progress` lines that preceded it.
    Result { line: String, value: Value, progress: Vec<Value> },
    /// A typed immediate rejection (`overloaded`, `shutting-down`).
    Rejected { reason: String },
    /// An `error` response (malformed request, crashed worker, …).
    Error { message: String },
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream.try_clone()?), stream })
    }

    /// Guard against a wedged daemon in tests and CI: a response must
    /// arrive within `timeout` or reads fail instead of hanging.
    pub fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Send one raw request line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Read the next response line, raw.
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Read the next response line, parsed.
    pub fn read_value(&mut self) -> std::io::Result<Value> {
        let line = self.read_line()?;
        serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e} in {line:?}"))
        })
    }

    /// Submit a run request and follow it to its final line, collecting
    /// progress along the way. Lines for other request ids (pipelined
    /// requests on this connection) are skipped.
    pub fn run_to_completion(&mut self, request_line: &str) -> std::io::Result<RunOutcome> {
        self.send_line(request_line)?;
        let mut progress = Vec::new();
        loop {
            let line = self.read_line()?;
            let value: Value = serde_json::from_str(&line).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e} in {line:?}"))
            })?;
            match value.get("type").and_then(Value::as_str) {
                Some("accepted") => {}
                Some("progress") => progress.push(value),
                Some("rejected") => {
                    let reason = value
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    return Ok(RunOutcome::Rejected { reason });
                }
                Some("error") => {
                    let message = value
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    return Ok(RunOutcome::Error { message });
                }
                Some("result") => return Ok(RunOutcome::Result { line, value, progress }),
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected response {line:?}"),
                    ))
                }
            }
        }
    }

    /// Fetch the daemon + store registries (`stats` request).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.send_line(r#"{"type":"stats"}"#)?;
        self.read_value()
    }

    /// Ask the daemon to drain and exit; returns its acknowledgement.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.send_line(r#"{"type":"shutdown"}"#)?;
        self.read_value()
    }
}

/// Flatten a `stats` response into greppable `name = value` pairs:
/// serve-side names as-is, store-side names as recorded by the store
/// registry. Missing sections flatten to nothing.
pub fn flatten_stats(stats: &Value) -> Vec<(String, u64)> {
    let mut flat = Vec::new();
    for section in ["serve", "store"] {
        let Some(counters) =
            stats.get(section).and_then(|reg| reg.get("counters")).and_then(Value::as_map)
        else {
            continue;
        };
        for (name, value) in counters {
            if let Some(n) = value.as_u64() {
                flat.push((name.clone(), n));
            }
        }
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_reads_both_registry_sections() {
        let stats: Value = serde_json::from_str(
            r#"{"type":"stats","serve":{"counters":{"serve.request.admitted":2}},
                "store":{"counters":{"store.reference.misses":3}}}"#,
        )
        .unwrap();
        let flat = flatten_stats(&stats);
        assert!(flat.contains(&("serve.request.admitted".to_string(), 2)), "{flat:?}");
        assert!(flat.contains(&("store.reference.misses".to_string(), 3)), "{flat:?}");
        assert!(flatten_stats(&Value::Null).is_empty());
    }
}
