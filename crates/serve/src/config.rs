//! Daemon configuration — the one module that reads the `LPA_SERVE_*`
//! environment (knob discipline per PR 4: each variable has exactly one
//! reader in the workspace, and CLI flags outrank it).

/// Resolved daemon knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`LPA_SERVE_ADDR`). Port 0 binds an ephemeral port
    /// — what the tests use.
    pub addr: String,
    /// Concurrent in-flight sessions, which is also the worker-pool size
    /// (`LPA_SERVE_MAX_INFLIGHT`, clamped to ≥ 1).
    pub max_inflight: usize,
    /// Admitted-but-waiting requests beyond the in-flight cap
    /// (`LPA_SERVE_QUEUE`, clamped to ≥ 1); past it, submissions are
    /// rejected `overloaded` immediately.
    pub queue: usize,
}

/// Defaults: loopback on a fixed port, modest concurrency.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7641";
pub const DEFAULT_MAX_INFLIGHT: usize = 4;
pub const DEFAULT_QUEUE: usize = 16;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            max_inflight: DEFAULT_MAX_INFLIGHT,
            queue: DEFAULT_QUEUE,
        }
    }
}

impl ServeConfig {
    /// Resolve from the process environment. The workspace's only read of
    /// `LPA_SERVE_ADDR` / `LPA_SERVE_MAX_INFLIGHT` / `LPA_SERVE_QUEUE`.
    pub fn from_env() -> Result<ServeConfig, String> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// The testable core of [`ServeConfig::from_env`]: same parsing and
    /// validation, environment injected (the `HarnessEnv::from_lookup`
    /// pattern — tests never mutate the process environment).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = non_empty(lookup("LPA_SERVE_ADDR")) {
            cfg.addr = addr;
        }
        if let Some(raw) = non_empty(lookup("LPA_SERVE_MAX_INFLIGHT")) {
            cfg.max_inflight = parse_cap("LPA_SERVE_MAX_INFLIGHT", &raw)?;
        }
        if let Some(raw) = non_empty(lookup("LPA_SERVE_QUEUE")) {
            cfg.queue = parse_cap("LPA_SERVE_QUEUE", &raw)?;
        }
        Ok(cfg)
    }
}

fn non_empty(value: Option<String>) -> Option<String> {
    value.map(|v| v.trim().to_string()).filter(|v| !v.is_empty())
}

/// Positive integer; 0 is clamped to 1 (a daemon with no worker or no
/// queue slot could never serve anything).
fn parse_cap(var: &str, raw: &str) -> Result<usize, String> {
    let n: usize =
        raw.parse().map_err(|_| format!("{var}: expected a non-negative integer, got {raw:?}"))?;
    Ok(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |var| pairs.iter().find(|(k, _)| *k == var).map(|(_, v)| v.to_string())
    }

    #[test]
    fn defaults_when_unset() {
        assert_eq!(ServeConfig::from_lookup(|_| None).unwrap(), ServeConfig::default());
    }

    #[test]
    fn env_overrides_and_clamps() {
        let cfg = ServeConfig::from_lookup(env(&[
            ("LPA_SERVE_ADDR", "127.0.0.1:0"),
            ("LPA_SERVE_MAX_INFLIGHT", "2"),
            ("LPA_SERVE_QUEUE", "0"),
        ]))
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.max_inflight, 2);
        assert_eq!(cfg.queue, 1, "zero clamps to one queue slot");
    }

    #[test]
    fn empty_values_fall_back_to_defaults() {
        let cfg = ServeConfig::from_lookup(env(&[
            ("LPA_SERVE_ADDR", "  "),
            ("LPA_SERVE_MAX_INFLIGHT", ""),
        ]))
        .unwrap();
        assert_eq!(cfg, ServeConfig::default());
    }

    #[test]
    fn garbage_is_rejected_with_the_variable_name() {
        let err = ServeConfig::from_lookup(env(&[("LPA_SERVE_QUEUE", "many")])).unwrap_err();
        assert!(err.contains("LPA_SERVE_QUEUE"), "{err}");
    }
}
