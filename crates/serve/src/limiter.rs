//! A concurrency limiter with RAII permits — the Sui
//! `sui-concurrency-limiter` pattern, offline edition: a fixed in-flight
//! cap, `try_acquire` for callers that must never block (admission), a
//! blocking `acquire` for the worker pool, and a [`Permit`] whose `Drop`
//! returns the slot *unconditionally* — a panicking request hands its
//! slot back on unwind instead of leaking it.

use std::sync::{Arc, Condvar, Mutex};

use lpa_obs::Gauge;

struct Inner {
    max: usize,
    inflight: Mutex<usize>,
    released: Condvar,
    /// Mirrors the in-flight count for the `stats` endpoint.
    gauge: Arc<Gauge>,
}

/// Shared limiter handle (clone freely).
#[derive(Clone)]
pub struct ConcurrencyLimiter {
    inner: Arc<Inner>,
}

/// One in-flight slot; dropping it releases the slot and wakes a blocked
/// [`ConcurrencyLimiter::acquire`].
pub struct Permit {
    inner: Arc<Inner>,
}

impl ConcurrencyLimiter {
    /// A limiter admitting at most `max` (≥ 1) concurrent permits, with
    /// the live count mirrored onto `gauge`.
    pub fn new(max: usize, gauge: Arc<Gauge>) -> ConcurrencyLimiter {
        ConcurrencyLimiter {
            inner: Arc::new(Inner {
                max: max.max(1),
                inflight: Mutex::new(0),
                released: Condvar::new(),
                gauge,
            }),
        }
    }

    /// A permit now or `None` — never blocks. The admission path.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut inflight = self.inner.inflight.lock().unwrap();
        if *inflight >= self.inner.max {
            return None;
        }
        *inflight += 1;
        self.inner.gauge.set(*inflight as u64);
        Some(Permit { inner: self.inner.clone() })
    }

    /// Block until a permit frees up. The worker-pool path (pool size ==
    /// cap, so in practice this never waits — it exists so the cap holds
    /// even if some future caller runs sessions outside the pool).
    pub fn acquire(&self) -> Permit {
        let mut inflight = self.inner.inflight.lock().unwrap();
        while *inflight >= self.inner.max {
            inflight = self.inner.released.wait(inflight).unwrap();
        }
        *inflight += 1;
        self.inner.gauge.set(*inflight as u64);
        Permit { inner: self.inner.clone() }
    }

    /// Permits currently out.
    pub fn inflight(&self) -> usize {
        *self.inner.inflight.lock().unwrap()
    }

    /// The cap.
    pub fn max(&self) -> usize {
        self.inner.max
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut inflight = self.inner.inflight.lock().unwrap();
        *inflight = inflight.saturating_sub(1);
        self.inner.gauge.set(*inflight as u64);
        self.inner.released.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_obs::Registry;

    fn limiter(max: usize) -> (ConcurrencyLimiter, Registry) {
        let registry = Registry::new();
        (ConcurrencyLimiter::new(max, registry.gauge("serve.inflight")), registry)
    }

    #[test]
    fn try_acquire_exhausts_at_the_cap_and_drop_returns_the_slot() {
        let (limiter, registry) = limiter(2);
        let a = limiter.try_acquire().expect("slot 1");
        let _b = limiter.try_acquire().expect("slot 2");
        assert!(limiter.try_acquire().is_none(), "cap must hold");
        assert_eq!(limiter.inflight(), 2);
        drop(a);
        assert_eq!(limiter.inflight(), 1);
        assert!(limiter.try_acquire().is_some(), "dropped permit must free a slot");
        // The gauge tracks the live count (2 again after re-acquire, but
        // the re-acquired permit dropped at the end of the statement).
        assert_eq!(registry.counters_snapshot().len(), 0, "gauges are not counters");
    }

    #[test]
    fn permit_is_returned_on_unwind() {
        let (limiter, _registry) = limiter(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = limiter.acquire();
            panic!("worker died");
        }));
        assert!(result.is_err());
        assert_eq!(limiter.inflight(), 0, "unwound permit leaked its slot");
        let _again = limiter.try_acquire().expect("slot must be reusable after a panic");
    }

    #[test]
    fn acquire_blocks_until_release() {
        let (limiter, _registry) = limiter(1);
        let held = limiter.acquire();
        let contender = {
            let limiter = limiter.clone();
            std::thread::spawn(move || {
                let _p = limiter.acquire();
            })
        };
        // Give the contender time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!contender.is_finished(), "acquire must block at the cap");
        drop(held);
        contender.join().unwrap();
    }
}
