//! # lpa-serve — the long-running experiment service
//!
//! Everything below `lpa-serve` is single-shot batch mode: `reproduce`
//! runs one grid and exits. This crate is the serving tier on top — a
//! daemon that listens on a TCP socket for line-delimited JSON requests
//! (matrix grid × format set × solver options), plans each one through
//! the [`ExperimentPlan`] → `Session` front door, and streams progress
//! events and final results back as JSON lines.
//!
//! The workspace is fully offline (no tokio), so the executor is plain
//! threads and `std::sync::mpsc`:
//!
//! * an **acceptor** thread turns connections into reader/writer thread
//!   pairs,
//! * a **bounded admission queue** (`LPA_SERVE_QUEUE`) feeds a fixed pool
//!   of **worker** threads (`LPA_SERVE_MAX_INFLIGHT`); a full queue gets
//!   an *immediate* typed `{"type":"rejected","reason":"overloaded"}`
//!   response instead of stalling the socket — the Sui
//!   `sui-concurrency-limiter` pattern, with RAII [`limiter::Permit`]s
//!   accounting for the in-flight cap,
//! * workers run sessions against **one shared [`Store`] handle**, so the
//!   store's per-key single-flight dedupes identical work across racing
//!   requests — N clients asking for the same grid cost one compute,
//! * a per-connection **writer** thread owns the socket's write half and
//!   serializes the deterministic `ProgressObserver` event stream plus
//!   the final result line.
//!
//! Request admission, completion, abort (client gone), and rejection are
//! counted on a per-daemon `lpa-obs` [`Registry`]; every run satisfies
//! `serve.request.admitted = completed + aborted + rejected`. A `stats`
//! request returns the registry as `lpa-obs-registry/v1` JSON. Graceful
//! shutdown (a `shutdown` request, the SIGTERM-equivalent here) stops
//! accepting, drains the queue and in-flight sessions, flushes the store,
//! and reports the final counters.
//!
//! [`ExperimentPlan`]: lpa_experiments::ExperimentPlan
//! [`Store`]: lpa_store::Store
//! [`Registry`]: lpa_obs::Registry

pub mod client;
pub mod config;
pub mod daemon;
pub mod limiter;
pub mod metrics;
pub mod protocol;

pub use client::{Client, RunOutcome};
pub use config::ServeConfig;
pub use daemon::{Daemon, DaemonHandle, ServeSummary};
pub use limiter::{ConcurrencyLimiter, Permit};
pub use metrics::ServeMetrics;
pub use protocol::{CorpusSpec, Request, RunRequest};
