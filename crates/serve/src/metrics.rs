//! Per-daemon `serve.*` metrics on an instantiable `lpa-obs` [`Registry`]
//! (the store's per-handle pattern — parallel daemons in one test process
//! stay isolated).
//!
//! The request lifecycle counters partition every admitted run request:
//!
//! ```text
//! serve.request.admitted = serve.request.completed
//!                        + serve.request.aborted
//!                        + serve.request.rejected
//! ```
//!
//! `admitted` counts every well-formed run request the moment it reaches
//! admission; each then terminates as exactly one of *rejected* (queue
//! full or shutting down — the typed immediate response), *completed*
//! (final line delivered, error responses included), or *aborted* (the
//! client was gone when the result was ready). [`ServeMetrics::invariant_ok`]
//! checks the identity; the daemon asserts it at shutdown and the CI
//! smoke job greps for it.

use std::sync::Arc;

use lpa_obs::{Counter, Gauge, Histogram, Registry};

/// Handles onto the daemon's registry (hot path: relaxed atomics only).
#[derive(Clone)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    /// Well-formed run requests reaching admission.
    pub admitted: Arc<Counter>,
    /// Typed immediate rejections (`overloaded`, `shutting-down`).
    pub rejected: Arc<Counter>,
    /// Final line delivered to a live client (error responses included).
    pub completed: Arc<Counter>,
    /// Client disconnected before the final line could be delivered.
    pub aborted: Arc<Counter>,
    /// Lines that failed to parse as any request.
    pub malformed: Arc<Counter>,
    /// `stats` requests served.
    pub stats_served: Arc<Counter>,
    /// Admitted-but-waiting requests right now.
    pub queue_depth: Arc<Gauge>,
    /// Sessions running right now (mirrors the limiter).
    pub inflight: Arc<Gauge>,
    /// Enqueue-to-final latency per terminated request, nanoseconds.
    pub latency: Arc<Histogram>,
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        let registry = Arc::new(Registry::new());
        ServeMetrics {
            admitted: registry.counter("serve.request.admitted"),
            rejected: registry.counter("serve.request.rejected"),
            completed: registry.counter("serve.request.completed"),
            aborted: registry.counter("serve.request.aborted"),
            malformed: registry.counter("serve.request.malformed"),
            stats_served: registry.counter("serve.request.stats"),
            queue_depth: registry.gauge("serve.queue.depth"),
            inflight: registry.gauge("serve.inflight"),
            latency: registry.histogram("serve.request.latency_ns"),
            registry,
        }
    }

    /// The backing registry (rendered by the `stats` endpoint).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Does `admitted = completed + aborted + rejected` hold right now?
    /// Only meaningful when no request is mid-flight (e.g. after a drain).
    pub fn invariant_ok(&self) -> bool {
        self.admitted.get() == self.completed.get() + self.aborted.get() + self.rejected.get()
    }

    /// One greppable shutdown line, e.g.
    /// `admitted=4 completed=3 aborted=1 rejected=0 invariant=ok`.
    pub fn summary_line(&self) -> String {
        format!(
            "admitted={} completed={} aborted={} rejected={} invariant={}",
            self.admitted.get(),
            self.completed.get(),
            self.aborted.get(),
            self.rejected.get(),
            if self.invariant_ok() { "ok" } else { "VIOLATED" }
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_partition_admissions() {
        let m = ServeMetrics::new();
        assert!(m.invariant_ok(), "all-zero must satisfy the identity");
        m.admitted.add(3);
        m.completed.incr();
        m.rejected.incr();
        assert!(!m.invariant_ok(), "one admission unaccounted for");
        m.aborted.incr();
        assert!(m.invariant_ok());
        assert_eq!(
            m.summary_line(),
            "admitted=3 completed=1 aborted=1 rejected=1 invariant=ok"
        );
    }

    #[test]
    fn registry_carries_the_serve_names() {
        let m = ServeMetrics::new();
        m.admitted.incr();
        let names: Vec<String> =
            m.registry().counters_snapshot().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"serve.request.admitted".to_string()), "{names:?}");
    }
}
