//! `lpa-serve` — daemon and client CLI.
//!
//! ```text
//! lpa-serve serve    [--addr A] [--store DIR] [--max-inflight N] [--queue N]
//! lpa-serve client   [--addr A] [--timeout-secs S] REQUEST_JSON
//! lpa-serve burst    [--addr A] [--timeout-secs S] -n N REQUEST_JSON
//! lpa-serve stats    [--addr A]
//! lpa-serve shutdown [--addr A]
//! ```
//!
//! Flags outrank environment (`LPA_SERVE_*` via `ServeConfig`, `LPA_STORE`
//! via the harness — each still read in exactly one module). Exit codes:
//! 0 success, 1 error, 2 usage, 3 request rejected by admission control.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lpa_experiments::harness::HarnessSettings;
use lpa_serve::client::flatten_stats;
use lpa_serve::{Client, Daemon, RunOutcome, ServeConfig};
use lpa_store::Store;
use serde::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage_error("missing subcommand");
    };
    let rest = &args[1..];
    match command.as_str() {
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "burst" => cmd_burst(rest),
        "stats" => cmd_stats(rest),
        "shutdown" => cmd_shutdown(rest),
        "--help" | "-h" | "help" => {
            print!("{}", usage_text());
            ExitCode::SUCCESS
        }
        other => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

fn usage_text() -> String {
    "usage:\n  lpa-serve serve    [--addr A] [--store DIR] [--max-inflight N] [--queue N]\n  lpa-serve client   [--addr A] [--timeout-secs S] REQUEST_JSON\n  lpa-serve burst    [--addr A] [--timeout-secs S] -n N REQUEST_JSON\n  lpa-serve stats    [--addr A]\n  lpa-serve shutdown [--addr A]\n\nenvironment (flags outrank it):\n  LPA_SERVE_ADDR          listen/connect address (default 127.0.0.1:7641)\n  LPA_SERVE_MAX_INFLIGHT  concurrent in-flight sessions (default 4)\n  LPA_SERVE_QUEUE         admission queue depth (default 16)\n  LPA_STORE               shared persistent store directory (default none)\n".to_string()
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("lpa-serve: {message}");
    eprint!("{}", usage_text());
    ExitCode::from(2)
}

/// `--flag VALUE` extractor; removes the pair from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else { return Ok(None) };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn connect_addr(args: &mut Vec<String>) -> Result<String, String> {
    match take_flag(args, "--addr")? {
        Some(addr) => Ok(addr),
        None => Ok(ServeConfig::from_env()?.addr),
    }
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let parsed = (|| -> Result<(ServeConfig, Option<String>), String> {
        let mut config = ServeConfig::from_env()?;
        if let Some(addr) = take_flag(&mut args, "--addr")? {
            config.addr = addr;
        }
        if let Some(n) = take_flag(&mut args, "--max-inflight")? {
            config.max_inflight =
                n.parse::<usize>().map_err(|_| format!("--max-inflight: bad value {n:?}"))?.max(1);
        }
        if let Some(n) = take_flag(&mut args, "--queue")? {
            config.queue =
                n.parse::<usize>().map_err(|_| format!("--queue: bad value {n:?}"))?.max(1);
        }
        let store_dir = take_flag(&mut args, "--store")?;
        Ok((config, store_dir))
    })();
    let (config, store_flag) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if let Some(stray) = args.first() {
        return usage_error(&format!("unexpected argument {stray:?}"));
    }

    // `--store` outranks `LPA_STORE`; the env var itself is still read
    // only by the harness module.
    let store = match store_flag {
        Some(dir) => match Store::open(&dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("lpa-serve: store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => HarnessSettings::from_env().open_store(),
    };

    let daemon = match Daemon::bind(&config, store.map(Arc::new)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lpa-serve: bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("lpa-serve: listening on {}", daemon.local_addr());
    println!("lpa-serve: max-inflight={} queue={}", config.max_inflight, config.queue);
    let summary = daemon.run();
    println!("lpa-serve: shutdown {}", summary.summary_line);
    if summary.invariant_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn client_common(rest: &[String]) -> Result<(Client, Vec<String>), String> {
    let mut args = rest.to_vec();
    let addr = connect_addr(&mut args)?;
    let timeout = match take_flag(&mut args, "--timeout-secs")? {
        Some(s) => s.parse::<u64>().map_err(|_| format!("--timeout-secs: bad value {s:?}"))?,
        None => 600,
    };
    let client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.set_timeout(Duration::from_secs(timeout.max(1))).map_err(|e| e.to_string())?;
    Ok((client, args))
}

fn cmd_client(rest: &[String]) -> ExitCode {
    let (mut client, args) = match client_common(rest) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let [request] = args.as_slice() else {
        return usage_error("client takes exactly one REQUEST_JSON argument");
    };
    match client.run_to_completion(request) {
        Ok(RunOutcome::Result { line, progress, .. }) => {
            for p in &progress {
                println!("{}", serde_json::to_string(p).unwrap());
            }
            println!("{line}");
            ExitCode::SUCCESS
        }
        Ok(RunOutcome::Rejected { reason }) => {
            println!("rejected: {reason}");
            ExitCode::from(3)
        }
        Ok(RunOutcome::Error { message }) => {
            eprintln!("lpa-serve: request failed: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lpa-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Submit N copies of one request over N simultaneous connections (all
/// connected before any sends — a synchronized burst), and summarize how
/// admission control treated them. The CI smoke job asserts on the line.
fn cmd_burst(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let parsed = (|| -> Result<(usize, String, u64), String> {
        let n = match take_flag(&mut args, "-n")? {
            Some(n) => n.parse::<usize>().ok().filter(|&n| n > 0).ok_or("-n: want a positive integer")?,
            None => return Err("burst needs -n N".into()),
        };
        let addr = connect_addr(&mut args)?;
        let timeout = match take_flag(&mut args, "--timeout-secs")? {
            Some(s) => s.parse::<u64>().map_err(|_| format!("--timeout-secs: bad value {s:?}"))?,
            None => 600,
        };
        Ok((n, addr, timeout))
    })();
    let (n, addr, timeout) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let [request] = args.as_slice() else {
        return usage_error("burst takes exactly one REQUEST_JSON argument");
    };

    let barrier = Arc::new(std::sync::Barrier::new(n));
    let request = Arc::new(request.clone());
    let timeout = Duration::from_secs(timeout.max(1));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let barrier = barrier.clone();
            let request = request.clone();
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<RunOutcome, String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                client.set_timeout(timeout).ok();
                barrier.wait();
                client.run_to_completion(&request).map_err(|e| e.to_string())
            })
        })
        .collect();
    let (mut completed, mut overloaded, mut other) = (0usize, 0usize, 0usize);
    for h in handles {
        match h.join() {
            Ok(Ok(RunOutcome::Result { .. })) => completed += 1,
            Ok(Ok(RunOutcome::Rejected { reason })) if reason == "overloaded" => overloaded += 1,
            _ => other += 1,
        }
    }
    println!("burst: {n} submitted, {completed} completed, {overloaded} rejected-overloaded, {other} other");
    if completed + overloaded + other == n && other == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_stats(rest: &[String]) -> ExitCode {
    let (mut client, args) = match client_common(rest) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    if let Some(stray) = args.first() {
        return usage_error(&format!("unexpected argument {stray:?}"));
    }
    match client.stats() {
        Ok(stats) => {
            for (name, value) in flatten_stats(&stats) {
                println!("serve-stats: {name} = {value}");
            }
            // Gauges too — queue depth and in-flight are the live load view.
            if let Some(gauges) =
                stats.get("serve").and_then(|r| r.get("gauges")).and_then(Value::as_map)
            {
                for (name, value) in gauges {
                    if let Some(n) = value.as_u64() {
                        println!("serve-stats: {name} = {n}");
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-serve: stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_shutdown(rest: &[String]) -> ExitCode {
    let (mut client, args) = match client_common(rest) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    if let Some(stray) = args.first() {
        return usage_error(&format!("unexpected argument {stray:?}"));
    }
    match client.shutdown() {
        Ok(ack) => {
            println!("{}", serde_json::to_string(&ack).unwrap());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-serve: shutdown: {e}");
            ExitCode::FAILURE
        }
    }
}
