//! The wire protocol: line-delimited JSON, one request or response per
//! line, over a plain TCP connection.
//!
//! ## Requests
//!
//! ```json
//! {"type":"run","id":"r1",
//!  "corpus":{"kind":"general","seed":7,"scale":1,"size_min":24,"size_max":36,"take":3},
//!  "formats":["float64","posit16"],
//!  "config":{"eigenvalue_count":3,"max_restarts":40},
//!  "threads":2,"progress":true}
//! {"type":"run","id":"r2",
//!  "matrices":[{"name":"m0","n":3,"triplets":[[0,0,2.0],[1,1,3.0],[2,2,4.0]]}],
//!  "formats":["posit32"]}
//! {"type":"stats","id":"s"}
//! {"type":"shutdown"}
//! ```
//!
//! A run names its grid either through `corpus` (a generated corpus:
//! `kind` is `general` or `graph`, the remaining knobs default to the
//! tiny test corpus) or through `matrices` (inline symmetric matrices as
//! `(row, col, value)` triplets). `formats` uses the canonical
//! `FormatTag::name()` spellings (case/space/dash-insensitive); `config`
//! overrides individual [`ExperimentConfig`] fields.
//!
//! ## Responses
//!
//! `accepted`, `rejected` (typed `reason`: `overloaded` or
//! `shutting-down`), zero or more `progress` lines (the deterministic
//! session event stream), then exactly one `result` line; `stats`,
//! `shutting-down` and `error` complete the vocabulary. Every response
//! echoes the request `id` (daemon-assigned `run-N` when omitted).

use lpa_datagen::{general_corpus, graph_laplacian_corpus, CorpusConfig, Source, TestMatrix};
use lpa_experiments::{ExperimentConfig, ExperimentResults, FormatTag, ProgressEvent};
use lpa_obs::REGISTRY_SCHEMA;
use lpa_sparse::CsrMatrix;
use serde::{Serialize, Value};

/// Typed rejection reasons (the wire spellings).
pub const REASON_OVERLOADED: &str = "overloaded";
pub const REASON_SHUTTING_DOWN: &str = "shutting-down";

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    Run(RunRequest),
    Stats { id: Option<String> },
    Shutdown { id: Option<String> },
}

/// A grid to run: corpus × formats × config.
#[derive(Debug, Clone)]
pub struct RunRequest {
    pub id: Option<String>,
    pub corpus: CorpusSpec,
    pub formats: Vec<FormatTag>,
    pub config: ExperimentConfig,
    /// Worker-thread budget inside the session; 0 keeps the rayon default.
    pub threads: usize,
    /// Stream `progress` lines (default true).
    pub progress: bool,
}

/// Where the matrices come from.
#[derive(Debug, Clone)]
pub enum CorpusSpec {
    /// A generated corpus, materialized in the worker (admission stays
    /// cheap).
    Named { kind: CorpusKind, cfg: CorpusConfig, take: usize },
    /// Inline matrices, validated at parse time.
    Inline(Vec<TestMatrix>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorpusKind {
    General,
    Graph,
}

impl CorpusSpec {
    /// Produce the actual matrices (generation cost lands on the worker
    /// thread, after admission).
    pub fn materialize(&self) -> Vec<TestMatrix> {
        match self {
            CorpusSpec::Inline(matrices) => matrices.clone(),
            CorpusSpec::Named { kind, cfg, take } => {
                let corpus = match kind {
                    CorpusKind::General => general_corpus(cfg),
                    CorpusKind::Graph => graph_laplacian_corpus(cfg),
                };
                if *take == 0 {
                    corpus
                } else {
                    corpus.into_iter().take(*take).collect()
                }
            }
        }
    }
}

/// Parse one request line. `Err` is a human-readable message for the
/// `error` response (and the `serve.request.malformed` counter).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing request field \"type\" (run|stats|shutdown)")?;
    let id = value.get("id").and_then(Value::as_str).map(str::to_string);
    match kind {
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "run" => Ok(Request::Run(parse_run(&value, id)?)),
        other => Err(format!("unknown request type {other:?} (run|stats|shutdown)")),
    }
}

fn parse_run(value: &Value, id: Option<String>) -> Result<RunRequest, String> {
    let corpus = match (value.get("matrices"), value.get("corpus")) {
        (Some(_), Some(_)) => return Err("give either \"matrices\" or \"corpus\", not both".into()),
        (Some(matrices), None) => parse_inline(matrices)?,
        (None, corpus) => parse_named(corpus)?,
    };
    let formats = parse_formats(value.get("formats"))?;
    let config = parse_config(value.get("config"))?;
    let threads = opt_usize(value, "threads")?.unwrap_or(0);
    let progress = match value.get("progress") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(other) => return Err(format!("\"progress\": expected a bool, got {other:?}")),
    };
    Ok(RunRequest { id, corpus, formats, config, threads, progress })
}

fn parse_formats(value: Option<&Value>) -> Result<Vec<FormatTag>, String> {
    let seq = match value {
        None => return Err("missing \"formats\" (e.g. [\"float64\",\"posit16\"])".into()),
        Some(v) => v.as_seq().ok_or("\"formats\": expected an array of format names")?,
    };
    if seq.is_empty() {
        return Err("\"formats\" must not be empty".into());
    }
    seq.iter()
        .map(|v| {
            let name = v.as_str().ok_or("\"formats\": expected strings")?;
            FormatTag::parse(name).ok_or_else(|| {
                let known: Vec<&str> = FormatTag::all().iter().map(|f| f.name()).collect();
                format!("unknown format {name:?} (known: {})", known.join(", "))
            })
        })
        .collect()
}

fn parse_named(value: Option<&Value>) -> Result<CorpusSpec, String> {
    // The serving default is the tiny deterministic test corpus — small
    // enough that an undersized request cannot tie a worker up for long.
    let mut cfg = CorpusConfig::tiny();
    let mut kind = CorpusKind::General;
    let mut take = 0usize;
    if let Some(value) = value {
        if value.as_map().is_none() {
            return Err("\"corpus\": expected an object".into());
        }
        if let Some(k) = value.get("kind") {
            kind = match k.as_str() {
                Some("general") => CorpusKind::General,
                Some("graph") => CorpusKind::Graph,
                other => return Err(format!("\"corpus.kind\": want general|graph, got {other:?}")),
            };
        }
        if let Some(seed) = opt_u64(value, "seed")? {
            cfg.seed = seed;
        }
        if let Some(scale) = opt_usize(value, "scale")? {
            cfg.scale = scale.max(1);
        }
        let (mut lo, mut hi) = cfg.size_range;
        if let Some(min) = opt_usize(value, "size_min")? {
            lo = min;
        }
        if let Some(max) = opt_usize(value, "size_max")? {
            hi = max;
        }
        if lo == 0 || hi < lo {
            return Err(format!("\"corpus\": bad size range {lo}..{hi}"));
        }
        cfg.size_range = (lo, hi);
        if let Some(nnz) = opt_usize(value, "max_nnz")? {
            cfg.max_nnz = nnz;
        }
        take = opt_usize(value, "take")?.unwrap_or(0);
    }
    Ok(CorpusSpec::Named { kind, cfg, take })
}

fn parse_inline(value: &Value) -> Result<CorpusSpec, String> {
    let seq = value.as_seq().ok_or("\"matrices\": expected an array")?;
    if seq.is_empty() {
        return Err("\"matrices\" must not be empty".into());
    }
    let mut matrices = Vec::with_capacity(seq.len());
    for (i, m) in seq.iter().enumerate() {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("inline-{i}"));
        let n = m
            .get("n")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("matrix {name}: missing dimension \"n\""))? as usize;
        if n == 0 {
            return Err(format!("matrix {name}: dimension must be positive"));
        }
        let triplets = m
            .get("triplets")
            .and_then(Value::as_seq)
            .ok_or_else(|| format!("matrix {name}: missing \"triplets\" array"))?;
        let mut parsed = Vec::with_capacity(triplets.len());
        for t in triplets {
            let t = t.as_seq().filter(|t| t.len() == 3).ok_or_else(|| {
                format!("matrix {name}: each triplet is [row, col, value]")
            })?;
            let (row, col) = match (t[0].as_u64(), t[1].as_u64()) {
                (Some(r), Some(c)) => (r as usize, c as usize),
                _ => return Err(format!("matrix {name}: non-integer triplet index")),
            };
            let val = t[2].as_num().ok_or_else(|| {
                format!("matrix {name}: non-numeric triplet value")
            })?;
            if row >= n || col >= n {
                return Err(format!("matrix {name}: triplet ({row},{col}) outside {n}x{n}"));
            }
            parsed.push((row, col, val));
        }
        let matrix = CsrMatrix::from_triplets(n, n, &parsed);
        matrices.push(TestMatrix::new(name, "inline", Source::General, matrix));
    }
    Ok(CorpusSpec::Inline(matrices))
}

fn parse_config(value: Option<&Value>) -> Result<ExperimentConfig, String> {
    let mut cfg = ExperimentConfig::default();
    let Some(value) = value else { return Ok(cfg) };
    if value.as_map().is_none() {
        return Err("\"config\": expected an object".into());
    }
    if let Some(n) = opt_usize(value, "eigenvalue_count")? {
        cfg.eigenvalue_count = n.max(1);
    }
    if let Some(n) = opt_usize(value, "eigenvalue_buffer_count")? {
        cfg.eigenvalue_buffer_count = n;
    }
    if let Some(tol) = value.get("reference_tol").map(|v| {
        v.as_num().ok_or("\"config.reference_tol\": expected a number")
    }) {
        cfg.reference_tol = tol?;
    }
    if let Some(n) = opt_usize(value, "max_restarts")? {
        cfg.max_restarts = n.max(1);
    }
    if let Some(seed) = opt_u64(value, "seed")? {
        cfg.seed = seed;
    }
    if let Some(ms) = opt_u64(value, "cell_deadline_ms")? {
        cfg.cell_deadline =
            (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    Ok(cfg)
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => {
            v.as_u64().map(Some).ok_or_else(|| format!("{key:?}: expected a non-negative integer"))
        }
    }
}

fn opt_usize(value: &Value, key: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64(value, key)?.map(|n| n as usize))
}

// ---------------------------------------------------------------------
// Response lines (compact JSON, no trailing newline — the writer adds it).

fn line(fields: Vec<(&str, Value)>) -> String {
    let map = Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
    serde_json::to_string(&map).expect("value trees always serialize")
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

pub fn accepted_line(id: &str) -> String {
    line(vec![("type", str_value("accepted")), ("id", str_value(id))])
}

pub fn rejected_line(id: &str, reason: &str) -> String {
    line(vec![
        ("type", str_value("rejected")),
        ("id", str_value(id)),
        ("reason", str_value(reason)),
    ])
}

pub fn error_line(id: Option<&str>, message: &str) -> String {
    line(vec![
        ("type", str_value("error")),
        ("id", id.map(str_value).unwrap_or(Value::Null)),
        ("message", str_value(message)),
    ])
}

pub fn shutting_down_line(id: &str) -> String {
    line(vec![("type", str_value("shutting-down")), ("id", str_value(id))])
}

pub fn progress_line(id: &str, event: &ProgressEvent) -> String {
    line(vec![
        ("type", str_value("progress")),
        ("id", str_value(id)),
        ("event", event_value(event)),
    ])
}

pub fn result_line(id: &str, results: &ExperimentResults) -> String {
    line(vec![
        ("type", str_value("result")),
        ("id", str_value(id)),
        ("degraded", Value::Bool(results.is_degraded())),
        ("results", results.to_value()),
    ])
}

/// `serve` is the daemon registry, `store` the shared store's (absent
/// when the daemon runs storeless) — both in `lpa-obs-registry/v1` shape.
pub fn stats_line(id: &str, serve: Value, store: Option<Value>) -> String {
    line(vec![
        ("type", str_value("stats")),
        ("id", str_value(id)),
        ("schema", str_value(REGISTRY_SCHEMA)),
        ("serve", serve),
        ("store", store.unwrap_or(Value::Null)),
    ])
}

/// A [`ProgressEvent`] as a JSON value: `kind` plus the variant's fields,
/// formats in their canonical `name()` spelling.
pub fn event_value(event: &ProgressEvent) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::with_capacity(5);
    let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
    match event {
        ProgressEvent::GridStarted { matrices, formats } => {
            push("kind", str_value("grid-started"));
            push("matrices", Value::UInt(*matrices as u64));
            push("formats", Value::UInt(*formats as u64));
        }
        ProgressEvent::ReferenceStarted { index, matrix } => {
            push("kind", str_value("reference-started"));
            push("index", Value::UInt(*index as u64));
            push("matrix", str_value(matrix));
        }
        ProgressEvent::ReferenceComputed { index, matrix, from_store } => {
            push("kind", str_value("reference-computed"));
            push("index", Value::UInt(*index as u64));
            push("matrix", str_value(matrix));
            push("from_store", Value::Bool(*from_store));
        }
        ProgressEvent::MatrixSkipped { index, matrix } => {
            push("kind", str_value("matrix-skipped"));
            push("index", Value::UInt(*index as u64));
            push("matrix", str_value(matrix));
        }
        ProgressEvent::OutcomeComputed { index, matrix, format, from_store } => {
            push("kind", str_value("outcome-computed"));
            push("index", Value::UInt(*index as u64));
            push("matrix", str_value(matrix));
            push("format", str_value(format.name()));
            push("from_store", Value::Bool(*from_store));
        }
        ProgressEvent::CellFailed { index, matrix, format, reason } => {
            push("kind", str_value("cell-failed"));
            push("index", Value::UInt(*index as u64));
            push("matrix", str_value(matrix));
            push("format", format.map(|f| str_value(f.name())).unwrap_or(Value::Null));
            push("reason", str_value(reason));
        }
        ProgressEvent::GridFinished { matrices, skipped, outcomes } => {
            push("kind", str_value("grid-finished"));
            push("matrices", Value::UInt(*matrices as u64));
            push("skipped", Value::UInt(*skipped as u64));
            push("outcomes", Value::UInt(*outcomes as u64));
        }
    }
    Value::Map(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_with_named_corpus_parses() {
        let req = parse_request(
            r#"{"type":"run","id":"r1","corpus":{"kind":"graph","seed":11,"size_min":24,"size_max":30,"take":2},"formats":["float64","OFP8 E4M3"],"config":{"eigenvalue_count":3,"cell_deadline_ms":500},"threads":2}"#,
        )
        .unwrap();
        let Request::Run(run) = req else { panic!("not a run") };
        assert_eq!(run.id.as_deref(), Some("r1"));
        assert_eq!(run.formats, vec![FormatTag::Float64, FormatTag::Ofp8E4M3]);
        assert_eq!(run.threads, 2);
        assert!(run.progress, "progress defaults on");
        assert_eq!(run.config.eigenvalue_count, 3);
        assert_eq!(run.config.cell_deadline, Some(std::time::Duration::from_millis(500)));
        let CorpusSpec::Named { kind, cfg, take } = run.corpus else { panic!("not named") };
        assert_eq!(kind, CorpusKind::Graph);
        assert_eq!((cfg.seed, cfg.size_range, take), (11, (24, 30), 2));
    }

    #[test]
    fn inline_matrices_parse_and_materialize() {
        let req = parse_request(
            r#"{"type":"run","matrices":[{"name":"d","n":3,"triplets":[[0,0,2.0],[1,1,3.0],[2,2,4.0]]}],"formats":["posit32"],"progress":false}"#,
        )
        .unwrap();
        let Request::Run(run) = req else { panic!("not a run") };
        assert!(!run.progress);
        let corpus = run.corpus.materialize();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0].name, "d");
        assert_eq!(corpus[0].matrix.nrows(), 3);
        assert_eq!(corpus[0].matrix.nnz(), 3);
    }

    #[test]
    fn malformed_lines_give_typed_errors() {
        for (line, needle) in [
            ("{", "bad JSON"),
            (r#"{"type":"dance"}"#, "unknown request type"),
            (r#"{"type":"run","formats":["float128"]}"#, "unknown format"),
            (r#"{"type":"run","formats":[]}"#, "must not be empty"),
            (r#"{"type":"run"}"#, "missing \"formats\""),
            (
                r#"{"type":"run","formats":["float64"],"matrices":[{"name":"x","n":2,"triplets":[[0,5,1.0]]}]}"#,
                "outside",
            ),
            (
                r#"{"type":"run","formats":["float64"],"corpus":{"size_min":10,"size_max":5}}"#,
                "bad size range",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn response_lines_are_compact_single_line_json() {
        assert_eq!(accepted_line("r1"), r#"{"type":"accepted","id":"r1"}"#);
        assert_eq!(
            rejected_line("r1", REASON_OVERLOADED),
            r#"{"type":"rejected","id":"r1","reason":"overloaded"}"#
        );
        let err = error_line(None, "nope");
        assert_eq!(err, r#"{"type":"error","id":null,"message":"nope"}"#);
        let progress = progress_line(
            "r1",
            &ProgressEvent::GridStarted { matrices: 3, formats: 2 },
        );
        assert!(!progress.contains('\n'));
        assert!(progress.contains(r#""kind":"grid-started""#), "{progress}");
    }

    #[test]
    fn stats_and_shutdown_requests_parse() {
        assert!(matches!(
            parse_request(r#"{"type":"stats","id":"s1"}"#).unwrap(),
            Request::Stats { id: Some(_) }
        ));
        assert!(matches!(
            parse_request(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: None }
        ));
    }
}
