//! The daemon: acceptor thread → per-connection reader/writer threads →
//! bounded admission queue → fixed worker pool over one shared store.
//!
//! ## Lifecycle of a run request
//!
//! 1. The connection **reader** parses the line, counts
//!    `serve.request.admitted`, and `try_send`s a job into the bounded
//!    queue. A full queue (or a draining daemon) answers with the typed
//!    `rejected` line *immediately* — backpressure never stalls the
//!    socket.
//! 2. A **worker** dequeues the job, takes a RAII [`Permit`] from the
//!    concurrency limiter, opens a `serve.request` span, and runs the
//!    session against the shared store — identical racing requests
//!    dedupe on the store's per-key single-flight. Progress events
//!    stream through the connection's writer channel as they happen.
//! 3. The final `result` line is delivered synchronously (the writer
//!    acks the flush): delivered to a live client counts
//!    `serve.request.completed`, a gone client counts
//!    `serve.request.aborted` — either way the permit returns to the
//!    limiter on drop, panics included, so a dead client can neither
//!    poison the store nor leak the worker slot.
//!
//! ## Shutdown
//!
//! A `shutdown` request (the SIGTERM-equivalent in this offline,
//! signal-less workspace) flips the drain flag, pokes the acceptor
//! awake, sends one poison pill per worker (*behind* everything already
//! queued, so the queue drains first), joins the pool, rejects any
//! straggler jobs, flushes the store, and reports the final counters —
//! `admitted = completed + aborted + rejected` must hold by then.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lpa_experiments::{ExperimentPlan, ProgressEvent, ProgressObserver};
use lpa_store::Store;

use crate::config::ServeConfig;
use crate::limiter::ConcurrencyLimiter;
use crate::metrics::ServeMetrics;
use crate::protocol::{self, Request, RunRequest};

/// Poll interval of blocked connection readers — bounds how long a
/// drained shutdown waits for them.
const READ_POLL: Duration = Duration::from_millis(50);

/// Final counters of a daemon run, returned by [`Daemon::run`].
#[derive(Debug)]
pub struct ServeSummary {
    pub admitted: u64,
    pub completed: u64,
    pub aborted: u64,
    pub rejected: u64,
    pub malformed: u64,
    /// `admitted == completed + aborted + rejected` at drain time.
    pub invariant_ok: bool,
    /// The shutdown log line (`ServeMetrics::summary_line`).
    pub summary_line: String,
}

/// What flows to a connection's writer thread.
enum WriterMsg {
    /// Fire-and-forget line (acks, progress, errors).
    Line(String),
    /// The final line of a request; the writer replies whether the
    /// client actually received it (write + flush succeeded and the
    /// reader has not seen EOF).
    Final(String, SyncSender<bool>),
}

/// One admitted run, parked in the queue until a worker takes it.
struct RunJob {
    id: String,
    request: RunRequest,
    writer: Sender<WriterMsg>,
    conn_alive: Arc<AtomicBool>,
    /// This connection's admitted-but-unfinished requests (keeps the
    /// reader alive through a shutdown until its results went out).
    outstanding: Arc<AtomicUsize>,
    enqueued: Instant,
}

enum Job {
    Run(Box<RunJob>),
    /// Shutdown pill: the receiving worker exits.
    Pill,
}

/// Everything the acceptor, connections and workers share.
struct Shared {
    metrics: ServeMetrics,
    limiter: ConcurrencyLimiter,
    store: Option<Arc<Store>>,
    queue: SyncSender<Job>,
    /// Source of truth for the queue-depth gauge (`fetch_add` beats the
    /// gauge's racy read-modify-write).
    depth: AtomicUsize,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Daemon-assigned fallback request ids (`run-N`).
    next_id: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn depth_inc(&self) {
        let now = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.queue_depth.set(now as u64);
    }

    fn depth_dec(&self) {
        let before = self.depth.fetch_sub(1, Ordering::SeqCst);
        self.metrics.queue_depth.set(before.saturating_sub(1) as u64);
    }

    /// Flip the drain flag (idempotent) and poke the acceptor awake.
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Control handle onto a running daemon — what in-process callers (tests,
/// embedding harnesses) use to trigger shutdown and read live counters.
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

impl DaemonHandle {
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    workers: usize,
}

impl Daemon {
    /// Bind the listen socket and materialize the executor state. The
    /// store handle is shared by every worker — that sharing is what
    /// makes cross-request deduplication work.
    pub fn bind(config: &ServeConfig, store: Option<Arc<Store>>) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServeMetrics::new();
        let limiter = ConcurrencyLimiter::new(config.max_inflight, metrics.inflight.clone());
        let (queue, receiver) = mpsc::sync_channel(config.queue);
        let shared = Arc::new(Shared {
            metrics,
            limiter,
            store,
            queue,
            depth: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            addr,
            next_id: AtomicU64::new(0),
        });
        Ok(Daemon {
            listener,
            shared,
            receiver: Arc::new(Mutex::new(receiver)),
            workers: config.max_inflight,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle { shared: self.shared.clone() }
    }

    /// Serve until shutdown, then drain and report. Blocks the calling
    /// thread for the daemon's whole life.
    pub fn run(self) -> ServeSummary {
        let Daemon { listener, shared, receiver, workers } = self;

        let worker_threads: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("lpa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("spawn worker")
            })
            .collect();

        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = shared.clone();
            conn_threads.push(
                std::thread::Builder::new()
                    .name("lpa-serve-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn connection"),
            );
        }

        // Drain: pills queue *behind* already-admitted work, so workers
        // finish the backlog before they exit. `send` blocks politely
        // while the queue is full of real jobs.
        for _ in 0..workers {
            let _ = shared.queue.send(Job::Pill);
        }
        for t in worker_threads {
            let _ = t.join();
        }
        // Readers notice the drain flag within one poll tick once their
        // outstanding requests are answered; writers exit when the last
        // sender drops. Keep rejecting straggler jobs while waiting — a
        // reader that read the flag as false just before the flip can
        // still admit one behind the pills, and with the pool gone only
        // this loop can answer its client (keeping the lifecycle
        // identity balanced).
        let mut conn_threads = conn_threads;
        loop {
            drain_stragglers(&shared, &receiver);
            conn_threads.retain(|t| !t.is_finished());
            if conn_threads.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(store) = shared.store.as_ref() {
            if let Err(e) = store.flush() {
                eprintln!("lpa-serve: store flush failed: {e}");
            }
        }
        let m = &shared.metrics;
        ServeSummary {
            admitted: m.admitted.get(),
            completed: m.completed.get(),
            aborted: m.aborted.get(),
            rejected: m.rejected.get(),
            malformed: m.malformed.get(),
            invariant_ok: m.invariant_ok(),
            summary_line: m.summary_line(),
        }
    }
}

// ---------------------------------------------------------------------
// Connection side.

/// Reader half: parse request lines, answer `stats`/`shutdown` inline,
/// admit runs. Owns the connection's writer thread via the last sender.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Polling read: a blocked reader must notice the drain flag.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let conn_alive = Arc::new(AtomicBool::new(true));
    let outstanding = Arc::new(AtomicUsize::new(0));
    let (writer_tx, writer_rx) = mpsc::channel::<WriterMsg>();
    let writer_thread = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let conn_alive = conn_alive.clone();
        std::thread::Builder::new()
            .name("lpa-serve-writer".into())
            .spawn(move || writer_loop(stream, writer_rx, &conn_alive))
            .expect("spawn writer")
    };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF: the client hung up. In-flight work for this
                // connection now terminates as `aborted`.
                conn_alive.store(false, Ordering::SeqCst);
                break;
            }
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() {
                    handle_line(request, shared, &writer_tx, &conn_alive, &outstanding);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick. Leave once the daemon drains and nothing of
                // ours is still in flight (a partially read line stays
                // in `line` across ticks).
                if shared.draining() && outstanding.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
            Err(_) => {
                conn_alive.store(false, Ordering::SeqCst);
                break;
            }
        }
    }
    drop(writer_tx);
    let _ = writer_thread.join();
}

fn handle_line(
    request: &str,
    shared: &Arc<Shared>,
    writer: &Sender<WriterMsg>,
    conn_alive: &Arc<AtomicBool>,
    outstanding: &Arc<AtomicUsize>,
) {
    match protocol::parse_request(request) {
        Err(message) => {
            shared.metrics.malformed.incr();
            let _ = writer.send(WriterMsg::Line(protocol::error_line(None, &message)));
        }
        Ok(Request::Stats { id }) => {
            shared.metrics.stats_served.incr();
            let id = id.unwrap_or_else(|| "stats".into());
            let serve = shared.metrics.registry().to_value();
            let store = shared.store.as_ref().map(|s| s.stats().registry().to_value());
            let _ = writer.send(WriterMsg::Line(protocol::stats_line(&id, serve, store)));
        }
        Ok(Request::Shutdown { id }) => {
            let id = id.unwrap_or_else(|| "shutdown".into());
            let _ = writer.send(WriterMsg::Line(protocol::shutting_down_line(&id)));
            shared.begin_shutdown();
        }
        Ok(Request::Run(run)) => {
            let id = run.id.clone().unwrap_or_else(|| {
                format!("run-{}", shared.next_id.fetch_add(1, Ordering::Relaxed))
            });
            shared.metrics.admitted.incr();
            if shared.draining() {
                shared.metrics.rejected.incr();
                let _ = writer.send(WriterMsg::Line(protocol::rejected_line(
                    &id,
                    protocol::REASON_SHUTTING_DOWN,
                )));
                return;
            }
            outstanding.fetch_add(1, Ordering::SeqCst);
            let job = Job::Run(Box::new(RunJob {
                id: id.clone(),
                request: run,
                writer: writer.clone(),
                conn_alive: conn_alive.clone(),
                outstanding: outstanding.clone(),
                enqueued: Instant::now(),
            }));
            // Count the slot *before* the send: a worker can dequeue the
            // job (and `depth_dec`) the instant it lands, so counting
            // after would race the decrement into underflow.
            shared.depth_inc();
            match shared.queue.try_send(job) {
                Ok(()) => {
                    let _ = writer.send(WriterMsg::Line(protocol::accepted_line(&id)));
                }
                Err(TrySendError::Full(_)) => {
                    shared.depth_dec();
                    outstanding.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.rejected.incr();
                    let _ = writer.send(WriterMsg::Line(protocol::rejected_line(
                        &id,
                        protocol::REASON_OVERLOADED,
                    )));
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.depth_dec();
                    outstanding.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.rejected.incr();
                    let _ = writer.send(WriterMsg::Line(protocol::rejected_line(
                        &id,
                        protocol::REASON_SHUTTING_DOWN,
                    )));
                }
            }
        }
    }
}

/// Writer half: owns the socket's write side. After the first failed
/// write the connection is marked dead and every further line is
/// discarded — but `Final` acks keep flowing so workers never block on a
/// gone client.
fn writer_loop(mut stream: TcpStream, rx: Receiver<WriterMsg>, conn_alive: &AtomicBool) {
    let write_line = |stream: &mut TcpStream, text: &str| -> bool {
        if !conn_alive.load(Ordering::SeqCst) {
            return false;
        }
        let ok = stream
            .write_all(text.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_ok();
        if !ok {
            conn_alive.store(false, Ordering::SeqCst);
        }
        ok
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Line(text) => {
                let _ = write_line(&mut stream, &text);
            }
            WriterMsg::Final(text, ack) => {
                let delivered = write_line(&mut stream, &text);
                let _ = ack.send(delivered);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker side.

fn worker_loop(shared: &Arc<Shared>, receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let rx = receiver.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match job {
            Err(_) | Ok(Job::Pill) => break,
            Ok(Job::Run(job)) => {
                shared.depth_dec();
                let permit = shared.limiter.acquire();
                run_one(shared, &job);
                // Explicit, though unwind-safe either way: the permit
                // returns to the limiter even if `run_one` panicked.
                drop(permit);
                job.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Streams progress lines to the connection while the session runs.
/// Sends are fire-and-forget: a dead connection just drops them.
struct ServeObserver<'a> {
    id: &'a str,
    writer: &'a Sender<WriterMsg>,
    conn_alive: &'a AtomicBool,
}

impl ProgressObserver for ServeObserver<'_> {
    fn on_event(&self, event: &ProgressEvent) {
        if self.conn_alive.load(Ordering::Relaxed) {
            let _ = self.writer.send(WriterMsg::Line(protocol::progress_line(self.id, event)));
        }
    }
}

fn run_one(shared: &Arc<Shared>, job: &RunJob) {
    let _span = lpa_obs::span(lpa_obs::SERVE_REQUEST);
    // The whole request is unwind-isolated, the PR-6 pattern: an armed
    // `serve.worker.panic` fault (or any bug) costs one error response,
    // never the daemon.
    let final_text = catch_unwind(AssertUnwindSafe(|| compute_final_line(shared, job)))
        .unwrap_or_else(|panic| {
            let reason = panic_message(panic.as_ref());
            protocol::error_line(Some(&job.id), &format!("request crashed: {reason}"))
        });

    let (ack_tx, ack_rx) = mpsc::sync_channel::<bool>(1);
    let delivered = match job.writer.send(WriterMsg::Final(final_text, ack_tx)) {
        Ok(()) => ack_rx.recv().unwrap_or(false),
        Err(_) => false,
    };
    // `delivered` alone decides: the writer only reports true when the
    // write+flush succeeded on a then-live connection. Re-checking
    // `conn_alive` here would race a client that reads its result and
    // disconnects immediately — a completed request, not an abort.
    if delivered {
        shared.metrics.completed.incr();
    } else {
        shared.metrics.aborted.incr();
    }
    shared.metrics.latency.record(job.enqueued.elapsed().as_nanos() as u64);
}

/// Run the session and render its final line (a `result`, or an `error`
/// for requests that die before reaching the session).
fn compute_final_line(shared: &Arc<Shared>, job: &RunJob) -> String {
    lpa_faults::inject_panic(lpa_faults::SERVE_WORKER_PANIC);
    let corpus = job.request.corpus.materialize();
    if corpus.is_empty() {
        return protocol::error_line(Some(&job.id), "corpus resolved to zero matrices");
    }
    let observer = ServeObserver {
        id: &job.id,
        writer: &job.writer,
        conn_alive: &job.conn_alive,
    };
    let mut plan = ExperimentPlan::over(&corpus)
        .formats(&job.request.formats)
        .config(job.request.config.clone())
        .maybe_store(shared.store.as_deref());
    if job.request.threads > 0 {
        plan = plan.threads(job.request.threads);
    }
    if job.request.progress {
        plan = plan.observer(&observer);
    }
    let results = plan.run();
    protocol::result_line(&job.id, &results)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Answer any job admitted after the worker pool drained.
fn drain_stragglers(shared: &Arc<Shared>, receiver: &Arc<Mutex<Receiver<Job>>>) {
    while let Ok(job) = receiver.lock().unwrap_or_else(|e| e.into_inner()).try_recv() {
        if let Job::Run(job) = job {
            shared.depth_dec();
            shared.metrics.rejected.incr();
            let _ = job.writer.send(WriterMsg::Line(protocol::rejected_line(
                &job.id,
                protocol::REASON_SHUTTING_DOWN,
            )));
            job.outstanding.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
