//! # lpa-bench — benchmark and figure-regeneration harnesses
//!
//! One harness per table/figure of the paper (run via `cargo bench -p
//! lpa-bench --bench <name>` or all at once with `cargo bench`), plus
//! criterion micro-benchmarks of the substrates.
//!
//! Every harness builds its run through the workspace's one front door —
//! [`lpa_experiments::ExperimentPlan`] — configured by resolved
//! [`HarnessSettings`]: the benches resolve from the environment alone
//! (`LPA_BENCH_SCALE`, `LPA_BENCH_SIZE_MAX`, `LPA_BENCH_MATRICES`,
//! `LPA_STORE`, `LPA_ARITH_TIER`), while the `reproduce` binary layers its
//! CLI flags on top via [`PlanOverrides`] (flag > env > default, see
//! `lpa_experiments::harness`). Harness sizes are kept small enough for a
//! laptop run by default.

use std::fs;
use std::path::PathBuf;

use lpa_datagen::{CorpusConfig, GraphClass, TestMatrix};
use lpa_experiments::{
    format_summary_table, write_figure_csv, ExperimentConfig, ExperimentPlan, ExperimentResults,
    FormatTag, Metric, StderrProgress,
};
use lpa_store::{ArtifactKind, Store};

pub use lpa_experiments::harness::{HarnessEnv, HarnessSettings, PlanOverrides};

/// Corpus configuration used by the figure harnesses for the given
/// resolved settings (the bench policy: the paper's nnz cap, dimensions
/// from 40 up, a fixed seed). A `size_max` below the 40 floor is clamped
/// to it — the generators require `size_range.0 <= size_range.1`.
pub fn bench_corpus_config(settings: &HarnessSettings) -> CorpusConfig {
    CorpusConfig {
        seed: 0x5EED,
        scale: settings.scale,
        size_range: (40, settings.size_max.max(40)),
        max_nnz: 20_000,
    }
}

/// Experiment configuration used by the figure harnesses: the paper's
/// parameters (10 eigenvalues + 2 buffer, largest magnitude, per-width
/// tolerances) with a restart budget suited to small matrices.
pub fn bench_experiment_config() -> ExperimentConfig {
    ExperimentConfig { max_restarts: 80, ..Default::default() }
}

/// The output directory for CSV artifacts (`out/` at the workspace root).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    fs::create_dir_all(&dir).expect("create out dir");
    dir
}

/// Print a store's per-kind counters after a harness run; the warm-start
/// line is what CI greps to assert a second run recomputed nothing.
pub fn print_store_counters(store: &Store) {
    let r = store.stats().snapshot(ArtifactKind::Reference);
    let o = store.stats().snapshot(ArtifactKind::Outcome);
    println!(
        "store[reference]: {} hits / {} misses; store[outcome]: {} hits / {} misses ({} written, {} read bytes, dir {})",
        r.hits(),
        r.misses,
        o.hits(),
        o.misses,
        r.bytes_written + o.bytes_written,
        r.bytes_read + o.bytes_read,
        store.root().display(),
    );
    if r.misses == 0 && r.hits() > 0 {
        println!("warm-start: all references served from store");
    }
    if let Some(line) = corruption_summary(store) {
        println!("{line}");
    }
}

/// The `store corruption:` marker line CI's fault-injection job greps,
/// rendered straight from the store's metrics registry (`store.corrupt`
/// plus the per-kind `store.<kind>.quarantined` counters) rather than
/// from a private tally. `None` when no corrupt frame was seen.
pub fn corruption_summary(store: &Store) -> Option<String> {
    let registry = store.stats().registry();
    let corrupt = registry.counter_value("store.corrupt");
    if corrupt == 0 {
        return None;
    }
    let quarantined: u64 = ArtifactKind::ALL
        .iter()
        .map(|kind| registry.counter_value(&format!("store.{}.quarantined", kind.name())))
        .sum();
    Some(format!("store corruption: {corrupt} corrupt frames detected ({quarantined} quarantined)"))
}

/// Run one figure: the corpus slice, all 14 formats, grouped by bit width,
/// printing the same kind of series the paper plots and writing CSVs.
/// Progress streams to stderr while the grid runs; stdout carries the
/// machine-greppable summary only.
pub fn run_figure(
    figure: &str,
    title: &str,
    corpus: &[TestMatrix],
    settings: &HarnessSettings,
) -> ExperimentResults {
    let formats = FormatTag::all();
    println!("=== {figure}: {title} ===");
    println!(
        "corpus: {} matrices (n = {}..{}, nnz <= {})",
        corpus.len(),
        corpus.iter().map(|t| t.n()).min().unwrap_or(0),
        corpus.iter().map(|t| t.n()).max().unwrap_or(0),
        corpus.iter().map(|t| t.nnz()).max().unwrap_or(0),
    );
    let store = settings.open_store();
    let progress = StderrProgress::new(figure);
    // Snapshot the process-global session counters so the degraded summary
    // below can be rendered from this run's registry deltas.
    let session_counter = |name: &str| lpa_obs::global().counter_value(name);
    let (crashed0, timed_out0, lost0) = (
        session_counter("session.cell.crashed"),
        session_counter("session.cell.timed_out"),
        session_counter("session.reference.lost"),
    );
    let results = ExperimentPlan::over(corpus)
        .formats(&formats)
        .config(bench_experiment_config())
        .maybe_store(store.as_ref())
        .apply(settings)
        .observer(&progress)
        .session()
        .run();
    if !results.skipped.is_empty() {
        println!("skipped (reference failed): {}", results.skipped.len());
    }
    if results.is_degraded() {
        // The greppable marker CI's fault-injection job asserts on: the grid
        // completed despite isolated crashes/deadline hits, and those cells
        // were not persisted (a clean rerun retries them). Since PR 7 the
        // numbers are registry views — deltas of the `session.*` counters
        // the run just tallied — which the manifest tests pin to the grid's
        // own `crashed_cells()`/`crashed.len()` values.
        println!(
            "degraded: {} cells crashed or timed out ({} matrices lost their reference)",
            session_counter("session.cell.crashed") - crashed0
                + session_counter("session.cell.timed_out")
                - timed_out0,
            session_counter("session.reference.lost") - lost0,
        );
    }
    if let Some(store) = &store {
        print_store_counters(store);
    }

    for bits in [8u32, 16, 32, 64] {
        let row = FormatTag::with_bits(bits);
        println!("\n-- {bits}-bit formats, relative eigenvalue errors (log10 percentiles) --");
        print!("{}", format_summary_table(&results, &row, Metric::Eigenvalues));
        println!("-- {bits}-bit formats, relative eigenvector errors (log10 percentiles) --");
        print!("{}", format_summary_table(&results, &row, Metric::Eigenvectors));
    }

    for metric in [Metric::Eigenvalues, Metric::Eigenvectors] {
        let path = out_dir().join(format!("{figure}_{}.csv", metric.name()));
        let file = fs::File::create(&path).expect("create csv");
        write_figure_csv(file, &results, &formats, metric).expect("write csv");
        println!("wrote {}", path.display());
    }
    results
}

fn subsample(mut corpus: Vec<TestMatrix>, budget: usize) -> Vec<TestMatrix> {
    if corpus.len() <= budget {
        return corpus;
    }
    // Evenly spaced picks; `step > 1`, so the pick indices are strictly
    // increasing and a single merge-style walk replaces the former
    // O(n · budget) `picks.contains` scan.
    let step = corpus.len() as f64 / budget as f64;
    let picks: Vec<usize> = (0..budget).map(|i| (i as f64 * step) as usize).collect();
    let mut next_pick = picks.iter().peekable();
    let mut out = Vec::with_capacity(budget);
    for (i, t) in corpus.drain(..).enumerate() {
        if next_pick.peek() == Some(&&i) {
            out.push(t);
            next_pick.next();
        }
    }
    out
}

/// The general-matrix corpus slice used by the Figure 1 harness.
pub fn general_bench_corpus(settings: &HarnessSettings) -> Vec<TestMatrix> {
    subsample(
        lpa_datagen::general_corpus(&bench_corpus_config(settings)),
        settings.matrix_budget,
    )
}

/// The graph-Laplacian corpus restricted to one of the paper's four classes
/// (used by the Figure 2-5 harnesses).
pub fn class_bench_corpus(class: GraphClass, settings: &HarnessSettings) -> Vec<TestMatrix> {
    let corpus: Vec<TestMatrix> =
        lpa_datagen::graph_laplacian_corpus(&bench_corpus_config(settings))
            .into_iter()
            .filter(|t| t.class() == Some(class))
            .collect();
    subsample(corpus, settings.matrix_budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_settings() -> HarnessSettings {
        PlanOverrides::default().resolve(&HarnessEnv::default())
    }

    #[test]
    fn subsample_is_even_order_preserving_and_exact() {
        let corpus = lpa_datagen::general_corpus(&CorpusConfig::tiny());
        assert!(corpus.len() > 4);
        let names: Vec<String> = corpus.iter().map(|t| t.name.clone()).collect();
        for budget in [1, 2, 3, corpus.len() - 1, corpus.len(), corpus.len() + 5] {
            let picked = subsample(corpus.clone(), budget);
            assert_eq!(picked.len(), budget.min(names.len()), "budget {budget}");
            // The picked names must be a subsequence of the original order.
            let mut cursor = names.iter();
            for t in &picked {
                assert!(
                    cursor.any(|n| n == &t.name),
                    "subsample reordered or duplicated {} at budget {budget}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn configs_resolve() {
        let settings = default_settings();
        let c = bench_corpus_config(&settings);
        assert!(c.size_range.0 >= 40);
        let e = bench_experiment_config();
        assert_eq!(e.eigenvalue_count, 10);
        assert_eq!(e.eigenvalue_buffer_count, 2);
        let biological = class_bench_corpus(GraphClass::Biological, &settings);
        assert!(!biological.is_empty());
    }

    /// The `store corruption:` line must be a pure registry view: render
    /// it after a detected-corrupt read and check it against the same
    /// counters read through the snapshot API.
    #[test]
    fn corruption_line_is_a_registry_view() {
        let dir = std::env::temp_dir().join(format!("lpa-bench-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        assert_eq!(corruption_summary(&store), None, "clean store must print no corruption line");

        let key = lpa_store::hash128(b"corruption-line-fixture");
        store.put(ArtifactKind::Outcome, key, b"payload".to_vec()).unwrap();
        let path = store.path_of(key);
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(ArtifactKind::Outcome, key).unwrap(), None, "corrupt frame served");

        let snapshot = store.stats().snapshot(ArtifactKind::Outcome);
        assert_eq!((snapshot.corrupt, snapshot.quarantined), (1, 1));
        assert_eq!(
            corruption_summary(&store).as_deref(),
            Some("store corruption: 1 corrupt frames detected (1 quarantined)"),
            "rendered line disagrees with the registry counters"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overrides_reach_the_corpus_shape() {
        let settings = PlanOverrides {
            scale: Some(1),
            size_max: Some(48),
            matrices: Some(2),
            ..Default::default()
        }
        .resolve(&HarnessEnv::default());
        let corpus = general_bench_corpus(&settings);
        assert_eq!(corpus.len(), 2, "matrix budget applies");
        assert!(corpus.iter().all(|t| t.n() <= 48), "size cap applies");
    }
}
