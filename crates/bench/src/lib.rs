//! # lpa-bench — benchmark and figure-regeneration harnesses
//!
//! One harness per table/figure of the paper (run via `cargo bench -p
//! lpa-bench --bench <name>` or all at once with `cargo bench`), plus
//! criterion micro-benchmarks of the substrates.  Harness sizes are kept
//! small enough for a laptop run by default; set `LPA_BENCH_SCALE` (an
//! integer ≥ 1) to enlarge the corpora, and `LPA_BENCH_SIZE_MAX` to raise the
//! matrix dimensions.
//!
//! Set `LPA_STORE=<dir>` (or pass `--store <dir>` to the `reproduce`
//! binary) to back every harness run with the persistent `lpa-store`
//! artifact store: the first run populates it, every later run reuses the
//! double-double reference solves and outcomes, byte-identically.

use std::fs;
use std::path::PathBuf;

use lpa_datagen::{CorpusConfig, GraphClass, TestMatrix};
use lpa_experiments::{
    format_summary_table, run_experiment_with_store, write_figure_csv, ExperimentConfig,
    ExperimentResults, FormatTag, Metric,
};
use lpa_store::{ArtifactKind, Store};

/// Corpus configuration used by the figure harnesses, honouring the
/// `LPA_BENCH_SCALE` / `LPA_BENCH_SIZE_MAX` environment variables.
pub fn bench_corpus_config() -> CorpusConfig {
    let scale = std::env::var("LPA_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let size_max =
        std::env::var("LPA_BENCH_SIZE_MAX").ok().and_then(|s| s.parse().ok()).unwrap_or(72);
    CorpusConfig { seed: 0x5EED, scale, size_range: (40, size_max), max_nnz: 20_000 }
}

/// Experiment configuration used by the figure harnesses: the paper's
/// parameters (10 eigenvalues + 2 buffer, largest magnitude, per-width
/// tolerances) with a restart budget suited to small matrices.
pub fn bench_experiment_config() -> ExperimentConfig {
    ExperimentConfig { max_restarts: 80, ..Default::default() }
}

/// The output directory for CSV artifacts (`out/` at the workspace root).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    fs::create_dir_all(&dir).expect("create out dir");
    dir
}

/// Open the persistent experiment store named by `LPA_STORE`, if any.
///
/// An empty value disables the store, same as unset.
pub fn bench_store() -> Option<Store> {
    let dir = std::env::var_os("LPA_STORE")?;
    if dir.is_empty() {
        return None;
    }
    Some(Store::open(&dir).unwrap_or_else(|e| panic!("LPA_STORE {}: {e}", dir.to_string_lossy())))
}

/// Print a store's per-kind counters after a harness run; the warm-start
/// line is what CI greps to assert a second run recomputed nothing.
pub fn print_store_counters(store: &Store) {
    let r = store.stats().snapshot(ArtifactKind::Reference);
    let o = store.stats().snapshot(ArtifactKind::Outcome);
    println!(
        "store[reference]: {} hits / {} misses; store[outcome]: {} hits / {} misses ({} written, {} read bytes, dir {})",
        r.hits(),
        r.misses,
        o.hits(),
        o.misses,
        r.bytes_written + o.bytes_written,
        r.bytes_read + o.bytes_read,
        store.root().display(),
    );
    if r.misses == 0 && r.hits() > 0 {
        println!("warm-start: all references served from store");
    }
}

/// Run one figure: the corpus slice, all 14 formats, grouped by bit width,
/// printing the same kind of series the paper plots and writing CSVs.
pub fn run_figure(figure: &str, title: &str, corpus: &[TestMatrix]) -> ExperimentResults {
    let cfg = bench_experiment_config();
    let formats = FormatTag::all();
    println!("=== {figure}: {title} ===");
    println!(
        "corpus: {} matrices (n = {}..{}, nnz <= {})",
        corpus.len(),
        corpus.iter().map(|t| t.n()).min().unwrap_or(0),
        corpus.iter().map(|t| t.n()).max().unwrap_or(0),
        corpus.iter().map(|t| t.nnz()).max().unwrap_or(0),
    );
    let store = bench_store();
    let results = run_experiment_with_store(corpus, &formats, &cfg, store.as_ref());
    if !results.skipped.is_empty() {
        println!("skipped (reference failed): {}", results.skipped.len());
    }
    if let Some(store) = &store {
        print_store_counters(store);
    }

    for bits in [8u32, 16, 32, 64] {
        let row = FormatTag::with_bits(bits);
        println!("\n-- {bits}-bit formats, relative eigenvalue errors (log10 percentiles) --");
        print!("{}", format_summary_table(&results, &row, Metric::Eigenvalues));
        println!("-- {bits}-bit formats, relative eigenvector errors (log10 percentiles) --");
        print!("{}", format_summary_table(&results, &row, Metric::Eigenvectors));
    }

    for metric in [Metric::Eigenvalues, Metric::Eigenvectors] {
        let path = out_dir().join(format!("{figure}_{}.csv", metric.name()));
        let file = fs::File::create(&path).expect("create csv");
        write_figure_csv(file, &results, &formats, metric).expect("write csv");
        println!("wrote {}", path.display());
    }
    results
}

/// How many matrices a default figure run uses (kept small because the whole
/// pipeline runs in software-emulated arithmetic); `LPA_BENCH_MATRICES`
/// overrides it.
pub fn bench_matrix_budget() -> usize {
    std::env::var("LPA_BENCH_MATRICES").ok().and_then(|s| s.parse().ok()).unwrap_or(6)
}

fn subsample(mut corpus: Vec<TestMatrix>, budget: usize) -> Vec<TestMatrix> {
    if corpus.len() <= budget {
        return corpus;
    }
    // Evenly spaced picks; `step > 1`, so the pick indices are strictly
    // increasing and a single merge-style walk replaces the former
    // O(n · budget) `picks.contains` scan.
    let step = corpus.len() as f64 / budget as f64;
    let picks: Vec<usize> = (0..budget).map(|i| (i as f64 * step) as usize).collect();
    let mut next_pick = picks.iter().peekable();
    let mut out = Vec::with_capacity(budget);
    for (i, t) in corpus.drain(..).enumerate() {
        if next_pick.peek() == Some(&&i) {
            out.push(t);
            next_pick.next();
        }
    }
    out
}

/// The general-matrix corpus slice used by the Figure 1 harness.
pub fn general_bench_corpus() -> Vec<TestMatrix> {
    subsample(lpa_datagen::general_corpus(&bench_corpus_config()), bench_matrix_budget())
}

/// The graph-Laplacian corpus restricted to one of the paper's four classes
/// (used by the Figure 2-5 harnesses).
pub fn class_bench_corpus(class: GraphClass) -> Vec<TestMatrix> {
    let corpus: Vec<TestMatrix> = lpa_datagen::graph_laplacian_corpus(&bench_corpus_config())
        .into_iter()
        .filter(|t| t.class() == Some(class))
        .collect();
    subsample(corpus, bench_matrix_budget())
}

/// Alias kept for the integration tests.
pub fn class_corpus(class: GraphClass) -> Vec<TestMatrix> {
    class_bench_corpus(class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_is_even_order_preserving_and_exact() {
        let corpus = lpa_datagen::general_corpus(&CorpusConfig::tiny());
        assert!(corpus.len() > 4);
        let names: Vec<String> = corpus.iter().map(|t| t.name.clone()).collect();
        for budget in [1, 2, 3, corpus.len() - 1, corpus.len(), corpus.len() + 5] {
            let picked = subsample(corpus.clone(), budget);
            assert_eq!(picked.len(), budget.min(names.len()), "budget {budget}");
            // The picked names must be a subsequence of the original order.
            let mut cursor = names.iter();
            for t in &picked {
                assert!(
                    cursor.any(|n| n == &t.name),
                    "subsample reordered or duplicated {} at budget {budget}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn configs_resolve() {
        let c = bench_corpus_config();
        assert!(c.size_range.0 >= 40);
        let e = bench_experiment_config();
        assert_eq!(e.eigenvalue_count, 10);
        assert_eq!(e.eigenvalue_buffer_count, 2);
        let biological = class_corpus(GraphClass::Biological);
        assert!(!biological.is_empty());
    }
}
