//! Reproduce every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p lpa-bench --bin reproduce -- \
//!     [--experiment figureN|table1|all] [--scale K] [--size-max N] [--matrices M] \
//!     [--store DIR] [--threads T] [--arith-tier unpack|softfloat] \
//!     [--kernel-batch batch|scalar] [--retry N] [--cell-deadline-ms MS] \
//!     [--obs on|off] [--manifest-out FILE]
//! ```
//!
//! CSV artifacts are written to `out/`. Every flag builds a
//! [`PlanOverrides`] entry that outranks the matching environment variable
//! (`--store` beats `LPA_STORE`, `--scale` beats `LPA_BENCH_SCALE`, …) —
//! the process environment is never mutated. `--store DIR` backs the run
//! with the persistent experiment store, so repeating a run reuses every
//! double-double reference solve.  `--help` prints the full flag ↔
//! environment-variable table, rendered from
//! `lpa_experiments::harness::ENV_DOCS` so the docs cannot drift from the
//! knobs.

use lpa_bench::{HarnessEnv, PlanOverrides};
use lpa_datagen::GraphClass;

const USAGE: &str = "usage: reproduce [--experiment figureN|table1|all] [flags]";

/// The full usage text: the one-liner plus the flag ↔ environment-variable
/// table generated from the harness's knob docs.
fn usage_text() -> String {
    format!(
        "{USAGE}\n\nflags (each outranks its environment variable; flag > env > default):\n{}",
        lpa_experiments::harness::env_docs_table()
    )
}

fn usage_error(message: &str) -> ! {
    eprintln!("reproduce: {message}");
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

/// The value of a `--flag VALUE` pair; a missing value is a hard error —
/// silently proceeding without (say) `--store` would recompute a whole
/// sweep and persist nothing.
fn flag_value(args: &[String], i: usize) -> String {
    args.get(i + 1).cloned().unwrap_or_else(|| usage_error(&format!("{} needs a value", args[i])))
}

/// Same, parsed; a garbled CLI value is a hard error, unlike environment
/// variables (which fall through to the next precedence level).
fn parsed_flag<T: std::str::FromStr>(args: &[String], i: usize) -> T {
    let raw = flag_value(args, i);
    raw.parse().unwrap_or_else(|_| usage_error(&format!("{} got invalid value {raw:?}", args[i])))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut overrides = PlanOverrides::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" => experiment = flag_value(&args, i),
            "--scale" => overrides.scale = Some(parsed_flag(&args, i)),
            "--size-max" => overrides.size_max = Some(parsed_flag(&args, i)),
            "--matrices" => overrides.matrices = Some(parsed_flag(&args, i)),
            "--store" => overrides.store_dir = Some(flag_value(&args, i).into()),
            "--threads" => overrides.threads = Some(parsed_flag(&args, i)),
            "--arith-tier" => overrides.arith_tier = Some(parsed_flag(&args, i)),
            "--kernel-batch" => overrides.kernel_batch = Some(parsed_flag(&args, i)),
            "--kernel-lanes" => overrides.kernel_lanes = Some(parsed_flag(&args, i)),
            "--retry" => overrides.retry = Some(parsed_flag(&args, i)),
            "--cell-deadline-ms" => overrides.cell_deadline_ms = Some(parsed_flag(&args, i)),
            "--obs" => {
                let raw = flag_value(&args, i);
                overrides.observability = Some(lpa_obs::parse_switch(&raw).unwrap_or_else(|| {
                    usage_error(&format!("--obs got invalid value {raw:?}"))
                }));
            }
            "--manifest-out" => overrides.manifest_out = Some(flag_value(&args, i).into()),
            "--help" | "-h" => {
                println!("{}", usage_text());
                return;
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 2;
    }
    let settings = overrides.resolve(&HarnessEnv::capture());

    let want = |name: &str| experiment == "all" || experiment == name;
    let mut matched = false;
    if want("table1") {
        matched = true;
        print_table1(&settings);
    }
    if want("figure1") {
        matched = true;
        lpa_bench::run_figure(
            "figure1",
            "general matrices",
            &lpa_bench::general_bench_corpus(&settings),
            &settings,
        );
    }
    for (name, class, title) in [
        ("figure2", GraphClass::Biological, "biological graph Laplacians"),
        ("figure3", GraphClass::Infrastructure, "infrastructure graph Laplacians"),
        ("figure4", GraphClass::Social, "social graph Laplacians"),
        ("figure5", GraphClass::Miscellaneous, "miscellaneous graph Laplacians"),
    ] {
        if want(name) {
            matched = true;
            lpa_bench::run_figure(
                name,
                title,
                &lpa_bench::class_bench_corpus(class, &settings),
                &settings,
            );
        }
    }
    if !matched {
        usage_error(&format!("unknown experiment {experiment:?}"));
    }
}

fn print_table1(settings: &lpa_bench::HarnessSettings) {
    let cfg = lpa_bench::bench_corpus_config(settings);
    let corpus = lpa_datagen::graph_corpus(&cfg);
    println!("=== table1: graph classification ===");
    for (cat, class, count) in lpa_datagen::category_counts(&corpus) {
        println!("{:<16} {:<16} {:>5}", class.name(), cat, count);
    }
}
