//! Reproduce every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p lpa-bench --bin reproduce -- [--experiment figureN|table1|all] [--scale K] [--matrices M]
//! ```
//!
//! CSV artifacts are written to `out/`.
use lpa_datagen::GraphClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" => {
                experiment = args.get(i + 1).cloned().unwrap_or_else(|| "all".into());
                i += 2;
            }
            "--scale" => {
                if let Some(v) = args.get(i + 1) {
                    std::env::set_var("LPA_BENCH_SCALE", v);
                }
                i += 2;
            }
            "--matrices" => {
                if let Some(v) = args.get(i + 1) {
                    std::env::set_var("LPA_BENCH_MATRICES", v);
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| experiment == "all" || experiment == name;
    if want("table1") {
        print_table1();
    }
    if want("figure1") {
        lpa_bench::run_figure("figure1", "general matrices", &lpa_bench::general_bench_corpus());
    }
    for (name, class, title) in [
        ("figure2", GraphClass::Biological, "biological graph Laplacians"),
        ("figure3", GraphClass::Infrastructure, "infrastructure graph Laplacians"),
        ("figure4", GraphClass::Social, "social graph Laplacians"),
        ("figure5", GraphClass::Miscellaneous, "miscellaneous graph Laplacians"),
    ] {
        if want(name) {
            lpa_bench::run_figure(name, title, &lpa_bench::class_bench_corpus(class));
        }
    }
}

fn print_table1() {
    let cfg = lpa_bench::bench_corpus_config();
    let corpus = lpa_datagen::graph_corpus(&cfg);
    println!("=== table1: graph classification ===");
    for (cat, class, count) in lpa_datagen::category_counts(&corpus) {
        println!("{:<16} {:<16} {:>5}", class.name(), cat, count);
    }
}
