//! Reproduce every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p lpa-bench --bin reproduce -- \
//!     [--experiment figureN|table1|all] [--scale K] [--matrices M] [--store DIR]
//! ```
//!
//! CSV artifacts are written to `out/`. `--store DIR` (equivalent to
//! `LPA_STORE=DIR`) backs the run with the persistent experiment store, so
//! repeating a run reuses every double-double reference solve.
use lpa_datagen::GraphClass;

/// The value of a `--flag VALUE` pair; a missing value is a hard error —
/// silently proceeding without (say) `--store` would recompute a whole
/// sweep and persist nothing.
fn flag_value(args: &[String], i: usize) -> String {
    args.get(i + 1).cloned().unwrap_or_else(|| {
        eprintln!("{} needs a value", args[i]);
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" => {
                experiment = flag_value(&args, i);
                i += 2;
            }
            "--scale" => {
                std::env::set_var("LPA_BENCH_SCALE", flag_value(&args, i));
                i += 2;
            }
            "--matrices" => {
                std::env::set_var("LPA_BENCH_MATRICES", flag_value(&args, i));
                i += 2;
            }
            "--store" => {
                std::env::set_var("LPA_STORE", flag_value(&args, i));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| experiment == "all" || experiment == name;
    if want("table1") {
        print_table1();
    }
    if want("figure1") {
        lpa_bench::run_figure("figure1", "general matrices", &lpa_bench::general_bench_corpus());
    }
    for (name, class, title) in [
        ("figure2", GraphClass::Biological, "biological graph Laplacians"),
        ("figure3", GraphClass::Infrastructure, "infrastructure graph Laplacians"),
        ("figure4", GraphClass::Social, "social graph Laplacians"),
        ("figure5", GraphClass::Miscellaneous, "miscellaneous graph Laplacians"),
    ] {
        if want(name) {
            lpa_bench::run_figure(name, title, &lpa_bench::class_bench_corpus(class));
        }
    }
}

fn print_table1() {
    let cfg = lpa_bench::bench_corpus_config();
    let corpus = lpa_datagen::graph_corpus(&cfg);
    println!("=== table1: graph classification ===");
    for (cat, class, count) in lpa_datagen::category_counts(&corpus) {
        println!("{:<16} {:<16} {:>5}", class.name(), cat, count);
    }
}
