//! Compare two `BENCH_micro.json` files and print greppable `bench-delta:`
//! lines, one per (format, op) present in both — CI runs it against the
//! committed baseline after regenerating the file, so perf regressions
//! surface directly in the job log:
//!
//! ```text
//! cargo run --release -p lpa-bench --bin bench_delta -- out/BENCH_micro.json new/BENCH_micro.json
//! bench-delta: posit32.dot 245.29 -> 30.12 ns (0.12x)
//! bench-delta: worst-ratio 1.04x (takum16.add)
//! ```
//!
//! Ratios are `new / old`: above 1.0 is slower, below is faster.  The tool
//! only reports; thresholds are a human (or grep) decision because CI
//! runners' absolute timings are noisy.

use serde::Value;

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(x) => Some(*x),
        _ => None,
    }
}

fn map(v: &Value) -> Option<&[(String, Value)]> {
    match v {
        Value::Map(m) => Some(m),
        _ => None,
    }
}

fn get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn load(path: &str) -> Vec<(String, Value)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_delta: cannot read {path}: {e}"));
    let value: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_delta: {path} is not valid JSON: {e:?}"));
    map(&value).unwrap_or_else(|| panic!("bench_delta: {path} is not a JSON object")).to_vec()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, old_path, new_path] = &args[..] else {
        eprintln!("usage: bench_delta OLD.json NEW.json");
        std::process::exit(2);
    };
    let old = load(old_path);
    let new = load(new_path);

    for (label, m) in [("old", &old), ("new", &new)] {
        if let Some(Value::Str(schema)) = get(m, "schema") {
            println!("bench-delta: {label} schema {schema}");
        }
    }

    let mut worst: Option<(f64, String)> = None;
    let (Some(old_ops), Some(new_ops)) =
        (get(&old, "ns_per_op").and_then(map), get(&new, "ns_per_op").and_then(map))
    else {
        eprintln!("bench_delta: ns_per_op missing from one of the files");
        std::process::exit(1);
    };
    for (format, entry) in new_ops {
        let (Some(new_entry), Some(old_entry)) =
            (map(entry), get(old_ops, format).and_then(map))
        else {
            continue;
        };
        for (op, v) in new_entry {
            let (Some(new_ns), Some(old_ns)) =
                (num(v), get(old_entry, op).and_then(num))
            else {
                continue;
            };
            if old_ns <= 0.0 {
                continue;
            }
            let ratio = new_ns / old_ns;
            println!("bench-delta: {format}.{op} {old_ns:.2} -> {new_ns:.2} ns ({ratio:.2}x)");
            if worst.as_ref().is_none_or(|(w, _)| ratio > *w) {
                worst = Some((ratio, format!("{format}.{op}")));
            }
        }
    }

    if let (Some(old_wall), Some(new_wall)) = (
        get(&old, "figure1_wall_ms").and_then(num),
        get(&new, "figure1_wall_ms").and_then(num),
    ) {
        println!(
            "bench-delta: figure1_wall_ms {old_wall:.0} -> {new_wall:.0} ({:.2}x)",
            new_wall / old_wall
        );
    }
    if let Some((ratio, name)) = worst {
        println!("bench-delta: worst-ratio {ratio:.2}x ({name})");
    }
}
