//! Validate `run_manifest/v1` artifacts and (optionally) prove their
//! timing-masked determinism — the CI consumer of `reproduce
//! --manifest-out`.
//!
//! ```text
//! manifest_check FILE [FILE2]
//! ```
//!
//! Each file is parsed and checked against the `run_manifest/v1` schema
//! (`lpa_experiments::manifest::validate`). With two files, their
//! timing-masked renderings — wall times and the thread knob zeroed —
//! must additionally be byte-identical: that is the manifest determinism
//! contract across thread counts (for runs with matching store state).
//! Every verdict is a greppable `manifest:` line on stdout; any failure
//! exits 1.

use lpa_experiments::manifest;
use serde::Value;

fn fail(message: &str) -> ! {
    println!("manifest: {message}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: cannot read: {e}")));
    let value: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e:?}")));
    match manifest::validate(&value) {
        Ok(()) => println!("manifest: {path} is a valid run_manifest/v1"),
        Err(e) => fail(&format!("{path}: schema violation: {e}")),
    }
    value
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (first, second) = match args.as_slice() {
        [first] => (first, None),
        [first, second] => (first, Some(second)),
        _ => {
            eprintln!("usage: manifest_check FILE [FILE2]");
            std::process::exit(2);
        }
    };
    let a = load(first);
    let Some(second) = second else { return };
    let b = load(second);

    let masked = |v: &Value| {
        serde_json::to_string_pretty(&manifest::timing_masked(v))
            .expect("serialize masked manifest")
    };
    if masked(&a) == masked(&b) {
        println!("manifest: timing-masked manifests are byte-identical");
    } else {
        fail(&format!("{first} and {second} differ beyond timings"));
    }
}
