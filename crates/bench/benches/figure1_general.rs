//! Figure 1: cumulative relative-error distributions of the 10 largest
//! eigenpairs on the general-matrix corpus (SuiteSparse substitute), for all
//! formats grouped by bit width.
fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::general_bench_corpus(&settings);
    lpa_bench::run_figure("figure1", "general matrices", &corpus, &settings);
}
