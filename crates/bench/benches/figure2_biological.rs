//! Figure 2: biological graph Laplacians.
fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Biological, &settings);
    lpa_bench::run_figure("figure2", "biological graph Laplacians", &corpus, &settings);
}
