//! Figure 2: biological graph Laplacians.
fn main() {
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Biological);
    lpa_bench::run_figure("figure2", "biological graph Laplacians", &corpus);
}
