//! Table 1: classification of the graph corpus into the paper's 31 categories
//! and 4 aggregated classes, with per-category counts.
use std::collections::BTreeMap;

fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let cfg = lpa_bench::bench_corpus_config(&settings);
    let corpus = lpa_datagen::graph_corpus(&cfg);
    let counts = lpa_datagen::category_counts(&corpus);
    let mut class_totals: BTreeMap<&'static str, usize> = BTreeMap::new();
    println!("=== table1: graph classification (synthetic Network Repository substitute) ===");
    println!("{:<16} {:<16} {:>6}", "class", "category", "count");
    for (cat, class, count) in &counts {
        println!("{:<16} {:<16} {:>6}", class.name(), cat, count);
        *class_totals.entry(class.name()).or_default() += count;
    }
    println!("\n{:<16} {:>6}", "class", "total");
    for (class, total) in &class_totals {
        println!("{:<16} {:>6}", class, total);
    }
    println!("overall: {} graphs", corpus.len());
    // CSV artifact
    let path = lpa_bench::out_dir().join("table1_graph_classes.csv");
    let mut s = String::from("class,category,count\n");
    for (cat, class, count) in &counts {
        s.push_str(&format!("{},{},{}\n", class.name(), cat, count));
    }
    std::fs::write(&path, s).expect("write table1 csv");
    println!("wrote {}", path.display());
}
