//! Ablation: does exploiting symmetry (dense tridiagonal path) change the
//! format ranking relative to the untailored general Krylov-Schur path?
use lpa_arith::types::{Posit16, Takum16, F16};

use lpa_arnoldi::{partial_schur, ArnoldiOptions};
use lpa_dense::eigen_sym::symmetric_eigenvalues;
use lpa_datagen::{general_corpus, CorpusConfig};

fn spectrum_error<T: lpa_arith::BatchReal>(m: &lpa_sparse::CsrMatrix<f64>, via_arnoldi: bool) -> Option<f64> {
    let reference = {
        let mut e = symmetric_eigenvalues(&m.to_dense()).ok()?;
        e.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        e.truncate(6);
        e
    };
    let computed: Vec<f64> = if via_arnoldi {
        let a = m.convert::<T>();
        let opts = ArnoldiOptions { nev: 6, tol: 1e-4, max_restarts: 60, ..Default::default() };
        let (ps, _) = partial_schur(&a, &opts).ok()?;
        let mut e: Vec<f64> = ps.real_eigenvalues().iter().map(|x| x.to_f64()).collect();
        e.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        e.truncate(6);
        e
    } else {
        let a = m.to_dense().convert::<T>();
        let mut e: Vec<f64> =
            symmetric_eigenvalues(&a).ok()?.iter().map(|x| x.to_f64()).collect();
        e.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        e.truncate(6);
        e
    };
    let num: f64 = reference.iter().zip(&computed).map(|(r, c)| (r - c).powi(2)).sum();
    let den: f64 = reference.iter().map(|r| r * r).sum();
    Some((num / den).sqrt())
}

fn main() {
    println!("=== ablation: general Krylov-Schur vs symmetry-exploiting dense path ===");
    let corpus = general_corpus(&CorpusConfig { size_range: (40, 56), ..CorpusConfig::tiny() });
    let corpus: Vec<_> = corpus.into_iter().take(6).collect();
    println!("{:<12} {:>16} {:>16}", "format", "arnoldi(med)", "symmetric(med)");
    macro_rules! row {
        ($t:ty, $name:expr) => {{
            let mut a: Vec<f64> = corpus.iter().filter_map(|t| spectrum_error::<$t>(&t.matrix, true)).collect();
            let mut s: Vec<f64> = corpus.iter().filter_map(|t| spectrum_error::<$t>(&t.matrix, false)).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            s.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let med = |v: &Vec<f64>| if v.is_empty() { f64::NAN } else { v[v.len() / 2] };
            println!("{:<12} {:>16.3e} {:>16.3e}", $name, med(&a), med(&s));
        }};
    }
    row!(F16, "float16");
    row!(Posit16, "posit16");
    row!(Takum16, "takum16");
    println!("(the format ranking should agree between the two paths)");
}
