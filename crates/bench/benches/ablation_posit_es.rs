//! Ablation: 2022-standard posits (es = 2) vs the legacy draft
//! parameterisation (es = 0/1) at 8 and 16 bits.
use lpa_arith::types::{Posit16, Posit16Es1, Posit8, Posit8Es0};
use lpa_arith::{FormatInfo, Real};

fn main() {
    println!("=== ablation: posit exponent-size parameterisation ===");
    println!("{:<16} {:>12} {:>14} {:>14}", "format", "eps(1.0)", "max", "min>0");
    fn row<T: Real>() {
        let i = FormatInfo::of::<T>();
        println!("{:<16} {:>12.3e} {:>14.4e} {:>14.4e}", i.name, i.epsilon, i.max_finite, i.min_positive);
    }
    row::<Posit8>();
    row::<Posit8Es0>();
    row::<Posit16>();
    row::<Posit16Es1>();
    println!("(es = 2 trades one fraction bit near 1.0 for a much wider dynamic range,");
    println!(" which is what lets standard posits run the general-matrix corpus at 8 bits)");
}
