//! Figure 3: infrastructure graph Laplacians.
fn main() {
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Infrastructure);
    lpa_bench::run_figure("figure3", "infrastructure graph Laplacians", &corpus);
}
