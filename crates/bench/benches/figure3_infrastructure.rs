//! Figure 3: infrastructure graph Laplacians.
fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Infrastructure, &settings);
    lpa_bench::run_figure("figure3", "infrastructure graph Laplacians", &corpus, &settings);
}
