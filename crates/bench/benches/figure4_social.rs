//! Figure 4: social graph Laplacians.
fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Social, &settings);
    lpa_bench::run_figure("figure4", "social graph Laplacians", &corpus, &settings);
}
