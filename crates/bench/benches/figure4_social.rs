//! Figure 4: social graph Laplacians.
fn main() {
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Social);
    lpa_bench::run_figure("figure4", "social graph Laplacians", &corpus);
}
