//! Machine-readable micro-benchmark summary: `cargo bench -p lpa-bench
//! --bench bench_summary` writes `out/BENCH_micro.json` with median ns/op
//! per format for scalar add/mul, per-element dot and per-nonzero SpMV
//! (dot routed through the batch-dispatching BLAS, SpMV through the
//! decode-once `CsrDecoded` plane store — the hot-path configuration the
//! experiment grid actually runs), the soft-float baselines for the
//! table-served formats, the `*_scalar` batch-off baselines for the
//! formats the batch kernel engine accelerates (compare e.g. `posit32`
//! against `posit32_scalar` for the engine's before/after), the
//! `*_planes_off` baselines (the previous array-of-structs decoded
//! kernels, so the struct-of-arrays planes win is visible in one file),
//! the end-to-end wall time of a Figure-1 style experiment run, and the
//! cold-vs-warm cost of the same run through the persistent `lpa-store`
//! (the `store` block: hit/miss counters and wall times), and the
//! disarmed-span overhead pair (`<format>_obs`: the decoded dot with and
//! without an `lpa_obs::span` in the loop body).  The run also asserts
//! the four 8-bit LUT-tier dots stay within 1.5x of each other — the
//! takum8 outlier from the v6 trajectory must not come back.
//!
//! The file gives future PRs a perf trajectory to compare against; keep the
//! schema (`lpa-bench-micro/v7`) stable or bump the version.  The config
//! block records the `LPA_FAULTS` and `LPA_OBS` states next to the numbers
//! — perf is only comparable between runs with matching gate states.  CI
//! regenerates the file and prints greppable `bench-delta:` lines against
//! the committed copy (see the `bench_delta` binary).

use std::time::Instant;

use lpa_arith::types::{
    Bf16, E4M3, E5M2, F16, Posit16, Posit32, Posit64, Posit8, Takum16, Takum32, Takum64, Takum8,
};
use lpa_arith::{batch, BatchReal, Dd, PlaneStore, Real};
use lpa_datagen::general;
use lpa_dense::DMatrix;
use lpa_experiments::ExperimentPlan;
use lpa_sparse::{CsrDecoded, CsrMatrix};
use lpa_store::{ArtifactKind, CountersSnapshot, Store};
use serde::Value;

const DOT_LEN: usize = 1024;
const SCALAR_LEN: usize = 512;

/// Median ns per call of `f` across several samples, with the iteration
/// count calibrated so each sample runs a few milliseconds.
fn median_ns_per_call<F: FnMut()>(mut f: F) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 2 || iters > 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    let mut s = samples;
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    s[s.len() / 2]
}

/// Values whose running sums and products stay well inside every format's
/// dynamic range (even E4M3's ±448): magnitudes alternate between m and
/// 1/m so the mul chain's product is bounded, and signs alternate so the
/// add chain's partial sums are bounded — every iteration exercises the
/// full normalize-and-round path rather than saturation/overflow
/// early-outs.
fn operands<T: Real>() -> Vec<T> {
    (0..SCALAR_LEN)
        .map(|i| {
            let m = 0.5 + (i % 13) as f64 * 0.11;
            T::from_f64(if i % 2 == 0 { m } else { -1.0 / m })
        })
        .collect()
}

fn scalar_add_ns<T: Real>() -> f64 {
    let xs = operands::<T>();
    median_ns_per_call(|| {
        let mut acc = T::zero();
        for &x in &xs {
            acc += x;
        }
        std::hint::black_box(acc);
    }) / SCALAR_LEN as f64
}

fn scalar_mul_ns<T: Real>() -> f64 {
    let xs = operands::<T>();
    median_ns_per_call(|| {
        let mut acc = T::one();
        for &x in &xs {
            acc *= x;
        }
        std::hint::black_box(acc);
    }) / SCALAR_LEN as f64
}

fn dot_operands<T: Real>() -> (Vec<T>, Vec<T>) {
    // Alternating signs keep the 1024-term accumulator inside E4M3's range.
    let x = (0..DOT_LEN)
        .map(|i| T::from_f64((0.6 + (i % 7) as f64 * 0.09) * if i % 2 == 0 { 1.0 } else { -1.0 }))
        .collect::<Vec<_>>();
    let y = (0..DOT_LEN).map(|i| T::from_f64(0.4 + (i % 11) as f64 * 0.07)).collect::<Vec<_>>();
    (x, y)
}

/// Dot through the ambient engine (the batch-dispatching BLAS entry point).
fn dot_ns<T: BatchReal>() -> f64 {
    let (x, y) = dot_operands::<T>();
    median_ns_per_call(|| {
        std::hint::black_box(lpa_dense::blas::dot(&x, &y));
    }) / DOT_LEN as f64
}

/// Dot through the plain scalar operator loop (the batch-off baseline).
fn dot_scalar_ns<T: Real>() -> f64 {
    let (x, y) = dot_operands::<T>();
    median_ns_per_call(|| {
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(&y) {
            acc += *a * *b;
        }
        std::hint::black_box(acc);
    }) / DOT_LEN as f64
}

fn spmv_operand<T: Real>(ncols: usize) -> Vec<T> {
    (0..ncols).map(|i| T::from_f64(0.3 + (i % 5) as f64 * 0.14)).collect()
}

/// SpMV through the ambient engine: with the batch engine enabled (the
/// default), the Krylov hot-loop configuration — matrix values decoded
/// once into plane stores (`CsrDecoded`), the operand vector pre-decoded
/// like a basis-column shadow, the result left in plane form like the work
/// buffer; with `LPA_KERNEL_BATCH=scalar` (or for `Dec = Self` formats),
/// the plain scalar CSR loop, so the recorded `config.kernel_batch` always
/// matches what was measured.
fn spmv_ns<T: BatchReal>(a64: &CsrMatrix<f64>) -> f64 {
    if !(T::DECODED && lpa_arith::kernel_batch_enabled()) {
        return spmv_scalar_ns::<T>(a64);
    }
    let a = CsrDecoded::new(a64.convert::<T>());
    let x = T::Planes::decode(&spmv_operand::<T>(a.ncols()));
    let mut y = T::Planes::with_len(a.nrows());
    let nnz = a.nnz() as f64;
    median_ns_per_call(move || {
        a.spmv_planes(std::hint::black_box(&x), &mut y);
        std::hint::black_box(&y);
    }) / nnz
}

/// SpMV through the scalar CSR loop (the batch-off baseline).
fn spmv_scalar_ns<T: Real>(a64: &CsrMatrix<f64>) -> f64 {
    let a: CsrMatrix<T> = a64.convert();
    let x = spmv_operand::<T>(a.ncols());
    let mut y = vec![T::zero(); a.nrows()];
    let nnz = a.nnz() as f64;
    median_ns_per_call(move || {
        a.spmv(std::hint::black_box(&x), &mut y);
        std::hint::black_box(&y);
    }) / nnz
}

fn format_entry<T: BatchReal>(a64: &CsrMatrix<f64>) -> (String, Value) {
    let map = vec![
        ("add".to_string(), Value::Num(scalar_add_ns::<T>())),
        ("mul".to_string(), Value::Num(scalar_mul_ns::<T>())),
        ("dot".to_string(), Value::Num(dot_ns::<T>())),
        ("spmv".to_string(), Value::Num(spmv_ns::<T>(a64))),
    ];
    (json_name(T::NAME), Value::Map(map))
}

/// Batch-off baseline entry (`<format>_scalar`): the same dot/SpMV chains
/// through the plain scalar operators, for the formats the batch kernel
/// engine accelerates.
fn scalar_baseline_entry<T: BatchReal>(a64: &CsrMatrix<f64>) -> (String, Value) {
    let map = vec![
        ("dot".to_string(), Value::Num(dot_scalar_ns::<T>())),
        ("spmv".to_string(), Value::Num(spmv_scalar_ns::<T>(a64))),
    ];
    (format!("{}_scalar", json_name(T::NAME)), Value::Map(map))
}

/// Planes-off baseline entry (`<format>_planes_off`): the same decoded
/// dot/SpMV chains through the previous array-of-structs kernels (a flat
/// `Vec<T::Dec>` of decoded values, one struct per element) instead of the
/// struct-of-arrays plane stores, so the planes speedup is measurable from
/// this file alone.
fn planes_off_entry<T: BatchReal>(a64: &CsrMatrix<f64>) -> (String, Value) {
    let (x, y) = dot_operands::<T>();
    let (xd, yd) = (batch::decode_slice(&x), batch::decode_slice(&y));
    let dot = median_ns_per_call(|| {
        std::hint::black_box(batch::dot_decoded::<T>(std::hint::black_box(&xd), &yd));
    }) / DOT_LEN as f64;
    let a = CsrDecoded::new(a64.convert::<T>());
    let sx = batch::decode_slice(&spmv_operand::<T>(a.ncols()));
    let mut sy = vec![T::zero().dec(); a.nrows()];
    let nnz = a.nnz() as f64;
    let spmv = median_ns_per_call(move || {
        a.spmv_decoded(std::hint::black_box(&sx), &mut sy);
        std::hint::black_box(&sy);
    }) / nnz;
    (
        format!("{}_planes_off", json_name(T::NAME)),
        Value::Map(vec![
            ("dot".to_string(), Value::Num(dot)),
            ("spmv".to_string(), Value::Num(spmv)),
        ]),
    )
}

/// Restart-gemm pair (`<format>_gemm`): the struct-of-arrays
/// `batch::gemm_planes` (the Krylov-Schur restart-basis update kernel)
/// against the encoded `DMatrix::matmul` it replaced, in ns per
/// multiply-add over restart-shaped operands (a tall basis times a small
/// projector).
fn gemm_entry<T: BatchReal>() -> (String, Value) {
    let (n, m, k) = (256usize, 12usize, 8usize);
    let mut v = DMatrix::<T>::zeros(n, m);
    for j in 0..m {
        for (i, slot) in v.col_mut(j).iter_mut().enumerate() {
            let mag = 0.3 + ((i + 3 * j) % 9) as f64 * 0.11;
            *slot = T::from_f64(if (i + j) % 2 == 0 { mag } else { -mag });
        }
    }
    let mut z = DMatrix::<T>::zeros(m, k);
    for j in 0..k {
        for (i, slot) in z.col_mut(j).iter_mut().enumerate() {
            *slot = T::from_f64(0.2 + ((i + j) % 7) as f64 * 0.13);
        }
    }
    let planes: Vec<T::Planes> = (0..m).map(|j| T::Planes::decode(v.col(j))).collect();
    let z_cols: Vec<&[T]> = (0..k).map(|j| z.col(j)).collect();
    let madds = (n * m * k) as f64;
    let planes_ns = median_ns_per_call(|| {
        std::hint::black_box(batch::gemm_planes::<T>(n, std::hint::black_box(&planes), &z_cols));
    }) / madds;
    let scalar_ns = median_ns_per_call(|| {
        std::hint::black_box(v.matmul(std::hint::black_box(&z)));
    }) / madds;
    (
        format!("{}_gemm", json_name(T::NAME)),
        Value::Map(vec![
            ("planes".to_string(), Value::Num(planes_ns)),
            ("scalar".to_string(), Value::Num(scalar_ns)),
        ]),
    )
}

/// Disarmed-span overhead pair (`<format>_obs`): the identical decoded-dot
/// loop with and without an `lpa_obs::span` opened per call. While `LPA_OBS`
/// is unset the span costs one relaxed atomic load and a branch; the
/// `bench-delta:` CI guard compares both keys against the committed
/// baseline so a regression in the disarmed path cannot land silently.
fn obs_span_entry<T: BatchReal>() -> (String, Value) {
    let (x, y) = dot_operands::<T>();
    let (xd, yd) = (batch::decode_slice(&x), batch::decode_slice(&y));
    let dot = |xd: &[T::Dec], yd: &[T::Dec]| {
        let mut acc = T::zero().dec();
        for (a, b) in xd.iter().zip(yd) {
            acc = T::dec_add(acc, T::dec_mul(*a, *b));
        }
        T::undec(acc)
    };
    let with_span = median_ns_per_call(|| {
        let _span = lpa_obs::span(lpa_obs::STORE_GET);
        std::hint::black_box(dot(std::hint::black_box(&xd), &yd));
    }) / DOT_LEN as f64;
    let without_span = median_ns_per_call(|| {
        std::hint::black_box(dot(std::hint::black_box(&xd), &yd));
    }) / DOT_LEN as f64;
    (
        format!("{}_obs", json_name(T::NAME)),
        Value::Map(vec![
            ("dot_with_disarmed_span".to_string(), Value::Num(with_span)),
            ("dot_without_span".to_string(), Value::Num(without_span)),
        ]),
    )
}

/// JSON-friendly format keys ("OFP8 E4M3" → "ofp8_e4m3").
fn json_name(name: &str) -> String {
    name.to_lowercase().replace([' ', '(', ')', '='], "_").replace("__", "_")
}

/// Soft-float baseline for a table-served format (same chains as
/// `scalar_add_ns`/`scalar_mul_ns` but through the reference path, which
/// pays the full bitfield decode on every operand).
macro_rules! softfloat_baseline {
    ($t:ty, $a64:expr, $out:expr) => {{
        let xs = operands::<$t>();
        let add = median_ns_per_call(|| {
            let mut acc = <$t>::zero();
            for &x in &xs {
                acc = acc.softfloat_add(x);
            }
            std::hint::black_box(acc);
        }) / SCALAR_LEN as f64;
        let mul = median_ns_per_call(|| {
            let mut acc = <$t>::one();
            for &x in &xs {
                acc = acc.softfloat_mul(x);
            }
            std::hint::black_box(acc);
        }) / SCALAR_LEN as f64;
        $out.push((
            format!("{}_softfloat", json_name(<$t>::NAME)),
            Value::Map(vec![
                ("add".to_string(), Value::Num(add)),
                ("mul".to_string(), Value::Num(mul)),
            ]),
        ));
    }};
}

fn main() {
    let a64 = general::laplacian_2d(24, 24, 1.0);

    println!("collecting per-format micro-benchmarks (median ns/op)...");
    let mut formats: Vec<(String, Value)> = vec![
        format_entry::<E4M3>(&a64),
        format_entry::<E5M2>(&a64),
        format_entry::<Posit8>(&a64),
        format_entry::<Takum8>(&a64),
        format_entry::<F16>(&a64),
        format_entry::<Bf16>(&a64),
        format_entry::<Posit16>(&a64),
        format_entry::<Takum16>(&a64),
        format_entry::<f32>(&a64),
        format_entry::<Posit32>(&a64),
        format_entry::<Takum32>(&a64),
        format_entry::<f64>(&a64),
        format_entry::<Posit64>(&a64),
        format_entry::<Takum64>(&a64),
        format_entry::<Dd>(&a64),
    ];
    softfloat_baseline!(E4M3, &a64, formats);
    softfloat_baseline!(E5M2, &a64, formats);
    softfloat_baseline!(Posit8, &a64, formats);
    softfloat_baseline!(Takum8, &a64, formats);
    softfloat_baseline!(F16, &a64, formats);
    softfloat_baseline!(Bf16, &a64, formats);
    softfloat_baseline!(Posit16, &a64, formats);
    softfloat_baseline!(Takum16, &a64, formats);
    // Batch-off baselines for the formats the batch kernel engine serves.
    formats.push(scalar_baseline_entry::<Posit16>(&a64));
    formats.push(scalar_baseline_entry::<Takum16>(&a64));
    formats.push(scalar_baseline_entry::<Posit32>(&a64));
    formats.push(scalar_baseline_entry::<Takum32>(&a64));
    // Planes-off baselines: the pre-planes array-of-structs decoded kernels.
    formats.push(planes_off_entry::<Posit16>(&a64));
    formats.push(planes_off_entry::<Takum16>(&a64));
    formats.push(planes_off_entry::<Posit32>(&a64));
    formats.push(planes_off_entry::<Takum32>(&a64));
    // Restart-gemm pairs (planes vs the encoded matmul it replaced).
    formats.push(gemm_entry::<Posit32>());
    formats.push(gemm_entry::<Takum16>());
    // Disarmed tracing-span overhead pairs (the obs analogue of the
    // fault-point pair in `micro_kernels`).
    formats.push(obs_span_entry::<Posit32>());
    formats.push(obs_span_entry::<Takum32>());

    for (name, entry) in &formats {
        if let Value::Map(ops) = entry {
            let line: Vec<String> = ops
                .iter()
                .map(|(op, v)| match v {
                    Value::Num(x) => format!("{op} {x:8.2}"),
                    _ => String::new(),
                })
                .collect();
            println!("  {name:<22} {}", line.join("  "));
        }
    }

    // The four 8-bit formats share the same LUT-tier kernels; their dots
    // must stay within 1.5x of each other (the v6 trajectory had a stale
    // takum8 outlier at ~1.9x that this pin keeps from coming back).
    let dot_of = |key: &str| -> f64 {
        let Some((_, Value::Map(ops))) = formats.iter().find(|(n, _)| n == key) else {
            panic!("missing format entry {key}");
        };
        match ops.iter().find(|(op, _)| op == "dot") {
            Some((_, Value::Num(x))) => *x,
            _ => panic!("missing dot in {key}"),
        }
    };
    let lut_dots =
        ["ofp8_e4m3", "ofp8_e5m2", "posit8", "takum8"].map(|k| (k, dot_of(k)));
    let (lo_name, lo) =
        lut_dots.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1)).expect("nonempty");
    let (hi_name, hi) =
        lut_dots.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1)).expect("nonempty");
    println!("  8-bit dot spread: {lo_name} {lo:.2} .. {hi_name} {hi:.2} ({:.2}x)", hi / lo);
    assert!(
        hi <= lo * 1.5,
        "8-bit LUT-tier dot spread exceeds 1.5x: {hi_name} {hi:.2} vs {lo_name} {lo:.2}"
    );

    println!("running figure-1 style end-to-end experiment...");
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::general_bench_corpus(&settings);
    let cfg = lpa_bench::bench_experiment_config();
    let start = Instant::now();
    let results = ExperimentPlan::over(&corpus).config(cfg.clone()).run();
    let figure1_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "  {} matrices x {} formats in {:.0} ms ({} skipped)",
        results.matrices.len(),
        results.formats.len(),
        figure1_wall_ms,
        results.skipped.len()
    );

    // Persistent-store trajectory: the same experiment through a scratch
    // store, cold (populating) and warm (a fresh handle, so every hit is a
    // disk read like a second harness process would see).
    println!("running the same experiment through a scratch lpa-store (cold, then warm)...");
    let store_dir = std::env::temp_dir().join(format!("lpa-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let run_with = |store: &Store| {
        let start = Instant::now();
        let r = ExperimentPlan::over(&corpus).config(cfg.clone()).store(store).run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&r);
        (
            wall_ms,
            store.stats().snapshot(ArtifactKind::Reference),
            store.stats().snapshot(ArtifactKind::Outcome),
        )
    };
    let cold_store = Store::open(&store_dir).expect("open scratch store");
    let (cold_ms, cold_ref, cold_out) = run_with(&cold_store);
    let warm_store = Store::open(&store_dir).expect("reopen scratch store");
    let (warm_ms, warm_ref, warm_out) = run_with(&warm_store);
    let _ = std::fs::remove_dir_all(&store_dir);
    println!(
        "  cold {cold_ms:.0} ms ({} reference misses), warm {warm_ms:.0} ms ({} reference hits, {} misses)",
        cold_ref.misses,
        warm_ref.hits(),
        warm_ref.misses
    );
    let store_run_entry = |wall_ms: f64, r: &CountersSnapshot, o: &CountersSnapshot| {
        Value::Map(vec![
            ("wall_ms".to_string(), Value::Num(wall_ms)),
            ("reference_hits".to_string(), Value::Num(r.hits() as f64)),
            ("reference_misses".to_string(), Value::Num(r.misses as f64)),
            ("outcome_hits".to_string(), Value::Num(o.hits() as f64)),
            ("outcome_misses".to_string(), Value::Num(o.misses as f64)),
            ("bytes_written".to_string(), Value::Num((r.bytes_written + o.bytes_written) as f64)),
            ("bytes_read".to_string(), Value::Num((r.bytes_read + o.bytes_read) as f64)),
        ])
    };

    let summary = Value::Map(vec![
        ("schema".to_string(), Value::Str("lpa-bench-micro/v7".to_string())),
        (
            "config".to_string(),
            Value::Map(vec![
                ("scalar_chain_len".to_string(), Value::Num(SCALAR_LEN as f64)),
                ("dot_len".to_string(), Value::Num(DOT_LEN as f64)),
                ("spmv_matrix".to_string(), Value::Str("laplacian_2d 24x24".to_string())),
                ("units".to_string(), Value::Str("ns per scalar op / element / nnz".to_string())),
                ("threads".to_string(), Value::Num(rayon::current_num_threads() as f64)),
                (
                    "dec16_tier".to_string(),
                    Value::Str(format!("{:?}", lpa_arith::dec16_tier()).to_lowercase()),
                ),
                (
                    "kernel_batch".to_string(),
                    Value::Str(format!("{:?}", lpa_arith::kernel_batch()).to_lowercase()),
                ),
                (
                    "kernel_lanes".to_string(),
                    Value::Num(lpa_arith::kernel_lanes().width() as f64),
                ),
                (
                    "figure1_matrices".to_string(),
                    Value::Num((results.matrices.len() + results.skipped.len()) as f64),
                ),
                // Perf numbers are only comparable between runs with the
                // same fault state; a benchmark under an armed LPA_FAULTS
                // spec self-identifies instead of silently polluting the
                // trajectory.
                (
                    "faults".to_string(),
                    Value::Str(lpa_faults::active_spec().unwrap_or_else(|| "disarmed".to_string())),
                ),
                // Same comparability rule for the tracing gate: an armed
                // LPA_OBS run self-identifies next to its numbers.
                ("obs".to_string(), Value::Str(lpa_obs::state_name().to_string())),
            ]),
        ),
        ("ns_per_op".to_string(), Value::Map(formats)),
        ("figure1_wall_ms".to_string(), Value::Num(figure1_wall_ms)),
        (
            "store".to_string(),
            Value::Map(vec![
                ("cold".to_string(), store_run_entry(cold_ms, &cold_ref, &cold_out)),
                ("warm".to_string(), store_run_entry(warm_ms, &warm_ref, &warm_out)),
            ]),
        ),
    ]);

    let path = lpa_bench::out_dir().join("BENCH_micro.json");
    let json = serde_json::to_string_pretty(&summary).expect("serialize benchmark summary");
    std::fs::write(&path, json + "\n").expect("write BENCH_micro.json");
    println!("wrote {}", path.display());
}
