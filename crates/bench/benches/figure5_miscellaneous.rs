//! Figure 5: miscellaneous graph Laplacians.
fn main() {
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Miscellaneous);
    lpa_bench::run_figure("figure5", "miscellaneous graph Laplacians", &corpus);
}
