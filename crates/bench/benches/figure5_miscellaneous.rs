//! Figure 5: miscellaneous graph Laplacians.
fn main() {
    let settings = lpa_bench::HarnessSettings::from_env();
    let corpus = lpa_bench::class_bench_corpus(lpa_datagen::GraphClass::Miscellaneous, &settings);
    lpa_bench::run_figure("figure5", "miscellaneous graph Laplacians", &corpus, &settings);
}
