//! Criterion micro-benchmarks of the substrates: per-format scalar
//! arithmetic, sparse matrix-vector products, a full partial Schur solve,
//! the Hungarian matching step, and an end-to-end experiment grid through
//! the `ExperimentPlan` front door.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use lpa_arith::types::{
    Bf16, Posit16, Posit32, Posit64, Posit8, Takum16, Takum32, Takum64, Takum8, E4M3, E5M2, F16,
};
use lpa_arith::{batch, BatchReal, Dd, PlaneStore, Real};
use lpa_arnoldi::{partial_schur, ArnoldiOptions};
use lpa_datagen::general;
use lpa_dense::DMatrix;
use lpa_experiments::{ExperimentConfig, ExperimentPlan, FormatTag};
use lpa_sparse::CsrMatrix;

fn scalar_ops<T: Real>(c: &mut Criterion, label: &str) {
    let xs: Vec<T> = (1..200).map(|i| T::from_f64(0.37 * i as f64 - 19.0)).collect();
    c.bench_function(&format!("scalar/{label}/mul_add_chain"), |b| {
        b.iter(|| {
            let mut acc = T::one();
            for &x in &xs {
                acc = acc * x + T::from_f64(0.5);
            }
            black_box(acc)
        })
    });
    c.bench_function(&format!("scalar/{label}/div_sqrt"), |b| {
        b.iter(|| {
            let mut acc = T::from_f64(2.0);
            for &x in &xs {
                if !x.is_zero() {
                    acc = (acc / x).abs().sqrt() + T::one();
                }
            }
            black_box(acc)
        })
    });
}

fn bench_scalars(c: &mut Criterion) {
    scalar_ops::<f64>(c, "float64");
    scalar_ops::<F16>(c, "float16");
    scalar_ops::<Bf16>(c, "bfloat16");
    scalar_ops::<E4M3>(c, "ofp8_e4m3");
    scalar_ops::<Posit16>(c, "posit16");
    scalar_ops::<Takum16>(c, "takum16");
    scalar_ops::<Posit64>(c, "posit64");
    scalar_ops::<Takum64>(c, "takum64");
    scalar_ops::<Dd>(c, "float128_dd");
}

/// The table-served formats against their own soft-float reference path, on
/// the same mul-add chain: the 8-bit LUT backend (acceptance gate: >= 3x
/// speedup, bit-identical results) and the unpack-once 16-bit backend
/// (operand decodes from the table, kernel round/encode only).
fn bench_lut_vs_softfloat(c: &mut Criterion) {
    macro_rules! backend_pair {
        ($t:ty, $label:expr) => {{
            // Operands near one with mixed signs: the chain stays inside
            // even E4M3's [-448, 448] range, so the soft-float baseline does
            // real normalize-and-round work instead of NaN early-outs.
            let xs: Vec<$t> = (1..200)
                .map(|i| <$t>::from_f64((0.55 + (i % 13) as f64 * 0.075) * if i % 2 == 0 { 1.0 } else { -1.0 }))
                .collect();
            let half = <$t>::from_f64(0.5);
            c.bench_function(&format!("scalar/{}/lut/mul_add_chain", $label), |b| {
                b.iter(|| {
                    let mut acc = <$t>::one();
                    for &x in &xs {
                        acc = acc * x + half;
                    }
                    black_box(acc)
                })
            });
            c.bench_function(&format!("scalar/{}/softfloat/mul_add_chain", $label), |b| {
                b.iter(|| {
                    let mut acc = <$t>::one();
                    for &x in &xs {
                        acc = acc.softfloat_mul(x).softfloat_add(half);
                    }
                    black_box(acc)
                })
            });
        }};
    }
    backend_pair!(E4M3, "ofp8_e4m3");
    backend_pair!(E5M2, "ofp8_e5m2");
    backend_pair!(Posit8, "posit8");
    backend_pair!(Takum8, "takum8");
    backend_pair!(F16, "float16");
    backend_pair!(Bf16, "bfloat16");
    backend_pair!(Posit16, "posit16");
    backend_pair!(Takum16, "takum16");
}

/// The batch kernel engine against the scalar operator loops on the
/// Krylov-shaped kernels — a pre-decoded dot and a decode-once SpMV, both
/// through the struct-of-arrays plane stores the engine now runs on — for
/// the formats the engine serves (acceptance gate for the 32-bit tapered
/// formats: >= 1.5x, bit-identical results).
fn bench_batch_vs_scalar(c: &mut Criterion) {
    let a64 = general::laplacian_2d(24, 24, 1.0);
    fn run<T: BatchReal>(c: &mut Criterion, a64: &lpa_sparse::CsrMatrix<f64>, label: &str) {
        let n = 1024;
        let x: Vec<T> = (0..n)
            .map(|i| T::from_f64((0.6 + (i % 7) as f64 * 0.09) * if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let y: Vec<T> = (0..n).map(|i| T::from_f64(0.4 + (i % 11) as f64 * 0.07)).collect();
        let (xp, yp) = (T::Planes::decode(&x), T::Planes::decode(&y));
        c.bench_function(&format!("dot/{label}/batch"), |b| {
            b.iter(|| black_box(T::undec(batch::dot_planes::<T>(black_box(&xp), &yp))))
        });
        c.bench_function(&format!("dot/{label}/scalar"), |b| {
            b.iter(|| {
                let mut acc = T::zero();
                for (a, b) in x.iter().zip(&y) {
                    acc += *a * *b;
                }
                black_box(acc)
            })
        });

        let a: CsrMatrix<T> = a64.convert();
        let ad = lpa_sparse::CsrDecoded::new(a.clone());
        let xs: Vec<T> = (0..a.ncols()).map(|i| T::from_f64((i % 7) as f64 * 0.1)).collect();
        let xsp = T::Planes::decode(&xs);
        let mut ys = vec![T::zero(); a.nrows()];
        let mut ysp = T::Planes::with_len(a.nrows());
        c.bench_function(&format!("spmv/{label}/batch"), |b| {
            b.iter(|| {
                ad.spmv_planes(black_box(&xsp), &mut ysp);
                black_box(&ysp);
            })
        });
        c.bench_function(&format!("spmv/{label}/scalar"), |b| {
            b.iter(|| {
                a.spmv(black_box(&xs), &mut ys);
                black_box(&ys);
            })
        });
    }
    run::<Posit16>(c, &a64, "posit16");
    run::<Takum16>(c, &a64, "takum16");
    run::<Posit32>(c, &a64, "posit32");
    run::<Takum32>(c, &a64, "takum32");
}

/// The struct-of-arrays gemm (the restart-basis update kernel,
/// `batch::gemm_planes`) against the encoded `DMatrix::matmul` it replaced
/// in the Krylov-Schur restart (bit-identical columns by construction; the
/// planes side also returns the decoded shadows the restart needs, which
/// the encoded side would have to recompute).
fn bench_gemm_planes_vs_scalar(c: &mut Criterion) {
    fn run<T: BatchReal>(c: &mut Criterion, label: &str) {
        // Restart-shaped operands: a tall basis times a small projector.
        let (n, m, k) = (256, 12, 8);
        let mut v = DMatrix::<T>::zeros(n, m);
        for j in 0..m {
            for (i, slot) in v.col_mut(j).iter_mut().enumerate() {
                let mag = 0.3 + ((i + 3 * j) % 9) as f64 * 0.11;
                *slot = T::from_f64(if (i + j) % 2 == 0 { mag } else { -mag });
            }
        }
        let mut z = DMatrix::<T>::zeros(m, k);
        for j in 0..k {
            for (i, slot) in z.col_mut(j).iter_mut().enumerate() {
                *slot = T::from_f64(0.2 + ((i + j) % 7) as f64 * 0.13);
            }
        }
        let planes: Vec<T::Planes> = (0..m).map(|j| T::Planes::decode(v.col(j))).collect();
        let z_cols: Vec<&[T]> = (0..k).map(|j| z.col(j)).collect();
        c.bench_function(&format!("gemm/{label}/planes"), |b| {
            b.iter(|| black_box(batch::gemm_planes::<T>(n, black_box(&planes), &z_cols)))
        });
        c.bench_function(&format!("gemm/{label}/scalar"), |b| {
            b.iter(|| black_box(v.matmul(black_box(&z))))
        });
    }
    run::<Posit32>(c, "posit32");
    run::<Takum16>(c, "takum16");
}

/// The disarmed fault-point overhead on the hottest kernel:
/// `batch::dot_decoded` carries a `solver.stall` fault point (one relaxed
/// atomic load per call when `LPA_FAULTS` is unset) — compare against the
/// identical decoded-dot loop without the point. The `bench-delta:` guard
/// in CI asserts the pair stays within noise of each other.
fn bench_fault_point_overhead(c: &mut Criterion) {
    fn run<T: BatchReal>(c: &mut Criterion, label: &str) {
        let n = 1024;
        let x: Vec<T> = (0..n)
            .map(|i| T::from_f64((0.6 + (i % 7) as f64 * 0.09) * if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let y: Vec<T> = (0..n).map(|i| T::from_f64(0.4 + (i % 11) as f64 * 0.07)).collect();
        let (xd, yd) = (batch::decode_slice(&x), batch::decode_slice(&y));
        c.bench_function(&format!("faults/{label}/dot_with_disarmed_point"), |b| {
            b.iter(|| black_box(T::undec(batch::dot_decoded::<T>(black_box(&xd), &yd))))
        });
        c.bench_function(&format!("faults/{label}/dot_without_point"), |b| {
            b.iter(|| {
                let mut acc = T::zero().dec();
                for (a, b) in black_box(&xd).iter().zip(&yd) {
                    acc = T::dec_add(acc, T::dec_mul(*a, *b));
                }
                black_box(T::undec(acc))
            })
        });
    }
    run::<Posit32>(c, "posit32");
    run::<Takum32>(c, "takum32");
}

/// The disarmed tracing-span overhead, same shape as the fault-point pair:
/// a decoded-dot loop whose body opens an `lpa_obs::span` (one relaxed
/// atomic load and a branch while `LPA_OBS` is unset) against the identical
/// loop without the span. The `bench-delta:` guard in CI asserts the pair
/// stays within noise of each other.
fn bench_obs_span_overhead(c: &mut Criterion) {
    fn run<T: BatchReal>(c: &mut Criterion, label: &str) {
        let n = 1024;
        let x: Vec<T> = (0..n)
            .map(|i| T::from_f64((0.6 + (i % 7) as f64 * 0.09) * if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let y: Vec<T> = (0..n).map(|i| T::from_f64(0.4 + (i % 11) as f64 * 0.07)).collect();
        let (xd, yd) = (batch::decode_slice(&x), batch::decode_slice(&y));
        let dot = |xd: &[T::Dec], yd: &[T::Dec]| {
            let mut acc = T::zero().dec();
            for (a, b) in xd.iter().zip(yd) {
                acc = T::dec_add(acc, T::dec_mul(*a, *b));
            }
            T::undec(acc)
        };
        c.bench_function(&format!("obs/{label}/dot_with_disarmed_span"), |b| {
            b.iter(|| {
                let _span = lpa_obs::span(lpa_obs::STORE_GET);
                black_box(dot(black_box(&xd), &yd))
            })
        });
        c.bench_function(&format!("obs/{label}/dot_without_span"), |b| {
            b.iter(|| black_box(dot(black_box(&xd), &yd)))
        });
    }
    run::<Posit32>(c, "posit32");
    run::<Takum32>(c, "takum32");
}

fn bench_spmv(c: &mut Criterion) {
    let a64 = general::laplacian_2d(24, 24, 1.0);
    fn run<T: lpa_arith::BatchReal>(c: &mut Criterion, a64: &CsrMatrix<f64>, label: &str) {
        let a: CsrMatrix<T> = a64.convert();
        let x: Vec<T> = (0..a.ncols()).map(|i| T::from_f64((i % 7) as f64 * 0.1)).collect();
        let mut y = vec![T::zero(); a.nrows()];
        c.bench_function(&format!("spmv/{label}"), |b| {
            b.iter(|| {
                a.spmv(black_box(&x), &mut y);
                black_box(&y);
            })
        });
    }
    run::<f64>(c, &a64, "float64");
    run::<Posit16>(c, &a64, "posit16");
    run::<Takum16>(c, &a64, "takum16");
    run::<Dd>(c, &a64, "float128_dd");
}

fn bench_arnoldi(c: &mut Criterion) {
    let a64 = general::laplacian_1d(64, 1.0);
    fn run<T: lpa_arith::BatchReal>(c: &mut Criterion, a64: &CsrMatrix<f64>, label: &str, tol: f64) {
        let a: CsrMatrix<T> = a64.convert();
        c.bench_function(&format!("partial_schur/{label}"), |b| {
            b.iter(|| {
                let opts = ArnoldiOptions { nev: 6, tol, max_restarts: 50, ..Default::default() };
                black_box(partial_schur(&a, &opts).ok())
            })
        });
    }
    run::<f64>(c, &a64, "float64", 1e-10);
    run::<Posit16>(c, &a64, "posit16", 1e-4);
    run::<Takum16>(c, &a64, "takum16", 1e-4);
}

/// End-to-end: a miniature (matrix × format) grid through the harness's
/// typed front door — reference solve, conversion, low-precision solve and
/// matching included. Tracks the overhead of the whole session layer, not
/// just the kernels.
fn bench_experiment_grid(c: &mut Criterion) {
    let corpus = vec![
        lpa_datagen::TestMatrix::new(
            "micro/lap1d-28",
            "lap1d",
            lpa_datagen::Source::General,
            general::laplacian_1d(28, 1.0),
        ),
        lpa_datagen::TestMatrix::new(
            "micro/lap2d-6x6",
            "lap2d",
            lpa_datagen::Source::General,
            general::laplacian_2d(6, 6, 1.0),
        ),
    ];
    let formats = [FormatTag::Ofp8E4M3, FormatTag::Takum16];
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };
    c.bench_function("experiment/plan_session_grid/2x2", |b| {
        b.iter(|| {
            let results = ExperimentPlan::over(black_box(&corpus))
                .formats(&formats)
                .config(cfg.clone())
                .run();
            black_box(results)
        })
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let n = 12; // eigenvalue_count + buffer of the paper
    let sim: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 0.9 } else { ((i * 7 + j * 13) % 10) as f64 / 100.0 }).collect())
        .collect();
    c.bench_function("hungarian/12x12_similarity", |b| {
        b.iter(|| black_box(lpa_assign::maximize_similarity(black_box(&sim))))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scalars, bench_lut_vs_softfloat, bench_batch_vs_scalar, bench_gemm_planes_vs_scalar, bench_fault_point_overhead, bench_obs_span_overhead, bench_spmv, bench_arnoldi, bench_experiment_grid, bench_hungarian
}
criterion_main!(benches);
