//! Persistence glue between the experiment pipeline and `lpa-store`: key
//! derivation and payload codecs for [`Reference`] and [`Outcome`]
//! artifacts.
//!
//! ## What a key commits to
//!
//! A content address must change whenever *anything* that could change the
//! computed bytes changes, and nothing else. Reference keys hash, in order:
//!
//! 1. a domain tag (`"lpa/ref"` vs `"lpa/outcome"`, so the two artifact
//!    families can never collide),
//! 2. the [`NumericsConfig`] key material of the artifact's slice — the
//!    versions of exactly the numerics features that can affect this
//!    artifact's kind and format (see `lpa_numerics`),
//! 3. every solver option of [`ExperimentConfig`] that reaches the solve
//!    (pair counts, spectrum target, tolerance bits, restart budget, seed),
//! 4. the matrix's exact CSR identity: dimensions, `row_ptr`, `col_idx`,
//!    and every value's `f64` bit pattern.
//!
//! Outcome keys additionally hash the format tag (and its per-width
//! tolerance is derived from the tag, so it is covered).
//!
//! ## Version policy (formerly the salt policy)
//!
//! A change that alters computed numerics — arithmetic kernels, the
//! Arnoldi iteration, eigenvector matching, the reference tolerance
//! default, RNG streams, the codec schemas — **must bump the version of
//! the feature it changed** in `lpa_numerics::NumericsConfig::builtin`,
//! in the same commit. Only the (kind, format) slices that feature is
//! relevant to then miss and recompute; every other cached artifact stays
//! warm, and `lpa-store gc --stale-numerics` can drop the orphaned slice.
//! Changes that cannot affect results (reporting, CLI, docs) must not
//! bump anything. At the baseline table the key material is byte-for-byte
//! the old monolithic salt, so pre-table stores stay fully warm.

use lpa_arnoldi::Which;
use lpa_numerics::{NumericsConfig, Slice};
use lpa_sparse::CsrMatrix;
use lpa_store::{CodecError, Decoder, Encoder, Hasher128, Key};

use crate::formats::FormatTag;
use crate::outcome::{EigenErrors, Outcome};
use crate::pipeline::{ExperimentConfig, Reference};

/// The historical monolithic version salt, kept only as a view over the
/// numerics table's base value. Nothing derives keys from it directly
/// anymore — keys hash [`NumericsConfig::key_material`], which *starts*
/// with these bytes and stays byte-identical while the table is at
/// baseline.
#[deprecated(note = "keys hash per-slice NumericsConfig key material now; \
                     bump the changed feature in NumericsConfig::builtin instead")]
pub const CODE_VERSION_SALT: u64 = lpa_numerics::BASE_SALT;

/// Stable wire id of a format tag. **Append-only**: these ids live inside
/// persisted keys, so renumbering existing entries orphans every store.
pub fn format_id(format: FormatTag) -> u8 {
    match format {
        FormatTag::Ofp8E4M3 => 0,
        FormatTag::Ofp8E5M2 => 1,
        FormatTag::Posit8 => 2,
        FormatTag::Takum8 => 3,
        FormatTag::Float16 => 4,
        FormatTag::Bfloat16 => 5,
        FormatTag::Posit16 => 6,
        FormatTag::Takum16 => 7,
        FormatTag::Float32 => 8,
        FormatTag::Posit32 => 9,
        FormatTag::Takum32 => 10,
        FormatTag::Float64 => 11,
        FormatTag::Posit64 => 12,
        FormatTag::Takum64 => 13,
    }
}

/// Stable wire id of a spectrum target (same append-only rule).
fn which_id(which: Which) -> u8 {
    match which {
        Which::LargestMagnitude => 0,
        Which::SmallestMagnitude => 1,
        Which::LargestReal => 2,
        Which::SmallestReal => 3,
    }
}

/// Hash the solver options that reach a solve.
fn hash_config(h: &mut Hasher128, cfg: &ExperimentConfig) {
    h.write_usize(cfg.eigenvalue_count);
    h.write_usize(cfg.eigenvalue_buffer_count);
    h.write_u8(which_id(cfg.which));
    h.write_f64_bits(cfg.reference_tol);
    h.write_usize(cfg.max_restarts);
    h.write_u64(cfg.seed);
}

/// Hash the matrix's exact CSR identity.
fn hash_matrix(h: &mut Hasher128, matrix: &CsrMatrix<f64>) {
    h.write_usize(matrix.nrows());
    h.write_usize(matrix.ncols());
    h.write_usize(matrix.nnz());
    for &p in matrix.row_ptr() {
        h.write_usize(p);
    }
    for &j in matrix.col_indices() {
        h.write_usize(j);
    }
    for &v in matrix.values() {
        h.write_f64_bits(v);
    }
}

/// Content address of a matrix's double-double reference solution under an
/// explicit numerics table (tests and migration tooling; the pipeline uses
/// [`reference_key`]).
pub fn reference_key_with(
    numerics: &NumericsConfig,
    matrix: &CsrMatrix<f64>,
    cfg: &ExperimentConfig,
) -> Key {
    let mut h = Hasher128::new();
    h.write(b"lpa/ref");
    h.write(&numerics.key_material(Slice::Reference));
    hash_config(&mut h, cfg);
    hash_matrix(&mut h, matrix);
    h.finish()
}

/// Content address of one (matrix, format) outcome under an explicit
/// numerics table.
pub fn outcome_key_with(
    numerics: &NumericsConfig,
    matrix: &CsrMatrix<f64>,
    format: FormatTag,
    cfg: &ExperimentConfig,
) -> Key {
    let id = format_id(format);
    let mut h = Hasher128::new();
    h.write(b"lpa/outcome");
    h.write_u8(id);
    h.write(&numerics.key_material(Slice::Outcome { format: Some(id) }));
    hash_config(&mut h, cfg);
    hash_matrix(&mut h, matrix);
    h.finish()
}

/// Content address of a matrix's double-double reference solution under
/// this process's effective numerics table.
pub fn reference_key(matrix: &CsrMatrix<f64>, cfg: &ExperimentConfig) -> Key {
    reference_key_with(&crate::numerics::checked_current(), matrix, cfg)
}

/// Content address of one (matrix, format) outcome under this process's
/// effective numerics table.
pub fn outcome_key(matrix: &CsrMatrix<f64>, format: FormatTag, cfg: &ExperimentConfig) -> Key {
    outcome_key_with(&crate::numerics::checked_current(), matrix, format, cfg)
}

// Payload tags. A failed reference is persisted too: warm runs must skip
// the (very expensive) doomed Dd solve, not retry it.
const REF_FAILED: u8 = 0;
const REF_PRESENT: u8 = 1;

const OUTCOME_ERRORS: u8 = 0;
const OUTCOME_NOT_CONVERGED: u8 = 1;
const OUTCOME_RANGE_EXCEEDED: u8 = 2;

/// Encode a reference solve result (`None` = the reference itself failed,
/// i.e. the driver skips this matrix).
pub fn encode_reference(reference: &Option<Reference>) -> Vec<u8> {
    match reference {
        None => {
            let mut e = Encoder::with_capacity(1);
            e.put_u8(REF_FAILED);
            e.into_bytes()
        }
        Some(r) => {
            let elems = r.eigenvectors.nrows() * r.eigenvectors.ncols();
            let mut e = Encoder::with_capacity(1 + 16 * (r.eigenvalues.len() + elems) + 64);
            e.put_u8(REF_PRESENT);
            e.put_dd_slice(&r.eigenvalues);
            e.put_dd_matrix(&r.eigenvectors);
            e.put_usize_slice(&r.sign_anchor);
            e.into_bytes()
        }
    }
}

pub fn decode_reference(bytes: &[u8]) -> Result<Option<Reference>, CodecError> {
    let mut d = Decoder::new(bytes);
    let tag = d.get_u8()?;
    let out = match tag {
        REF_FAILED => None,
        REF_PRESENT => {
            let eigenvalues = d.get_dd_slice()?;
            let eigenvectors = d.get_dd_matrix()?;
            let sign_anchor = d.get_usize_slice()?;
            Some(Reference { eigenvalues, eigenvectors, sign_anchor })
        }
        other => return Err(CodecError::BadTag(other)),
    };
    d.finish()?;
    Ok(out)
}

pub fn encode_outcome(outcome: &Outcome) -> Vec<u8> {
    let mut e = Encoder::with_capacity(17);
    match outcome {
        Outcome::Errors(err) => {
            e.put_u8(OUTCOME_ERRORS);
            e.put_f64(err.eigenvalue_rel);
            e.put_f64(err.eigenvector_rel);
        }
        Outcome::NotConverged => e.put_u8(OUTCOME_NOT_CONVERGED),
        Outcome::RangeExceeded => e.put_u8(OUTCOME_RANGE_EXCEEDED),
        // Per-run failures say nothing about the (matrix, format) cell;
        // persisting one would poison warm runs with a stale crash. The
        // driver filters them out before it ever reaches this encoder.
        Outcome::Crashed { .. } | Outcome::TimedOut => {
            unreachable!("crashed/timed-out outcomes are never persisted")
        }
    }
    e.into_bytes()
}

pub fn decode_outcome(bytes: &[u8]) -> Result<Outcome, CodecError> {
    let mut d = Decoder::new(bytes);
    let out = match d.get_u8()? {
        OUTCOME_ERRORS => {
            let eigenvalue_rel = d.get_f64()?;
            let eigenvector_rel = d.get_f64()?;
            Outcome::Errors(EigenErrors { eigenvalue_rel, eigenvector_rel })
        }
        OUTCOME_NOT_CONVERGED => Outcome::NotConverged,
        OUTCOME_RANGE_EXCEEDED => Outcome::RangeExceeded,
        other => return Err(CodecError::BadTag(other)),
    };
    d.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::Dd;
    use lpa_dense::DMatrix;

    fn small_matrix(scale: f64) -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0 * scale), (0, 1, -1.0), (1, 1, 2.0), (2, 2, 2.0)],
        )
    }

    #[test]
    fn keys_are_sensitive_to_every_input() {
        let cfg = ExperimentConfig::default();
        let base = reference_key(&small_matrix(1.0), &cfg);
        // Same inputs → same key.
        assert_eq!(base, reference_key(&small_matrix(1.0), &cfg));
        // Any value change → different key.
        assert_ne!(base, reference_key(&small_matrix(1.0 + 1e-15), &cfg));
        // Any config change → different key.
        for changed in [
            ExperimentConfig { seed: 2, ..ExperimentConfig::default() },
            ExperimentConfig { max_restarts: 99, ..ExperimentConfig::default() },
            ExperimentConfig { reference_tol: 1e-19, ..ExperimentConfig::default() },
            ExperimentConfig { eigenvalue_count: 9, ..ExperimentConfig::default() },
            ExperimentConfig { eigenvalue_buffer_count: 3, ..ExperimentConfig::default() },
            ExperimentConfig { which: lpa_arnoldi::Which::SmallestMagnitude, ..ExperimentConfig::default() },
        ] {
            assert_ne!(base, reference_key(&small_matrix(1.0), &changed), "{changed:?}");
        }
        // Domain separation and format separation.
        let o_f64 = outcome_key(&small_matrix(1.0), FormatTag::Float64, &cfg);
        let o_p8 = outcome_key(&small_matrix(1.0), FormatTag::Posit8, &cfg);
        assert_ne!(base, o_f64);
        assert_ne!(o_f64, o_p8);
    }

    #[test]
    fn structural_changes_change_the_key() {
        let cfg = ExperimentConfig::default();
        // Same values, different sparsity pattern.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert_ne!(reference_key(&a, &cfg), reference_key(&b, &cfg));
        // Same entries, different dimensions.
        let c = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert_ne!(reference_key(&a, &cfg), reference_key(&c, &cfg));
    }

    #[test]
    fn reference_round_trip_is_bit_exact() {
        let r = Reference {
            eigenvalues: vec![Dd::new(3.5, -1e-18), Dd::ZERO, Dd { hi: f64::NAN, lo: -0.0 }],
            eigenvectors: DMatrix::from_fn(4, 3, |i, j| Dd::new(i as f64 - j as f64, 1e-22)),
            sign_anchor: vec![0, 3, 1],
        };
        let bytes = encode_reference(&Some(r.clone()));
        let back = decode_reference(&bytes).unwrap().expect("present");
        assert_eq!(back.sign_anchor, r.sign_anchor);
        assert_eq!(back.eigenvalues.len(), 3);
        for (a, b) in back.eigenvalues.iter().zip(&r.eigenvalues) {
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        }
        for j in 0..3 {
            for i in 0..4 {
                assert_eq!(back.eigenvectors[(i, j)].hi.to_bits(), r.eigenvectors[(i, j)].hi.to_bits());
            }
        }
        // The failed-reference sentinel round-trips too.
        assert!(decode_reference(&encode_reference(&None)).unwrap().is_none());
        // Corruption is caught.
        assert!(decode_reference(&[9]).is_err());
        assert!(decode_reference(&[]).is_err());
    }

    #[test]
    fn outcome_round_trips() {
        for o in [
            Outcome::NotConverged,
            Outcome::RangeExceeded,
            Outcome::Errors(EigenErrors { eigenvalue_rel: 1e-9, eigenvector_rel: f64::INFINITY }),
        ] {
            let back = decode_outcome(&encode_outcome(&o)).unwrap();
            match (o.clone(), back) {
                (Outcome::Errors(a), Outcome::Errors(b)) => {
                    assert_eq!(a.eigenvalue_rel.to_bits(), b.eigenvalue_rel.to_bits());
                    assert_eq!(a.eigenvector_rel.to_bits(), b.eigenvector_rel.to_bits());
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        assert!(decode_outcome(&[7]).is_err());
        // Trailing bytes are rejected.
        let mut bytes = encode_outcome(&Outcome::NotConverged);
        bytes.push(0);
        assert!(decode_outcome(&bytes).is_err());
    }
}
