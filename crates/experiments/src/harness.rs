//! Centralized environment handling for the harness: `LPA_*` variables are
//! parsed in exactly one place ([`HarnessEnv::capture`]) and merged with
//! CLI-provided [`PlanOverrides`] into resolved [`HarnessSettings`].
//!
//! ## Precedence
//!
//! For every knob: **CLI flag > environment variable > default.**
//!
//! | knob           | CLI (`reproduce`) | environment          | default |
//! |----------------|-------------------|----------------------|---------|
//! | corpus scale   | `--scale`         | `LPA_BENCH_SCALE`    | 1       |
//! | max dimension  | `--size-max`      | `LPA_BENCH_SIZE_MAX` | 72      |
//! | matrix budget  | `--matrices`      | `LPA_BENCH_MATRICES` | 6       |
//! | store dir      | `--store`         | `LPA_STORE`          | none    |
//! | 16-bit tier    | `--arith-tier`    | `LPA_ARITH_TIER`     | ambient |
//! | thread budget  | `--threads`       | `RAYON_NUM_THREADS`  | cores   |
//!
//! Two variables are owned by lower layers and only *flow through* here so
//! the precedence stays uniform: `LPA_ARITH_TIER` is read by
//! [`lpa_arith::env_dec16_tier`] (the tier module keeps the only
//! `std::env` read) and `RAYON_NUM_THREADS` by the rayon shim — a CLI
//! thread budget simply outranks it by being pinned on the plan, and no
//! process-environment mutation (`std::env::set_var`) is needed anywhere.
//!
//! Unset or unparsable environment values fall through to the next level,
//! except `LPA_ARITH_TIER`, where a typo panics rather than silently
//! selecting a tier.

use std::path::PathBuf;

use lpa_arith::Dec16Tier;
use lpa_store::Store;

/// Default corpus scale factor.
pub const DEFAULT_SCALE: usize = 1;
/// Default maximum generated matrix dimension.
pub const DEFAULT_SIZE_MAX: usize = 72;
/// Default per-figure matrix budget after subsampling (kept small because
/// the whole pipeline runs in software-emulated arithmetic).
pub const DEFAULT_MATRIX_BUDGET: usize = 6;

/// A snapshot of every `LPA_*` harness variable.
///
/// [`HarnessEnv::capture`] reads the real process environment; tests build
/// the struct directly (or via [`HarnessEnv::from_lookup`] with a closure
/// over a map), so no test ever needs `std::env::set_var`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HarnessEnv {
    /// `LPA_BENCH_SCALE`
    pub scale: Option<usize>,
    /// `LPA_BENCH_SIZE_MAX`
    pub size_max: Option<usize>,
    /// `LPA_BENCH_MATRICES`
    pub matrices: Option<usize>,
    /// `LPA_STORE` (empty value = unset)
    pub store_dir: Option<PathBuf>,
    /// `LPA_ARITH_TIER`, via [`lpa_arith::env_dec16_tier`]
    pub arith_tier: Option<Dec16Tier>,
}

impl HarnessEnv {
    /// Snapshot the process environment.
    pub fn capture() -> HarnessEnv {
        HarnessEnv {
            arith_tier: lpa_arith::env_dec16_tier(),
            ..Self::from_lookup(|name| std::env::var(name).ok())
        }
    }

    /// Parse the `LPA_BENCH_*` / `LPA_STORE` variables through `lookup`
    /// (injectable for tests; `arith_tier` stays `None` because its
    /// environment read belongs to `lpa_arith::tier`).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> HarnessEnv {
        let parsed = |name: &str| lookup(name).and_then(|v| v.parse().ok());
        let store_dir = lookup("LPA_STORE").filter(|v| !v.is_empty()).map(PathBuf::from);
        HarnessEnv {
            scale: parsed("LPA_BENCH_SCALE"),
            size_max: parsed("LPA_BENCH_SIZE_MAX"),
            matrices: parsed("LPA_BENCH_MATRICES"),
            store_dir,
            arith_tier: None,
        }
    }
}

/// Knobs provided explicitly (CLI flags, test fixtures); every field
/// outranks its environment counterpart when resolving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanOverrides {
    pub scale: Option<usize>,
    pub size_max: Option<usize>,
    pub matrices: Option<usize>,
    pub store_dir: Option<PathBuf>,
    pub arith_tier: Option<Dec16Tier>,
    pub threads: Option<usize>,
}

impl PlanOverrides {
    /// Merge these overrides with an environment snapshot into resolved
    /// settings (CLI flag > env var > default).
    pub fn resolve(&self, env: &HarnessEnv) -> HarnessSettings {
        HarnessSettings {
            scale: self.scale.or(env.scale).unwrap_or(DEFAULT_SCALE).max(1),
            size_max: self.size_max.or(env.size_max).unwrap_or(DEFAULT_SIZE_MAX),
            matrix_budget: self.matrices.or(env.matrices).unwrap_or(DEFAULT_MATRIX_BUDGET),
            store_dir: self.store_dir.clone().or_else(|| env.store_dir.clone()),
            arith_tier: self.arith_tier.or(env.arith_tier),
            // No env fallback here: when None, the rayon shim applies
            // RAYON_NUM_THREADS itself, keeping that read in one module.
            threads: self.threads,
        }
    }
}

/// Fully resolved harness settings: what a run will actually use.
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessSettings {
    /// Corpus scale factor (matrices per category).
    pub scale: usize,
    /// Maximum generated matrix dimension.
    pub size_max: usize,
    /// Matrix budget per figure after subsampling.
    pub matrix_budget: usize,
    /// Directory of the persistent experiment store, if any.
    pub store_dir: Option<PathBuf>,
    /// Forced 16-bit arithmetic tier (`None` = ambient).
    pub arith_tier: Option<Dec16Tier>,
    /// Worker-thread budget (`None` = `RAYON_NUM_THREADS`, else all cores).
    pub threads: Option<usize>,
}

impl HarnessSettings {
    /// Environment-only resolution: what every figure/table bench uses
    /// (they take no CLI flags).
    pub fn from_env() -> HarnessSettings {
        PlanOverrides::default().resolve(&HarnessEnv::capture())
    }

    /// Open the persistent store these settings name, if any. Panics with
    /// the offending path on I/O failure — silently running cold would
    /// recompute a whole sweep and persist nothing.
    pub fn open_store(&self) -> Option<Store> {
        let dir = self.store_dir.as_ref()?;
        Some(Store::open(dir).unwrap_or_else(|e| panic!("store {}: {e}", dir.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env_of(pairs: &[(&str, &str)]) -> HarnessEnv {
        let map: HashMap<String, String> =
            pairs.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        HarnessEnv::from_lookup(|name| map.get(name).cloned())
    }

    #[test]
    fn defaults_resolve_when_nothing_is_set() {
        let settings = PlanOverrides::default().resolve(&HarnessEnv::default());
        assert_eq!(settings.scale, DEFAULT_SCALE);
        assert_eq!(settings.size_max, DEFAULT_SIZE_MAX);
        assert_eq!(settings.matrix_budget, DEFAULT_MATRIX_BUDGET);
        assert_eq!(settings.store_dir, None);
        assert_eq!(settings.arith_tier, None);
        assert_eq!(settings.threads, None);
    }

    #[test]
    fn env_lookup_parses_and_ignores_garbage() {
        let env = env_of(&[
            ("LPA_BENCH_SCALE", "3"),
            ("LPA_BENCH_SIZE_MAX", "not-a-number"),
            ("LPA_BENCH_MATRICES", "9"),
            ("LPA_STORE", "/tmp/s"),
        ]);
        assert_eq!(env.scale, Some(3));
        assert_eq!(env.size_max, None, "unparsable values fall through");
        assert_eq!(env.matrices, Some(9));
        assert_eq!(env.store_dir, Some(PathBuf::from("/tmp/s")));

        // An empty LPA_STORE disables the store, same as unset.
        let env = env_of(&[("LPA_STORE", "")]);
        assert_eq!(env.store_dir, None);
    }

    #[test]
    fn precedence_matrix_cli_beats_env_beats_default() {
        let env = env_of(&[
            ("LPA_BENCH_SCALE", "2"),
            ("LPA_BENCH_MATRICES", "12"),
            ("LPA_STORE", "/tmp/from-env"),
        ]);
        let env = HarnessEnv { arith_tier: Some(Dec16Tier::Unpack), ..env };
        let cli = PlanOverrides {
            scale: Some(5),
            store_dir: Some(PathBuf::from("/tmp/from-cli")),
            arith_tier: Some(Dec16Tier::Softfloat),
            threads: Some(2),
            ..Default::default()
        };
        let settings = cli.resolve(&env);
        // CLI wins where both are set.
        assert_eq!(settings.scale, 5);
        assert_eq!(settings.store_dir, Some(PathBuf::from("/tmp/from-cli")));
        assert_eq!(settings.arith_tier, Some(Dec16Tier::Softfloat));
        assert_eq!(settings.threads, Some(2));
        // Env wins where only it is set.
        assert_eq!(settings.matrix_budget, 12);
        // Default where neither is set.
        assert_eq!(settings.size_max, DEFAULT_SIZE_MAX);

        // And the pure-env / pure-default rows of the matrix.
        let settings = PlanOverrides::default().resolve(&env);
        assert_eq!(settings.scale, 2);
        assert_eq!(settings.arith_tier, Some(Dec16Tier::Unpack));
        assert_eq!(settings.threads, None);
    }

    #[test]
    fn scale_is_clamped_to_at_least_one() {
        let env = env_of(&[("LPA_BENCH_SCALE", "0")]);
        assert_eq!(PlanOverrides::default().resolve(&env).scale, 1);
    }
}
