//! Centralized environment handling for the harness: `LPA_*` variables are
//! parsed in exactly one place ([`HarnessEnv::capture`]) and merged with
//! CLI-provided [`PlanOverrides`] into resolved [`HarnessSettings`].
//!
//! ## Precedence
//!
//! For every knob: **CLI flag > environment variable > default.**
//!
//! The knob table below is **data**, not prose: [`ENV_DOCS`] holds one row
//! per knob and the `reproduce` binary renders its usage text from it, so
//! the CLI flags and their documentation cannot drift apart.
//!
//! | knob           | CLI (`reproduce`) | environment          | default |
//! |----------------|-------------------|----------------------|---------|
//! | corpus scale   | `--scale`         | `LPA_BENCH_SCALE`    | 1       |
//! | max dimension  | `--size-max`      | `LPA_BENCH_SIZE_MAX` | 72      |
//! | matrix budget  | `--matrices`      | `LPA_BENCH_MATRICES` | 6       |
//! | store dir      | `--store`         | `LPA_STORE`          | none    |
//! | 16-bit tier    | `--arith-tier`    | `LPA_ARITH_TIER`     | ambient |
//! | kernel engine  | `--kernel-batch`  | `LPA_KERNEL_BATCH`   | batch   |
//! | kernel lanes   | `--kernel-lanes`  | `LPA_KERNEL_LANES`   | 1       |
//! | thread budget  | `--threads`       | `RAYON_NUM_THREADS`  | cores   |
//! | I/O retries    | `--retry`         | `LPA_RETRY`          | 2       |
//! | cell deadline  | `--cell-deadline-ms` | `LPA_CELL_DEADLINE_MS` | off |
//! | observability  | `--obs`           | `LPA_OBS`            | disarmed |
//! | manifest path  | `--manifest-out`  | `LPA_MANIFEST_OUT`   | none    |
//! | fault spec     | *(env-only)*      | `LPA_FAULTS`         | disarmed |
//! | numerics bump  | *(env-only)*      | `LPA_NUMERICS_BUMP`  | builtin  |
//! | serve address  | `lpa-serve --addr` | `LPA_SERVE_ADDR`    | 127.0.0.1:7641 |
//! | serve in-flight | `lpa-serve --max-inflight` | `LPA_SERVE_MAX_INFLIGHT` | 4 |
//! | serve queue    | `lpa-serve --queue` | `LPA_SERVE_QUEUE`  | 16      |
//!
//! Five variables are owned by lower layers and only *flow through* here
//! so the precedence stays uniform: `LPA_ARITH_TIER` is read by
//! [`lpa_arith::env_dec16_tier`], `LPA_KERNEL_BATCH` by
//! [`lpa_arith::env_kernel_batch`], `LPA_KERNEL_LANES` by
//! [`lpa_arith::env_kernel_lanes`], `LPA_OBS` by
//! [`lpa_obs::env_observability`] (each module keeps its only `std::env`
//! read) and `RAYON_NUM_THREADS` by the rayon shim — a CLI thread budget
//! simply outranks it by being pinned on the plan, and no
//! process-environment mutation (`std::env::set_var`) is needed anywhere.
//! The `LPA_SERVE_*` trio is likewise owned by `lpa-serve`'s config
//! module (`ServeConfig::from_env`, its only reader); the rows live here
//! so this table stays the complete `LPA_*` inventory.
//!
//! Unset or unparsable environment values fall through to the next level,
//! except `LPA_ARITH_TIER`, `LPA_KERNEL_BATCH` and `LPA_KERNEL_LANES`,
//! where a typo panics rather than silently selecting a default.

use std::path::PathBuf;

use lpa_arith::{Dec16Tier, KernelBatch, KernelLanes};
use lpa_store::Store;

/// Default corpus scale factor.
pub const DEFAULT_SCALE: usize = 1;
/// Default maximum generated matrix dimension.
pub const DEFAULT_SIZE_MAX: usize = 72;
/// Default per-figure matrix budget after subsampling (kept small because
/// the whole pipeline runs in software-emulated arithmetic).
pub const DEFAULT_MATRIX_BUDGET: usize = 6;

/// One row of the harness knob table: the environment variable, its
/// `reproduce` CLI flag (empty when CLI-only/env-only), the value syntax
/// and a one-line description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvDoc {
    pub var: &'static str,
    pub flag: &'static str,
    pub value: &'static str,
    pub help: &'static str,
}

/// The single source of truth for every harness knob: `reproduce --help`
/// renders its environment-variable table from this array (so flags and
/// docs cannot drift), and `tests` assert it covers every [`HarnessEnv`] /
/// [`PlanOverrides`] field.
pub const ENV_DOCS: &[EnvDoc] = &[
    EnvDoc {
        var: "LPA_BENCH_SCALE",
        flag: "--scale",
        value: "K",
        help: "corpus scale factor (matrices per category, default 1)",
    },
    EnvDoc {
        var: "LPA_BENCH_SIZE_MAX",
        flag: "--size-max",
        value: "N",
        help: "maximum generated matrix dimension (default 72)",
    },
    EnvDoc {
        var: "LPA_BENCH_MATRICES",
        flag: "--matrices",
        value: "M",
        help: "per-figure matrix budget after subsampling (default 6)",
    },
    EnvDoc {
        var: "LPA_STORE",
        flag: "--store",
        value: "DIR",
        help: "persistent experiment store directory (default none)",
    },
    EnvDoc {
        var: "LPA_ARITH_TIER",
        flag: "--arith-tier",
        value: "unpack|softfloat",
        help: "16-bit arithmetic tier (bit-identical; default unpack)",
    },
    EnvDoc {
        var: "LPA_KERNEL_BATCH",
        flag: "--kernel-batch",
        value: "batch|scalar",
        help: "bulk kernel engine (bit-identical; default batch)",
    },
    EnvDoc {
        var: "LPA_KERNEL_LANES",
        flag: "--kernel-lanes",
        value: "1|4|8",
        help: "planes-kernel lane width (bit-identical; default 1)",
    },
    EnvDoc {
        var: "RAYON_NUM_THREADS",
        flag: "--threads",
        value: "T",
        help: "worker-thread budget (default all cores)",
    },
    EnvDoc {
        var: "LPA_RETRY",
        flag: "--retry",
        value: "N",
        help: "transient store-I/O retry budget per operation (default 2)",
    },
    EnvDoc {
        var: "LPA_CELL_DEADLINE_MS",
        flag: "--cell-deadline-ms",
        value: "MS",
        help: "cooperative per-cell solve deadline in ms (0 = off, default)",
    },
    EnvDoc {
        var: "LPA_OBS",
        flag: "--obs",
        value: "on|off",
        help: "arm lpa-obs tracing spans for the run (read by lpa-obs; default off)",
    },
    EnvDoc {
        var: "LPA_MANIFEST_OUT",
        flag: "--manifest-out",
        value: "FILE",
        help: "write the run_manifest/v1 JSON artifact of the run to FILE (default none)",
    },
    EnvDoc {
        var: "LPA_FAULTS",
        flag: "",
        value: "SPEC",
        help: "fault-injection spec, e.g. store.read.corrupt=prob:0.2 (read by lpa-faults; default disarmed)",
    },
    EnvDoc {
        var: "LPA_NUMERICS_BUMP",
        flag: "",
        value: "feature=V[,feature=V...]",
        help: "override numerics feature versions, e.g. batch_round=2 (read by lpa-numerics; default builtin table)",
    },
    EnvDoc {
        var: "LPA_SERVE_ADDR",
        flag: "",
        value: "HOST:PORT",
        help: "lpa-serve listen address; `lpa-serve serve --addr` outranks it (read by lpa-serve; default 127.0.0.1:7641)",
    },
    EnvDoc {
        var: "LPA_SERVE_MAX_INFLIGHT",
        flag: "",
        value: "N",
        help: "lpa-serve concurrent sessions / worker-pool size; `--max-inflight` outranks it (read by lpa-serve; default 4)",
    },
    EnvDoc {
        var: "LPA_SERVE_QUEUE",
        flag: "",
        value: "N",
        help: "lpa-serve admission-queue depth past the in-flight cap; `--queue` outranks it (read by lpa-serve; default 16)",
    },
];

/// Render [`ENV_DOCS`] as the aligned two-column table `reproduce --help`
/// prints (flag + value on the left, environment variable and description
/// on the right).
pub fn env_docs_table() -> String {
    let rows: Vec<(String, String)> = ENV_DOCS
        .iter()
        .map(|d| {
            let left = if d.flag.is_empty() {
                "(env-only)".to_string()
            } else {
                format!("{} {}", d.flag, d.value)
            };
            (left, format!("[{}] {}", d.var, d.help))
        })
        .collect();
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    rows.iter().map(|(l, r)| format!("  {l:<width$}  {r}\n")).collect()
}

/// A snapshot of every `LPA_*` harness variable.
///
/// [`HarnessEnv::capture`] reads the real process environment; tests build
/// the struct directly (or via [`HarnessEnv::from_lookup`] with a closure
/// over a map), so no test ever needs `std::env::set_var`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HarnessEnv {
    /// `LPA_BENCH_SCALE`
    pub scale: Option<usize>,
    /// `LPA_BENCH_SIZE_MAX`
    pub size_max: Option<usize>,
    /// `LPA_BENCH_MATRICES`
    pub matrices: Option<usize>,
    /// `LPA_STORE` (empty value = unset)
    pub store_dir: Option<PathBuf>,
    /// `LPA_ARITH_TIER`, via [`lpa_arith::env_dec16_tier`]
    pub arith_tier: Option<Dec16Tier>,
    /// `LPA_KERNEL_BATCH`, via [`lpa_arith::env_kernel_batch`]
    pub kernel_batch: Option<KernelBatch>,
    /// `LPA_KERNEL_LANES`, via [`lpa_arith::env_kernel_lanes`]
    pub kernel_lanes: Option<KernelLanes>,
    /// `LPA_RETRY`
    pub retry: Option<u32>,
    /// `LPA_CELL_DEADLINE_MS`
    pub cell_deadline_ms: Option<u64>,
    /// `LPA_OBS`, via [`lpa_obs::env_observability`]
    pub observability: Option<bool>,
    /// `LPA_MANIFEST_OUT` (empty value = unset)
    pub manifest_out: Option<PathBuf>,
}

impl HarnessEnv {
    /// Snapshot the process environment.
    pub fn capture() -> HarnessEnv {
        HarnessEnv {
            arith_tier: lpa_arith::env_dec16_tier(),
            kernel_batch: lpa_arith::env_kernel_batch(),
            kernel_lanes: lpa_arith::env_kernel_lanes(),
            observability: lpa_obs::env_observability(),
            ..Self::from_lookup(|name| std::env::var(name).ok())
        }
    }

    /// Parse the `LPA_BENCH_*` / `LPA_STORE` / `LPA_MANIFEST_OUT` variables
    /// through `lookup` (injectable for tests; `arith_tier`,
    /// `kernel_batch` and `observability` stay `None` because their
    /// environment reads belong to `lpa_arith` / `lpa_obs`).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> HarnessEnv {
        let parsed = |name: &str| lookup(name).and_then(|v| v.parse().ok());
        let path_of =
            |name: &str| lookup(name).filter(|v| !v.is_empty()).map(PathBuf::from);
        HarnessEnv {
            scale: parsed("LPA_BENCH_SCALE"),
            size_max: parsed("LPA_BENCH_SIZE_MAX"),
            matrices: parsed("LPA_BENCH_MATRICES"),
            store_dir: path_of("LPA_STORE"),
            arith_tier: None,
            kernel_batch: None,
            kernel_lanes: None,
            retry: lookup("LPA_RETRY").and_then(|v| v.parse().ok()),
            cell_deadline_ms: lookup("LPA_CELL_DEADLINE_MS").and_then(|v| v.parse().ok()),
            observability: None,
            manifest_out: path_of("LPA_MANIFEST_OUT"),
        }
    }
}

/// Knobs provided explicitly (CLI flags, test fixtures); every field
/// outranks its environment counterpart when resolving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanOverrides {
    pub scale: Option<usize>,
    pub size_max: Option<usize>,
    pub matrices: Option<usize>,
    pub store_dir: Option<PathBuf>,
    pub arith_tier: Option<Dec16Tier>,
    pub kernel_batch: Option<KernelBatch>,
    pub kernel_lanes: Option<KernelLanes>,
    pub threads: Option<usize>,
    pub retry: Option<u32>,
    pub cell_deadline_ms: Option<u64>,
    pub observability: Option<bool>,
    pub manifest_out: Option<PathBuf>,
}

impl PlanOverrides {
    /// Merge these overrides with an environment snapshot into resolved
    /// settings (CLI flag > env var > default).
    pub fn resolve(&self, env: &HarnessEnv) -> HarnessSettings {
        HarnessSettings {
            scale: self.scale.or(env.scale).unwrap_or(DEFAULT_SCALE).max(1),
            size_max: self.size_max.or(env.size_max).unwrap_or(DEFAULT_SIZE_MAX),
            matrix_budget: self.matrices.or(env.matrices).unwrap_or(DEFAULT_MATRIX_BUDGET),
            store_dir: self.store_dir.clone().or_else(|| env.store_dir.clone()),
            arith_tier: self.arith_tier.or(env.arith_tier),
            kernel_batch: self.kernel_batch.or(env.kernel_batch),
            kernel_lanes: self.kernel_lanes.or(env.kernel_lanes),
            // No env fallback here: when None, the rayon shim applies
            // RAYON_NUM_THREADS itself, keeping that read in one module.
            threads: self.threads,
            retry: self.retry.or(env.retry),
            // A zero deadline means "off", same as unset.
            cell_deadline: self
                .cell_deadline_ms
                .or(env.cell_deadline_ms)
                .filter(|&ms| ms > 0)
                .map(std::time::Duration::from_millis),
            observability: self.observability.or(env.observability),
            manifest_out: self.manifest_out.clone().or_else(|| env.manifest_out.clone()),
        }
    }
}

/// Fully resolved harness settings: what a run will actually use.
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessSettings {
    /// Corpus scale factor (matrices per category).
    pub scale: usize,
    /// Maximum generated matrix dimension.
    pub size_max: usize,
    /// Matrix budget per figure after subsampling.
    pub matrix_budget: usize,
    /// Directory of the persistent experiment store, if any.
    pub store_dir: Option<PathBuf>,
    /// Forced 16-bit arithmetic tier (`None` = ambient).
    pub arith_tier: Option<Dec16Tier>,
    /// Forced bulk kernel engine (`None` = ambient, i.e. batch).
    pub kernel_batch: Option<KernelBatch>,
    /// Forced planes-kernel lane width (`None` = ambient, i.e. 8).
    pub kernel_lanes: Option<KernelLanes>,
    /// Worker-thread budget (`None` = `RAYON_NUM_THREADS`, else all cores).
    pub threads: Option<usize>,
    /// Transient store-I/O retry budget (`None` = the store's default).
    pub retry: Option<u32>,
    /// Cooperative per-cell solve deadline (`None` = off).
    pub cell_deadline: Option<std::time::Duration>,
    /// Forced `lpa-obs` span-gate state (`None` = ambient, i.e. `LPA_OBS`).
    pub observability: Option<bool>,
    /// Path of the `run_manifest/v1` artifact to emit (`None` = none).
    pub manifest_out: Option<PathBuf>,
}

impl HarnessSettings {
    /// Environment-only resolution: what every figure/table bench uses
    /// (they take no CLI flags).
    pub fn from_env() -> HarnessSettings {
        PlanOverrides::default().resolve(&HarnessEnv::capture())
    }

    /// Open the persistent store these settings name, if any. Panics with
    /// the offending path on I/O failure — silently running cold would
    /// recompute a whole sweep and persist nothing.
    pub fn open_store(&self) -> Option<Store> {
        let dir = self.store_dir.as_ref()?;
        Some(Store::open(dir).unwrap_or_else(|e| panic!("store {}: {e}", dir.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env_of(pairs: &[(&str, &str)]) -> HarnessEnv {
        let map: HashMap<String, String> =
            pairs.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        HarnessEnv::from_lookup(|name| map.get(name).cloned())
    }

    #[test]
    fn defaults_resolve_when_nothing_is_set() {
        let settings = PlanOverrides::default().resolve(&HarnessEnv::default());
        assert_eq!(settings.scale, DEFAULT_SCALE);
        assert_eq!(settings.size_max, DEFAULT_SIZE_MAX);
        assert_eq!(settings.matrix_budget, DEFAULT_MATRIX_BUDGET);
        assert_eq!(settings.store_dir, None);
        assert_eq!(settings.arith_tier, None);
        assert_eq!(settings.threads, None);
        assert_eq!(settings.retry, None);
        assert_eq!(settings.cell_deadline, None);
        assert_eq!(settings.observability, None);
        assert_eq!(settings.manifest_out, None);
    }

    #[test]
    fn observability_and_manifest_path_resolve_with_cli_precedence() {
        // LPA_OBS itself is read by lpa_obs (capture()); from_lookup keeps
        // the field None, so only the CLI layer can set it here.
        let env = env_of(&[("LPA_OBS", "on"), ("LPA_MANIFEST_OUT", "/tmp/m.json")]);
        assert_eq!(env.observability, None);
        assert_eq!(env.manifest_out, Some(PathBuf::from("/tmp/m.json")));
        let settings = PlanOverrides::default().resolve(&env);
        assert_eq!(settings.observability, None);
        assert_eq!(settings.manifest_out, Some(PathBuf::from("/tmp/m.json")));

        let cli = PlanOverrides {
            observability: Some(false),
            manifest_out: Some(PathBuf::from("/tmp/cli.json")),
            ..Default::default()
        };
        let settings = cli.resolve(&env);
        assert_eq!(settings.observability, Some(false));
        assert_eq!(settings.manifest_out, Some(PathBuf::from("/tmp/cli.json")));

        // An empty LPA_MANIFEST_OUT disables the artifact, same as unset.
        let env = env_of(&[("LPA_MANIFEST_OUT", "")]);
        assert_eq!(env.manifest_out, None);
    }

    #[test]
    fn retry_and_deadline_resolve_with_zero_meaning_off() {
        let env = env_of(&[("LPA_RETRY", "5"), ("LPA_CELL_DEADLINE_MS", "250")]);
        assert_eq!(env.retry, Some(5));
        assert_eq!(env.cell_deadline_ms, Some(250));
        let settings = PlanOverrides::default().resolve(&env);
        assert_eq!(settings.retry, Some(5));
        assert_eq!(settings.cell_deadline, Some(std::time::Duration::from_millis(250)));

        // CLI outranks the environment; a zero deadline disables it.
        let cli = PlanOverrides {
            retry: Some(0),
            cell_deadline_ms: Some(0),
            ..Default::default()
        };
        let settings = cli.resolve(&env);
        assert_eq!(settings.retry, Some(0), "retry 0 is a real budget (no retries)");
        assert_eq!(settings.cell_deadline, None, "deadline 0 means off");
    }

    #[test]
    fn env_lookup_parses_and_ignores_garbage() {
        let env = env_of(&[
            ("LPA_BENCH_SCALE", "3"),
            ("LPA_BENCH_SIZE_MAX", "not-a-number"),
            ("LPA_BENCH_MATRICES", "9"),
            ("LPA_STORE", "/tmp/s"),
        ]);
        assert_eq!(env.scale, Some(3));
        assert_eq!(env.size_max, None, "unparsable values fall through");
        assert_eq!(env.matrices, Some(9));
        assert_eq!(env.store_dir, Some(PathBuf::from("/tmp/s")));

        // An empty LPA_STORE disables the store, same as unset.
        let env = env_of(&[("LPA_STORE", "")]);
        assert_eq!(env.store_dir, None);
    }

    #[test]
    fn precedence_matrix_cli_beats_env_beats_default() {
        let env = env_of(&[
            ("LPA_BENCH_SCALE", "2"),
            ("LPA_BENCH_MATRICES", "12"),
            ("LPA_STORE", "/tmp/from-env"),
        ]);
        let env = HarnessEnv {
            arith_tier: Some(Dec16Tier::Unpack),
            kernel_batch: Some(KernelBatch::Batch),
            ..env
        };
        let cli = PlanOverrides {
            scale: Some(5),
            store_dir: Some(PathBuf::from("/tmp/from-cli")),
            arith_tier: Some(Dec16Tier::Softfloat),
            kernel_batch: Some(KernelBatch::Scalar),
            threads: Some(2),
            ..Default::default()
        };
        let settings = cli.resolve(&env);
        // CLI wins where both are set.
        assert_eq!(settings.scale, 5);
        assert_eq!(settings.store_dir, Some(PathBuf::from("/tmp/from-cli")));
        assert_eq!(settings.arith_tier, Some(Dec16Tier::Softfloat));
        assert_eq!(settings.kernel_batch, Some(KernelBatch::Scalar));
        assert_eq!(settings.threads, Some(2));
        // Env wins where only it is set.
        assert_eq!(settings.matrix_budget, 12);
        // Default where neither is set.
        assert_eq!(settings.size_max, DEFAULT_SIZE_MAX);

        // And the pure-env / pure-default rows of the matrix.
        let settings = PlanOverrides::default().resolve(&env);
        assert_eq!(settings.scale, 2);
        assert_eq!(settings.arith_tier, Some(Dec16Tier::Unpack));
        assert_eq!(settings.kernel_batch, Some(KernelBatch::Batch));
        assert_eq!(settings.threads, None);
    }

    /// The knob-doc table is the single source of CLI usage text: it must
    /// cover every override field (destructuring makes adding a field
    /// without a doc row a compile error here) and render every row.
    #[test]
    fn env_docs_cover_every_knob() {
        let PlanOverrides {
            scale: _,
            size_max: _,
            matrices: _,
            store_dir: _,
            arith_tier: _,
            kernel_batch: _,
            kernel_lanes: _,
            threads: _,
            retry: _,
            cell_deadline_ms: _,
            observability: _,
            manifest_out: _,
        } = PlanOverrides::default();
        // 12 override fields + the env-only LPA_FAULTS and
        // LPA_NUMERICS_BUMP rows + the three LPA_SERVE_* daemon knobs.
        assert_eq!(ENV_DOCS.len(), 17, "one doc row per knob");

        let table = env_docs_table();
        for doc in ENV_DOCS {
            assert!(table.contains(doc.var), "{} missing from the table", doc.var);
            assert!(table.contains(doc.flag), "{} missing from the table", doc.flag);
        }
        assert!(table.contains("LPA_KERNEL_BATCH"));
        assert!(table.contains("--kernel-batch"));
    }

    #[test]
    fn scale_is_clamped_to_at_least_one() {
        let env = env_of(&[("LPA_BENCH_SCALE", "0")]);
        assert_eq!(PlanOverrides::default().resolve(&env).scale, 1);
    }
}
