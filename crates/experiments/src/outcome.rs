//! Outcome classification of a single (matrix, format) run.

use serde::{Deserialize, Serialize};

/// Relative errors of one successful run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EigenErrors {
    /// Relative L2 error of the vector of the `eigenvalue_count` largest
    /// eigenvalues.
    pub eigenvalue_rel: f64,
    /// Relative L2 error of the corresponding eigenvector matrix (after
    /// permutation matching and sign correction).
    pub eigenvector_rel: f64,
}

/// What happened when a matrix was run in a given format.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The run converged; relative errors are reported.
    Errors(EigenErrors),
    /// The Arnoldi method did not converge — the paper's `∞ω`.
    NotConverged,
    /// The matrix entries exceeded the format's dynamic range — the paper's
    /// `∞σ`.
    RangeExceeded,
}

impl Outcome {
    pub fn errors(&self) -> Option<EigenErrors> {
        match self {
            Outcome::Errors(e) => Some(*e),
            _ => None,
        }
    }

    pub fn is_not_converged(&self) -> bool {
        matches!(self, Outcome::NotConverged)
    }

    pub fn is_range_exceeded(&self) -> bool {
        matches!(self, Outcome::RangeExceeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = EigenErrors { eigenvalue_rel: 1e-3, eigenvector_rel: 1e-2 };
        assert_eq!(Outcome::Errors(e).errors(), Some(e));
        assert!(Outcome::NotConverged.is_not_converged());
        assert!(Outcome::RangeExceeded.is_range_exceeded());
        assert!(Outcome::Errors(e).errors().unwrap().eigenvalue_rel < 1e-2);
        // serde round trip
        let json = serde_json::to_string(&Outcome::Errors(e)).unwrap();
        let back: Outcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Outcome::Errors(e));
    }
}
