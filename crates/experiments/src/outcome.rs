//! Outcome classification of a single (matrix, format) run.

use serde::{Deserialize, Serialize};

/// Relative errors of one successful run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EigenErrors {
    /// Relative L2 error of the vector of the `eigenvalue_count` largest
    /// eigenvalues.
    pub eigenvalue_rel: f64,
    /// Relative L2 error of the corresponding eigenvector matrix (after
    /// permutation matching and sign correction).
    pub eigenvector_rel: f64,
}

/// What happened when a matrix was run in a given format.
///
/// The first three variants are *facts about the cell* — deterministic
/// functions of (matrix, format, config) — and are what the store
/// persists. [`Outcome::Crashed`] and [`Outcome::TimedOut`] are facts
/// about *one particular run* (a panic the driver isolated, a wall-clock
/// deadline) and are therefore **never persisted**: a warm rerun retries
/// those cells from scratch.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The run converged; relative errors are reported.
    Errors(EigenErrors),
    /// The Arnoldi method did not converge — the paper's `∞ω`.
    NotConverged,
    /// The matrix entries exceeded the format's dynamic range — the paper's
    /// `∞σ`.
    RangeExceeded,
    /// The cell panicked; the driver's `catch_unwind` isolated it and the
    /// grid completed degraded.
    Crashed {
        /// The panic payload, when it was a string.
        reason: String,
    },
    /// The cell's cooperative deadline (`ExperimentPlan::cell_deadline`)
    /// passed before the solve finished.
    TimedOut,
}

impl Outcome {
    pub fn errors(&self) -> Option<EigenErrors> {
        match self {
            Outcome::Errors(e) => Some(*e),
            _ => None,
        }
    }

    pub fn is_not_converged(&self) -> bool {
        matches!(self, Outcome::NotConverged)
    }

    pub fn is_range_exceeded(&self) -> bool {
        matches!(self, Outcome::RangeExceeded)
    }

    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }

    pub fn is_timed_out(&self) -> bool {
        matches!(self, Outcome::TimedOut)
    }

    pub fn crash_reason(&self) -> Option<&str> {
        match self {
            Outcome::Crashed { reason } => Some(reason),
            _ => None,
        }
    }

    /// True for the per-run failure variants that must never reach the
    /// store (see the type-level docs).
    pub fn is_ephemeral(&self) -> bool {
        matches!(self, Outcome::Crashed { .. } | Outcome::TimedOut)
    }

    /// Stable kebab-case label of the variant — the vocabulary of the run
    /// manifest's cell records and the `session.cell.*` counters.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Errors(_) => "errors",
            Outcome::NotConverged => "not-converged",
            Outcome::RangeExceeded => "range-exceeded",
            Outcome::Crashed { .. } => "crashed",
            Outcome::TimedOut => "timed-out",
        }
    }
}

// Manual serde impls (the derive convention by hand): the vendored derive
// macro cannot handle the struct-like `Crashed { reason }` variant.
impl Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        match self {
            Outcome::Errors(e) => {
                serde::Value::Map(vec![("Errors".to_string(), e.to_value())])
            }
            Outcome::NotConverged => serde::Value::Str("NotConverged".to_string()),
            Outcome::RangeExceeded => serde::Value::Str("RangeExceeded".to_string()),
            Outcome::Crashed { reason } => serde::Value::Map(vec![(
                "Crashed".to_string(),
                serde::Value::Map(vec![(
                    "reason".to_string(),
                    serde::Value::Str(reason.clone()),
                )]),
            )]),
            Outcome::TimedOut => serde::Value::Str("TimedOut".to_string()),
        }
    }
}

impl Deserialize for Outcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(name) = v.as_str() {
            return match name {
                "NotConverged" => Ok(Outcome::NotConverged),
                "RangeExceeded" => Ok(Outcome::RangeExceeded),
                "TimedOut" => Ok(Outcome::TimedOut),
                other => Err(serde::Error::msg(format!("unknown Outcome variant {other}"))),
            };
        }
        let map = v.as_map().ok_or_else(|| serde::Error::msg("Outcome: expected string or map"))?;
        match map.first().map(|(k, v)| (k.as_str(), v)) {
            Some(("Errors", payload)) => Ok(Outcome::Errors(EigenErrors::from_value(payload)?)),
            Some(("Crashed", payload)) => {
                let reason = payload
                    .get("reason")
                    .and_then(|r| r.as_str())
                    .ok_or_else(|| serde::Error::msg("Crashed: missing reason"))?;
                Ok(Outcome::Crashed { reason: reason.to_string() })
            }
            _ => Err(serde::Error::msg("unknown Outcome variant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = EigenErrors { eigenvalue_rel: 1e-3, eigenvector_rel: 1e-2 };
        assert_eq!(Outcome::Errors(e).errors(), Some(e));
        assert!(Outcome::NotConverged.is_not_converged());
        assert!(Outcome::RangeExceeded.is_range_exceeded());
        assert!(Outcome::Errors(e).errors().unwrap().eigenvalue_rel < 1e-2);
        let crashed = Outcome::Crashed { reason: "index out of bounds".to_string() };
        assert!(crashed.is_crashed() && crashed.is_ephemeral());
        assert_eq!(crashed.crash_reason(), Some("index out of bounds"));
        assert!(Outcome::TimedOut.is_timed_out() && Outcome::TimedOut.is_ephemeral());
        assert!(!Outcome::NotConverged.is_ephemeral());
        // serde round trip
        let json = serde_json::to_string(&Outcome::Errors(e)).unwrap();
        let back: Outcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Outcome::Errors(e));
    }

    #[test]
    fn every_variant_round_trips_through_serde() {
        let e = EigenErrors { eigenvalue_rel: 2e-5, eigenvector_rel: 3e-4 };
        for outcome in [
            Outcome::Errors(e),
            Outcome::NotConverged,
            Outcome::RangeExceeded,
            Outcome::Crashed { reason: "solver exploded".to_string() },
            Outcome::TimedOut,
        ] {
            let json = serde_json::to_string(&outcome).unwrap();
            let back: Outcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome, "{json}");
        }
    }
}
