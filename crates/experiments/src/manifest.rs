//! The versioned run manifest (`run_manifest/v1`): the machine-readable
//! ground truth of one [`crate::Session`] run, consumed by
//! `reproduce --manifest-out`, the figure benches, CI's cross-thread-count
//! determinism check, and later `lpa-serve`.
//!
//! ## Layout
//!
//! ```json
//! {
//!   "schema": "run_manifest/v1",
//!   "plan":  { "formats": [...], "config": {...}, "corpus": N, "faults": "...",
//!              "numerics": { "<feature>": V, ... } },
//!   "grid":  { ...the ExperimentResults serialization... },
//!   "run":   { "threads": T, "arith_tier": "...", "kernel_batch": "...",
//!              "kernel_lanes": W,
//!              "retry": R, "cell_deadline_ms": D, "observability": "...",
//!              "wall_ms": W,
//!              "references": [ {"matrix","status","from_store","wall_ms"} ],
//!              "cells":      [ {"matrix","format","outcome","from_store","wall_ms"} ],
//!              "store":   { ...lpa-obs-registry/v1 counter deltas... } | null,
//!              "session": { ...lpa-obs-registry/v1 counter deltas... },
//!              "spans":   [ {"name","count","total_ns","max_ns"} ] }
//! }
//! ```
//!
//! The three sections carve the data by volatility:
//!
//! * **`plan`** and **`grid`** are deterministic functions of (corpus,
//!   formats, config, fault spec) — byte-identical for any thread count,
//!   store state, arithmetic tier, kernel engine and observability state
//!   (the session's existing determinism guarantee). [`stable_view`]
//!   extracts exactly this pair.
//! * **`run`** holds everything about *this particular execution*:
//!   resolved knobs, wall times, served-from-store flags, counter deltas
//!   and span aggregates. Timing fields all carry a `_ms`/`_ns` name
//!   suffix; [`timing_masked`] zeroes them (plus `"threads"`) so the CI
//!   determinism check can byte-compare manifests from runs at different
//!   thread counts (the store state must match — warm vs warm).
//!
//! References and cells appear in deterministic corpus order (cells
//! matrix-major in plan format order), so the record *order* — like every
//! non-timing field — is identical across thread counts.

use std::io;
use std::path::Path;

use serde::Value;

/// Schema tag of every run manifest.
pub const RUN_MANIFEST_SCHEMA: &str = "run_manifest/v1";

/// One emitted run manifest (see the module docs for the layout).
pub struct RunManifest {
    value: Value,
}

impl RunManifest {
    pub(crate) fn new(value: Value) -> RunManifest {
        debug_assert!(validate(&value).is_ok(), "session built an invalid manifest");
        RunManifest { value }
    }

    /// The whole manifest tree.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Pretty-printed JSON, newline-terminated (the on-disk format).
    pub fn to_json_pretty(&self) -> String {
        let mut text = serde_json::to_string_pretty(&self.value)
            .expect("manifest values always serialize");
        text.push('\n');
        text
    }

    /// Write the manifest to `path` (parent directories are created).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json_pretty())
    }

    /// The deterministic `plan` + `grid` pair — see [`stable_view`].
    pub fn stable_view(&self) -> Value {
        stable_view(&self.value)
    }

    /// The manifest with timing fields zeroed — see [`timing_masked`].
    pub fn timing_masked(&self) -> Value {
        timing_masked(&self.value)
    }
}

/// Drop the volatile `run` section, keeping `schema` + `plan` + `grid`:
/// byte-identical across thread counts, store states (warm vs cold),
/// engines and tiers for the same logical experiment.
pub fn stable_view(manifest: &Value) -> Value {
    match manifest {
        Value::Map(entries) => Value::Map(
            entries.iter().filter(|(k, _)| k != "run").cloned().collect(),
        ),
        other => other.clone(),
    }
}

/// Zero every timing field (keys suffixed `_ms` or `_ns`) and the
/// `"threads"` knob, recursively. What remains must be byte-identical
/// across thread counts when the store state matches — the CI determinism
/// check compares exactly this.
pub fn timing_masked(manifest: &Value) -> Value {
    fn mask(v: &Value) -> Value {
        match v {
            Value::Map(entries) => Value::Map(
                entries
                    .iter()
                    .map(|(k, v)| {
                        let is_timing =
                            k.ends_with("_ms") || k.ends_with("_ns") || k == "threads";
                        let masked = if is_timing && matches!(v, Value::Num(_) | Value::UInt(_)) {
                            Value::Num(0.0)
                        } else {
                            mask(v)
                        };
                        (k.clone(), masked)
                    })
                    .collect(),
            ),
            Value::Seq(items) => Value::Seq(items.iter().map(mask).collect()),
            other => other.clone(),
        }
    }
    mask(manifest)
}

fn expect_keys(map: &Value, keys: &[&str], section: &str) -> Result<(), String> {
    let Some(entries) = map.as_map() else {
        return Err(format!("{section}: expected a JSON object"));
    };
    for key in keys {
        if !entries.iter().any(|(k, _)| k == key) {
            return Err(format!("{section}: missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Structural schema check of a `run_manifest/v1` tree: section presence,
/// per-record keys, and the shared registry schema tag on the counter
/// sections. CI runs this (via `manifest_check`) on every emitted
/// manifest.
pub fn validate(manifest: &Value) -> Result<(), String> {
    expect_keys(manifest, &["schema", "plan", "grid", "run"], "manifest")?;
    match manifest.get("schema").and_then(|v| v.as_str()) {
        Some(RUN_MANIFEST_SCHEMA) => {}
        Some(other) => return Err(format!("unknown manifest schema {other:?}")),
        None => return Err("manifest: schema is not a string".to_string()),
    }
    let plan = manifest.get("plan").unwrap();
    expect_keys(plan, &["formats", "config", "corpus", "faults", "numerics"], "plan")?;
    expect_keys(
        plan.get("config").unwrap(),
        &["eigenvalue_count", "eigenvalue_buffer_count", "which", "reference_tol", "max_restarts", "seed"],
        "plan.config",
    )?;
    let grid = manifest.get("grid").unwrap();
    expect_keys(grid, &["formats", "matrices", "skipped", "crashed"], "grid")?;
    let run = manifest.get("run").unwrap();
    expect_keys(
        run,
        &[
            "threads",
            "arith_tier",
            "kernel_batch",
            "kernel_lanes",
            "retry",
            "cell_deadline_ms",
            "observability",
            "wall_ms",
            "references",
            "cells",
            "store",
            "session",
            "spans",
        ],
        "run",
    )?;
    let records = |name: &str, keys: &[&str]| -> Result<(), String> {
        let Some(items) = run.get(name).and_then(|v| v.as_seq()) else {
            return Err(format!("run.{name}: expected an array"));
        };
        for (i, item) in items.iter().enumerate() {
            expect_keys(item, keys, &format!("run.{name}[{i}]"))?;
        }
        Ok(())
    };
    records("references", &["matrix", "status", "from_store", "wall_ms"])?;
    records("cells", &["matrix", "format", "outcome", "from_store", "wall_ms"])?;
    records("spans", &["name", "count", "total_ns", "max_ns"])?;
    for section in ["store", "session"] {
        let value = run.get(section).unwrap();
        if matches!(value, Value::Null) {
            continue; // store is null for storeless runs
        }
        match value.get("schema").and_then(|v| v.as_str()) {
            Some(lpa_obs::REGISTRY_SCHEMA) => {}
            _ => {
                return Err(format!(
                    "run.{section}: expected the {} schema",
                    lpa_obs::REGISTRY_SCHEMA
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_v(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    fn tiny_manifest() -> Value {
        let counters = |pairs: &[(&str, u64)]| {
            lpa_obs::counters_value(
                &pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect::<Vec<_>>(),
            )
        };
        Value::Map(vec![
            ("schema".to_string(), str_v(RUN_MANIFEST_SCHEMA)),
            (
                "plan".to_string(),
                Value::Map(vec![
                    ("formats".to_string(), Value::Seq(vec![str_v("Float64")])),
                    (
                        "config".to_string(),
                        Value::Map(vec![
                            ("eigenvalue_count".to_string(), Value::Num(3.0)),
                            ("eigenvalue_buffer_count".to_string(), Value::Num(2.0)),
                            ("which".to_string(), str_v("LargestMagnitude")),
                            ("reference_tol".to_string(), Value::Num(1e-20)),
                            ("max_restarts".to_string(), Value::Num(40.0)),
                            ("seed".to_string(), Value::Num(1.0)),
                        ]),
                    ),
                    ("corpus".to_string(), Value::Num(1.0)),
                    ("faults".to_string(), str_v("disarmed")),
                    (
                        "numerics".to_string(),
                        Value::Map(vec![("dd_reference".to_string(), Value::UInt(1))]),
                    ),
                ]),
            ),
            (
                "grid".to_string(),
                Value::Map(vec![
                    ("formats".to_string(), Value::Seq(vec![str_v("Float64")])),
                    ("matrices".to_string(), Value::Seq(vec![])),
                    ("skipped".to_string(), Value::Seq(vec![])),
                    ("crashed".to_string(), Value::Seq(vec![])),
                ]),
            ),
            (
                "run".to_string(),
                Value::Map(vec![
                    ("threads".to_string(), Value::Num(4.0)),
                    ("arith_tier".to_string(), str_v("Unpack")),
                    ("kernel_batch".to_string(), str_v("Batch")),
                    ("kernel_lanes".to_string(), Value::Num(8.0)),
                    ("retry".to_string(), Value::Null),
                    ("cell_deadline_ms".to_string(), Value::Null),
                    ("observability".to_string(), str_v("disarmed")),
                    ("wall_ms".to_string(), Value::Num(12.5)),
                    (
                        "references".to_string(),
                        Value::Seq(vec![Value::Map(vec![
                            ("matrix".to_string(), str_v("m0")),
                            ("status".to_string(), str_v("ok")),
                            ("from_store".to_string(), Value::Bool(false)),
                            ("wall_ms".to_string(), Value::Num(3.25)),
                        ])]),
                    ),
                    ("cells".to_string(), Value::Seq(vec![])),
                    ("store".to_string(), Value::Null),
                    ("session".to_string(), counters(&[("session.cell.computed", 1)])),
                    (
                        "spans".to_string(),
                        Value::Seq(vec![Value::Map(vec![
                            ("name".to_string(), str_v("store.get")),
                            ("count".to_string(), Value::Num(2.0)),
                            ("total_ns".to_string(), Value::Num(900.0)),
                            ("max_ns".to_string(), Value::Num(600.0)),
                        ])]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn the_tiny_manifest_validates() {
        validate(&tiny_manifest()).unwrap();
    }

    #[test]
    fn validation_rejects_missing_sections_and_wrong_schemas() {
        let Value::Map(mut entries) = tiny_manifest() else { unreachable!() };
        entries.retain(|(k, _)| k != "grid");
        let err = validate(&Value::Map(entries)).unwrap_err();
        assert!(err.contains("grid"), "{err}");

        let mut bad_schema = tiny_manifest();
        if let Value::Map(entries) = &mut bad_schema {
            entries[0].1 = str_v("run_manifest/v0");
        }
        let err = validate(&bad_schema).unwrap_err();
        assert!(err.contains("unknown manifest schema"), "{err}");

        // A session counter section must carry the registry schema tag.
        let mut bad_session = tiny_manifest();
        if let Value::Map(entries) = &mut bad_session {
            let run = entries.iter_mut().find(|(k, _)| k == "run").unwrap();
            if let Value::Map(run_entries) = &mut run.1 {
                let session =
                    run_entries.iter_mut().find(|(k, _)| k == "session").unwrap();
                session.1 = Value::Map(vec![]);
            }
        }
        let err = validate(&bad_session).unwrap_err();
        assert!(err.contains("run.session"), "{err}");
    }

    #[test]
    fn stable_view_drops_exactly_the_run_section() {
        let manifest = tiny_manifest();
        let stable = stable_view(&manifest);
        assert!(stable.get("plan").is_some());
        assert!(stable.get("grid").is_some());
        assert!(stable.get("run").is_none());
        assert_eq!(stable.get("schema").and_then(|v| v.as_str()), Some(RUN_MANIFEST_SCHEMA));
    }

    #[test]
    fn timing_masked_zeroes_ms_ns_and_threads_but_nothing_else() {
        let masked = timing_masked(&tiny_manifest());
        let run = masked.get("run").unwrap();
        assert_eq!(run.get("wall_ms").and_then(|v| v.as_num()), Some(0.0));
        assert_eq!(run.get("threads").and_then(|v| v.as_num()), Some(0.0));
        let reference = &run.get("references").and_then(|v| v.as_seq()).unwrap()[0];
        assert_eq!(reference.get("wall_ms").and_then(|v| v.as_num()), Some(0.0));
        // Non-timing fields survive untouched, including span counts.
        assert_eq!(reference.get("status").and_then(|v| v.as_str()), Some("ok"));
        let span = &run.get("spans").and_then(|v| v.as_seq()).unwrap()[0];
        assert_eq!(span.get("count").and_then(|v| v.as_num()), Some(2.0));
        assert_eq!(span.get("total_ns").and_then(|v| v.as_num()), Some(0.0));
        assert_eq!(span.get("max_ns").and_then(|v| v.as_num()), Some(0.0));
        // Null timing knobs stay null (they are already deterministic).
        assert!(matches!(run.get("cell_deadline_ms"), Some(Value::Null)));

        // Exact-integer timing values (the registry renders UInt now) are
        // masked the same way as float ones.
        let uint_timing = Value::Map(vec![
            ("io_ns".to_string(), Value::UInt(u64::MAX)),
            ("calls".to_string(), Value::UInt(7)),
        ]);
        let masked = timing_masked(&uint_timing);
        assert_eq!(masked.get("io_ns").and_then(|v| v.as_num()), Some(0.0));
        assert_eq!(masked.get("calls").and_then(|v| v.as_u64()), Some(7));
    }
}
