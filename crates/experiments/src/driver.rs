//! The experiment driver: run every format on every matrix of a corpus, in
//! parallel over matrices (MuFoLAB's `Experiments.jl` role).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use lpa_datagen::TestMatrix;
use lpa_store::{ArtifactKind, Store};

use crate::formats::FormatTag;
use crate::outcome::Outcome;
use crate::persist;
use crate::pipeline::{compute_reference, run_format, ExperimentConfig, Reference};

/// All results for one matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixResult {
    pub name: String,
    pub category: String,
    pub n: usize,
    pub nnz: usize,
    /// One outcome per requested format, in the same order as the `formats`
    /// argument of [`run_experiment`].
    pub outcomes: Vec<(FormatTag, Outcome)>,
}

/// Results of a whole experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResults {
    pub formats: Vec<FormatTag>,
    pub matrices: Vec<MatrixResult>,
    /// Matrices skipped because even the double-double reference failed to
    /// converge (mirrors the paper's preparation step discarding such cases).
    pub skipped: Vec<String>,
}

impl ExperimentResults {
    /// All outcomes of one format across the corpus.
    ///
    /// The driver stores each matrix's outcomes in the experiment's format
    /// order, so the format's position in `self.formats` indexes every row
    /// directly — no per-matrix linear scan over the format list. Rows that
    /// don't follow that order (hand-assembled results) fall back to a scan.
    pub fn outcomes_for(&self, format: FormatTag) -> Vec<Outcome> {
        let Some(idx) = self.formats.iter().position(|&f| f == format) else {
            return Vec::new();
        };
        self.matrices
            .iter()
            .filter_map(|m| match m.outcomes.get(idx) {
                Some(&(f, o)) if f == format => Some(o),
                _ => m.outcomes.iter().find(|(f, _)| *f == format).map(|&(_, o)| o),
            })
            .collect()
    }
}

/// Run the experiment over a corpus for the given formats.
///
/// The whole (matrix × format) grid is embarrassingly parallel, so the
/// driver fans out twice:
///
/// 1. one double-double reference solve per matrix (by far the most
///    expensive single run — Dd arithmetic at tolerance 1e-20), computed
///    **once** and shared by every format run of that matrix, and
/// 2. the flattened grid of per-format runs over all matrices whose
///    reference converged, which load-balances far better than one task
///    per matrix (a takum8 LUT run and a posit64 soft-float run differ by
///    orders of magnitude in cost).
///
/// Every run is deterministic (the Arnoldi starting vector comes from a
/// per-run seeded RNG) and results are reassembled in corpus order, so the
/// output — including its serialization — is identical for any thread
/// count; `RAYON_NUM_THREADS=1` reproduces the serial driver exactly.
pub fn run_experiment(
    corpus: &[TestMatrix],
    formats: &[FormatTag],
    cfg: &ExperimentConfig,
) -> ExperimentResults {
    run_experiment_with_store(corpus, formats, cfg, None)
}

/// [`run_experiment`] backed by a persistent artifact store.
///
/// Every reference solve and every (matrix, format) outcome is looked up in
/// `store` before being computed, and computed results are persisted with
/// atomic writes — so a warm rerun performs zero double-double solves, an
/// interrupted run resumes from whatever it already persisted, and
/// concurrent harness processes share one store directory safely. The
/// codec is bit-lossless, which keeps warm results byte-identical to cold
/// ones. Per-kind hit/miss counters accumulate on `store.stats()`.
///
/// A failed reference is persisted too (as an explicit sentinel): warm runs
/// skip the doomed, expensive Dd solve instead of retrying it.
pub fn run_experiment_with_store(
    corpus: &[TestMatrix],
    formats: &[FormatTag],
    cfg: &ExperimentConfig,
    store: Option<&Store>,
) -> ExperimentResults {
    let references: Vec<Option<Reference>> = corpus
        .par_iter()
        .map(|tm| match store {
            None => compute_reference(&tm.matrix, cfg).ok(),
            Some(s) => {
                let key = persist::reference_key(&tm.matrix, cfg);
                let bytes = s
                    .get_or_compute(ArtifactKind::Reference, key, || {
                        persist::encode_reference(&compute_reference(&tm.matrix, cfg).ok())
                    })
                    .expect("store I/O failed while persisting a reference");
                match persist::decode_reference(&bytes) {
                    Ok(r) => r,
                    // Checksum-valid but undecodable: payload schema drift
                    // without a salt bump. Recompute and heal in place
                    // rather than poisoning every future run.
                    Err(_) => {
                        let r = compute_reference(&tm.matrix, cfg).ok();
                        s.put(ArtifactKind::Reference, key, persist::encode_reference(&r))
                            .expect("store I/O failed while healing a reference");
                        r
                    }
                }
            }
        })
        .collect();

    let jobs: Vec<(usize, FormatTag)> = corpus
        .iter()
        .enumerate()
        .filter(|(i, _)| references[*i].is_some())
        .flat_map(|(i, _)| formats.iter().map(move |&f| (i, f)))
        .collect();
    let outcomes: Vec<Outcome> = jobs
        .par_iter()
        .map(|&(i, f)| {
            let reference = references[i].as_ref().expect("only solved matrices are in the grid");
            match store {
                None => run_format(&corpus[i].matrix, reference, f, cfg).outcome,
                Some(s) => {
                    let key = persist::outcome_key(&corpus[i].matrix, f, cfg);
                    let bytes = s
                        .get_or_compute(ArtifactKind::Outcome, key, || {
                            persist::encode_outcome(
                                &run_format(&corpus[i].matrix, reference, f, cfg).outcome,
                            )
                        })
                        .expect("store I/O failed while persisting an outcome");
                    match persist::decode_outcome(&bytes) {
                        Ok(o) => o,
                        // Same healing path as references: recompute and
                        // overwrite the undecodable artifact.
                        Err(_) => {
                            let o = run_format(&corpus[i].matrix, reference, f, cfg).outcome;
                            s.put(ArtifactKind::Outcome, key, persist::encode_outcome(&o))
                                .expect("store I/O failed while healing an outcome");
                            o
                        }
                    }
                }
            }
        })
        .collect();

    // Reassemble in corpus order: jobs were generated matrix-major, so the
    // outcomes of each kept matrix form one contiguous chunk.
    let mut matrices = Vec::new();
    let mut skipped = Vec::new();
    let mut chunks = outcomes.chunks_exact(formats.len().max(1));
    for (tm, reference) in corpus.iter().zip(&references) {
        if reference.is_none() {
            skipped.push(tm.name.clone());
            continue;
        }
        let chunk = if formats.is_empty() {
            &[][..]
        } else {
            chunks.next().expect("one outcome chunk per kept matrix")
        };
        matrices.push(MatrixResult {
            name: tm.name.clone(),
            category: tm.category.clone(),
            n: tm.n(),
            nnz: tm.nnz(),
            outcomes: formats.iter().copied().zip(chunk.iter().copied()).collect(),
        });
    }
    ExperimentResults { formats: formats.to_vec(), matrices, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_datagen::{general_corpus, CorpusConfig};

    #[test]
    fn tiny_experiment_end_to_end() {
        // A handful of small matrices, a couple of formats: the full pipeline
        // must produce an outcome for every (matrix, format) pair.
        let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
            scale: 1,
            size_range: (30, 40),
            ..CorpusConfig::tiny()
        })
        .into_iter()
        .filter(|t| t.category == "lap1d" || t.category == "diagdom")
        .collect();
        assert!(corpus.len() >= 3);
        let formats = [FormatTag::Float64, FormatTag::Takum16, FormatTag::Ofp8E4M3];
        let cfg = ExperimentConfig {
            eigenvalue_count: 4,
            eigenvalue_buffer_count: 2,
            max_restarts: 60,
            ..Default::default()
        };
        let res = run_experiment(&corpus, &formats, &cfg);
        assert_eq!(res.matrices.len() + res.skipped.len(), corpus.len());
        for m in &res.matrices {
            assert_eq!(m.outcomes.len(), 3);
        }
        // float64 should essentially always produce small errors here.
        let f64_outcomes = res.outcomes_for(FormatTag::Float64);
        assert!(!f64_outcomes.is_empty());
        for o in f64_outcomes {
            if let Some(e) = o.errors() {
                assert!(e.eigenvalue_rel < 1e-8);
            }
        }
    }
}
