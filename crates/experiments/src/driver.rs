//! Deprecated free-function entry points, kept for one release as thin
//! shims over the typed [`ExperimentPlan`]/[`Session`] front door in
//! [`crate::session`] (MuFoLAB's `Experiments.jl` role).
//!
//! Both shims build the exact plan their arguments describe, so results —
//! including serialization — are byte-identical to the builder API
//! (test-enforced by `tests/session_api.rs`), and
//! [`crate::persist::CODE_VERSION_SALT`] is unchanged: stores populated
//! through the old functions stay warm under the new one.

use lpa_datagen::TestMatrix;
use lpa_store::Store;

use crate::formats::FormatTag;
use crate::pipeline::ExperimentConfig;
use crate::session::ExperimentPlan;

pub use crate::session::{ExperimentResults, MatrixResult};

/// Run the experiment over a corpus for the given formats.
#[deprecated(
    since = "0.1.0",
    note = "build the run through `ExperimentPlan::over(corpus)` instead"
)]
pub fn run_experiment(
    corpus: &[TestMatrix],
    formats: &[FormatTag],
    cfg: &ExperimentConfig,
) -> ExperimentResults {
    ExperimentPlan::over(corpus).formats(formats).config(cfg.clone()).run()
}

/// [`run_experiment`] backed by a persistent artifact store.
#[deprecated(
    since = "0.1.0",
    note = "build the run through `ExperimentPlan::over(corpus).maybe_store(store)` instead"
)]
pub fn run_experiment_with_store(
    corpus: &[TestMatrix],
    formats: &[FormatTag],
    cfg: &ExperimentConfig,
    store: Option<&Store>,
) -> ExperimentResults {
    ExperimentPlan::over(corpus).formats(formats).config(cfg.clone()).maybe_store(store).run()
}
