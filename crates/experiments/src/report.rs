//! Post-processing: cumulative error distributions (the quantity plotted in
//! every figure of the paper), CSV emission and a small ASCII rendering for
//! terminal inspection.

use std::io::Write;

use crate::session::ExperimentResults;
use crate::formats::FormatTag;
use crate::outcome::Outcome;

/// The cumulative error distribution of one format on one metric: the sorted
/// relative errors plus the counts of the two failure modes.
#[derive(Clone, Debug)]
pub struct CumulativeDistribution {
    pub format: FormatTag,
    /// Sorted relative errors (ascending) of the converged runs.
    pub sorted_errors: Vec<f64>,
    /// Runs where the Arnoldi method did not converge (`∞ω`).
    pub not_converged: usize,
    /// Runs where the matrix exceeded the format's dynamic range (`∞σ`).
    pub range_exceeded: usize,
    /// Runs that panicked and were isolated by the driver (per-run
    /// accidents, never persisted; non-zero only on degraded grids).
    pub crashed: usize,
    /// Runs that hit the cooperative cell deadline.
    pub timed_out: usize,
    /// Total number of runs.
    pub total: usize,
}

/// Which error metric to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    Eigenvalues,
    Eigenvectors,
}

impl Metric {
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Eigenvalues => "eigenvalues",
            Metric::Eigenvectors => "eigenvectors",
        }
    }
}

/// Build the cumulative error distribution of a format (one curve of a paper
/// figure).
pub fn cumulative_distribution(
    results: &ExperimentResults,
    format: FormatTag,
    metric: Metric,
) -> CumulativeDistribution {
    let outcomes = results.outcomes_for(format);
    let total = outcomes.len();
    let mut errors = Vec::new();
    let mut not_converged = 0;
    let mut range_exceeded = 0;
    let mut crashed = 0;
    let mut timed_out = 0;
    for o in outcomes {
        match o {
            Outcome::Errors(e) => errors.push(match metric {
                Metric::Eigenvalues => e.eigenvalue_rel,
                Metric::Eigenvectors => e.eigenvector_rel,
            }),
            Outcome::NotConverged => not_converged += 1,
            Outcome::RangeExceeded => range_exceeded += 1,
            Outcome::Crashed { .. } => crashed += 1,
            Outcome::TimedOut => timed_out += 1,
        }
    }
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    CumulativeDistribution {
        format,
        sorted_errors: errors,
        not_converged,
        range_exceeded,
        crashed,
        timed_out,
        total,
    }
}

impl CumulativeDistribution {
    /// log10 of the error at a percentile of all runs (failures count as the
    /// top of the distribution), `None` when the percentile falls into the
    /// failure region.
    pub fn log10_at_percentile(&self, pct: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let idx = ((pct / 100.0) * self.total as f64).floor() as usize;
        if idx >= self.sorted_errors.len() {
            return None;
        }
        Some(log10_clamped(self.sorted_errors[idx]))
    }

    /// Median log10 relative error of the converged runs.
    pub fn median_log10(&self) -> Option<f64> {
        if self.sorted_errors.is_empty() {
            return None;
        }
        Some(log10_clamped(self.sorted_errors[self.sorted_errors.len() / 2]))
    }

    /// Fraction of runs that produced a usable (converged, in-range) result.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sorted_errors.len() as f64 / self.total as f64
        }
    }
}

/// Clamp log10 so exact-zero errors remain plottable (the paper's y axes
/// bottom out around -40).
pub fn log10_clamped(x: f64) -> f64 {
    if x <= 0.0 {
        -40.0
    } else {
        x.log10().max(-40.0)
    }
}

/// Write one figure's data as CSV: one row per (format, run index), columns
/// `format,metric,fraction,log10_relative_error`, plus failure counts.
pub fn write_figure_csv<W: Write>(
    mut w: W,
    results: &ExperimentResults,
    formats: &[FormatTag],
    metric: Metric,
) -> std::io::Result<()> {
    writeln!(w, "format,metric,fraction,log10_relative_error")?;
    for &f in formats {
        let dist = cumulative_distribution(results, f, metric);
        let n = dist.total.max(1);
        for (i, e) in dist.sorted_errors.iter().enumerate() {
            writeln!(
                w,
                "{},{},{:.4},{:.6}",
                f.name(),
                metric.name(),
                (i + 1) as f64 / n as f64,
                log10_clamped(*e)
            )?;
        }
        writeln!(
            w,
            "# {} not_converged={} range_exceeded={} crashed={} timed_out={} total={}",
            f.name(),
            dist.not_converged,
            dist.range_exceeded,
            dist.crashed,
            dist.timed_out,
            dist.total
        )?;
    }
    Ok(())
}

/// Render one figure row (a set of formats, one metric) as a compact text
/// table: percentiles of log10 relative error plus failure counts, which is
/// what EXPERIMENTS.md records against the paper's plots.
pub fn format_summary_table(
    results: &ExperimentResults,
    formats: &[FormatTag],
    metric: Metric,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}\n",
        "format", "p25", "p50", "p75", "p95", "ok", "inf_w", "inf_s"
    ));
    for &f in formats {
        let d = cumulative_distribution(results, f, metric);
        let fmt_pct = |p: f64| -> String {
            match d.log10_at_percentile(p) {
                Some(v) => format!("{v:8.2}"),
                None => format!("{:>8}", "inf"),
            }
        };
        out.push_str(&format!(
            "{:<12} {} {} {} {} {:>6} {:>6} {:>6}\n",
            f.name(),
            fmt_pct(25.0),
            fmt_pct(50.0),
            fmt_pct(75.0),
            fmt_pct(95.0),
            d.sorted_errors.len(),
            d.not_converged,
            d.range_exceeded
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MatrixResult;
    use crate::outcome::{EigenErrors, Outcome};

    fn fake_results() -> ExperimentResults {
        let formats = vec![FormatTag::Float64, FormatTag::Ofp8E4M3];
        let mut matrices = Vec::new();
        for i in 0..10usize {
            let e64 = EigenErrors {
                eigenvalue_rel: 1e-14 * (i + 1) as f64,
                eigenvector_rel: 1e-8 * (i + 1) as f64,
            };
            let o8 = if i < 3 {
                Outcome::RangeExceeded
            } else if i < 5 {
                Outcome::NotConverged
            } else {
                Outcome::Errors(EigenErrors { eigenvalue_rel: 0.1 * i as f64, eigenvector_rel: 0.5 })
            };
            matrices.push(MatrixResult {
                name: format!("m{i}"),
                category: "test".into(),
                n: 10,
                nnz: 20,
                outcomes: vec![(FormatTag::Float64, Outcome::Errors(e64)), (FormatTag::Ofp8E4M3, o8)],
            });
        }
        ExperimentResults { formats, matrices, skipped: vec![], crashed: vec![] }
    }

    #[test]
    fn distribution_counts_failures() {
        let r = fake_results();
        let d = cumulative_distribution(&r, FormatTag::Ofp8E4M3, Metric::Eigenvalues);
        assert_eq!(d.total, 10);
        assert_eq!(d.range_exceeded, 3);
        assert_eq!(d.not_converged, 2);
        assert_eq!(d.sorted_errors.len(), 5);
        assert!(d.success_rate() < 0.51);
        let d64 = cumulative_distribution(&r, FormatTag::Float64, Metric::Eigenvalues);
        assert_eq!(d64.sorted_errors.len(), 10);
        assert!(d64.median_log10().unwrap() < -13.0);
        // Percentile 99 of the OFP8 distribution falls into the failure zone.
        assert!(d.log10_at_percentile(99.0).is_none());
        assert!(d.log10_at_percentile(10.0).is_some());
    }

    #[test]
    fn csv_and_table_render() {
        let r = fake_results();
        let mut buf = Vec::new();
        write_figure_csv(&mut buf, &r, &[FormatTag::Float64, FormatTag::Ofp8E4M3], Metric::Eigenvalues)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("format,metric,fraction"));
        assert!(text.contains("OFP8 E4M3"));
        assert!(text.contains("range_exceeded=3"));
        let table = format_summary_table(&r, &[FormatTag::Float64, FormatTag::Ofp8E4M3], Metric::Eigenvectors);
        assert!(table.contains("float64"));
        assert!(table.contains("inf_s"));
    }

    #[test]
    fn ephemeral_outcomes_are_counted_separately() {
        let mut r = fake_results();
        // Degrade two cells of the OFP8 column in place.
        r.matrices[0].outcomes[1] = (FormatTag::Ofp8E4M3, Outcome::Crashed { reason: "boom".into() });
        r.matrices[1].outcomes[1] = (FormatTag::Ofp8E4M3, Outcome::TimedOut);
        let d = cumulative_distribution(&r, FormatTag::Ofp8E4M3, Metric::Eigenvalues);
        assert_eq!(d.crashed, 1);
        assert_eq!(d.timed_out, 1);
        assert_eq!(d.total, 10);
        // Crashed/timed-out runs are failures, not converged results.
        assert!(d.success_rate() < 0.51);
        let mut buf = Vec::new();
        write_figure_csv(&mut buf, &r, &[FormatTag::Ofp8E4M3], Metric::Eigenvalues).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("crashed=1 timed_out=1"));
    }

    #[test]
    fn log10_clamping() {
        assert_eq!(log10_clamped(0.0), -40.0);
        assert_eq!(log10_clamped(1e-50), -40.0);
        assert!((log10_clamped(1e-3) + 3.0).abs() < 1e-12);
    }
}
