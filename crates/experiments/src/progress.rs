//! Streaming progress consumers beyond the stderr logger: ready-made
//! [`ProgressObserver`](crate::ProgressObserver) implementations that turn
//! the deterministic event stream into machine-readable artifacts while a
//! grid runs.
//!
//! [`CsvProgress`] writes one CSV row per event — references as they
//! resolve, matrices as they are skipped, and one row per (matrix, format)
//! outcome — to any `Write` sink.  Because the session's sequencer releases
//! events in corpus/grid order for every thread count, the produced CSV is
//! byte-identical for any parallelism (test-enforced by
//! `tests/csv_progress.rs`): an incremental CSV is as reproducible as the
//! final results.

use std::io::Write;
use std::sync::Mutex;

use crate::session::{ProgressEvent, ProgressObserver};

/// A [`ProgressObserver`] that streams incremental CSV rows.
///
/// Columns: `event,index,matrix,format,from_store` with `event` one of
/// `reference`, `skipped`, `outcome`, `crashed` (the `crashed` row covers
/// isolated panics and cell deadlines; its `format` column is empty for
/// reference-stage failures).  The header is written on the first
/// `GridStarted`; `GridFinished` flushes the sink, so a harness that is
/// killed mid-run still leaves every completed row on disk.  Matrix names
/// in this workspace never contain commas or quotes, so rows are emitted
/// verbatim.
pub struct CsvProgress<W: Write + Send> {
    state: Mutex<CsvState<W>>,
}

struct CsvState<W> {
    writer: W,
    header_written: bool,
}

impl<W: Write + Send> CsvProgress<W> {
    /// Stream CSV rows into `writer`.
    pub fn new(writer: W) -> CsvProgress<W> {
        CsvProgress { state: Mutex::new(CsvState { writer, header_written: false }) }
    }

    /// Consume the observer and return the sink.
    pub fn into_inner(self) -> W {
        self.state.into_inner().expect("csv progress poisoned").writer
    }
}

impl CsvProgress<Vec<u8>> {
    /// An in-memory sink (tests, post-run inspection).
    pub fn buffered() -> CsvProgress<Vec<u8>> {
        CsvProgress::new(Vec::new())
    }
}

impl<W: Write + Send> ProgressObserver for CsvProgress<W> {
    fn on_event(&self, event: &ProgressEvent) {
        let mut state = self.state.lock().expect("csv progress poisoned");
        if !state.header_written {
            if let ProgressEvent::GridStarted { .. } = event {
                writeln!(state.writer, "event,index,matrix,format,from_store")
                    .expect("write csv header");
                state.header_written = true;
            }
        }
        let row = match event {
            ProgressEvent::ReferenceComputed { index, matrix, from_store } => {
                Some(format!("reference,{index},{matrix},,{from_store}"))
            }
            ProgressEvent::MatrixSkipped { index, matrix } => {
                Some(format!("skipped,{index},{matrix},,"))
            }
            ProgressEvent::OutcomeComputed { index, matrix, format, from_store } => {
                Some(format!("outcome,{index},{matrix},{},{from_store}", format.name()))
            }
            ProgressEvent::CellFailed { index, matrix, format, .. } => {
                let fmt = format.map(|f| f.name()).unwrap_or("");
                Some(format!("crashed,{index},{matrix},{fmt},"))
            }
            ProgressEvent::GridFinished { .. } => {
                state.writer.flush().expect("flush csv progress");
                None
            }
            _ => None,
        };
        if let Some(row) = row {
            writeln!(state.writer, "{row}").expect("write csv row");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::FormatTag;

    #[test]
    fn rows_follow_the_event_stream() {
        let csv = CsvProgress::buffered();
        let events = [
            ProgressEvent::GridStarted { matrices: 2, formats: 1 },
            ProgressEvent::ReferenceStarted { index: 0, matrix: "a".into() },
            ProgressEvent::ReferenceComputed { index: 0, matrix: "a".into(), from_store: false },
            ProgressEvent::MatrixSkipped { index: 1, matrix: "b".into() },
            ProgressEvent::OutcomeComputed {
                index: 0,
                matrix: "a".into(),
                format: FormatTag::Posit32,
                from_store: true,
            },
            ProgressEvent::CellFailed {
                index: 0,
                matrix: "a".into(),
                format: Some(FormatTag::Posit16),
                reason: "injected fault: solver.panic".into(),
            },
            ProgressEvent::GridFinished { matrices: 1, skipped: 1, outcomes: 1 },
        ];
        for e in &events {
            csv.on_event(e);
        }
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert_eq!(
            text,
            "event,index,matrix,format,from_store\n\
             reference,0,a,,false\n\
             skipped,1,b,,\n\
             outcome,0,a,posit32,true\n\
             crashed,0,a,posit16,\n"
        );
    }
}
