//! The registry of number formats under evaluation, grouped by bit width as
//! in the paper's figures (one row of plots per width).

use serde::{Deserialize, Serialize};

/// Every number format evaluated by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FormatTag {
    Ofp8E4M3,
    Ofp8E5M2,
    Posit8,
    Takum8,
    Float16,
    Bfloat16,
    Posit16,
    Takum16,
    Float32,
    Posit32,
    Takum32,
    Float64,
    Posit64,
    Takum64,
}

impl FormatTag {
    /// Name as used in the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            FormatTag::Ofp8E4M3 => "OFP8 E4M3",
            FormatTag::Ofp8E5M2 => "OFP8 E5M2",
            FormatTag::Posit8 => "posit8",
            FormatTag::Takum8 => "takum8",
            FormatTag::Float16 => "float16",
            FormatTag::Bfloat16 => "bfloat16",
            FormatTag::Posit16 => "posit16",
            FormatTag::Takum16 => "takum16",
            FormatTag::Float32 => "float32",
            FormatTag::Posit32 => "posit32",
            FormatTag::Takum32 => "takum32",
            FormatTag::Float64 => "float64",
            FormatTag::Posit64 => "posit64",
            FormatTag::Takum64 => "takum64",
        }
    }

    /// Parse a CLI/protocol spelling back into a tag: the [`Self::name`]
    /// string, compared case-insensitively with spaces, `-` and `_`
    /// ignored — so `"posit16"`, `"OFP8 E4M3"` and `"ofp8-e4m3"` all
    /// resolve. `None` for anything else.
    pub fn parse(spelling: &str) -> Option<FormatTag> {
        fn fold(s: &str) -> String {
            s.chars()
                .filter(|c| !c.is_whitespace() && *c != '-' && *c != '_')
                .map(|c| c.to_ascii_lowercase())
                .collect()
        }
        let wanted = fold(spelling);
        FormatTag::all().into_iter().find(|f| fold(f.name()) == wanted)
    }

    /// Storage width in bits.
    pub fn bits(&self) -> u32 {
        match self {
            FormatTag::Ofp8E4M3 | FormatTag::Ofp8E5M2 | FormatTag::Posit8 | FormatTag::Takum8 => 8,
            FormatTag::Float16 | FormatTag::Bfloat16 | FormatTag::Posit16 | FormatTag::Takum16 => {
                16
            }
            FormatTag::Float32 | FormatTag::Posit32 | FormatTag::Takum32 => 32,
            FormatTag::Float64 | FormatTag::Posit64 | FormatTag::Takum64 => 64,
        }
    }

    /// The relative convergence tolerance the paper assigns to this width
    /// (1e-2 / 1e-4 / 1e-8 / 1e-12 for 8/16/32/64 bits).
    pub fn tolerance(&self) -> f64 {
        match self.bits() {
            8 => 1e-2,
            16 => 1e-4,
            32 => 1e-8,
            _ => 1e-12,
        }
    }

    /// All formats, in the order the paper groups them.
    pub fn all() -> Vec<FormatTag> {
        use FormatTag::*;
        vec![
            Ofp8E4M3, Ofp8E5M2, Posit8, Takum8, Float16, Bfloat16, Posit16, Takum16, Float32,
            Posit32, Takum32, Float64, Posit64, Takum64,
        ]
    }

    /// The formats of one bit width (one row of a paper figure).
    pub fn with_bits(bits: u32) -> Vec<FormatTag> {
        Self::all().into_iter().filter(|f| f.bits() == bits).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_matches_the_paper() {
        assert_eq!(FormatTag::all().len(), 14);
        assert_eq!(FormatTag::with_bits(8).len(), 4);
        assert_eq!(FormatTag::with_bits(16).len(), 4);
        assert_eq!(FormatTag::with_bits(32).len(), 3);
        assert_eq!(FormatTag::with_bits(64).len(), 3);
        assert_eq!(FormatTag::Posit16.tolerance(), 1e-4);
        assert_eq!(FormatTag::Float64.tolerance(), 1e-12);
        assert_eq!(FormatTag::Ofp8E4M3.tolerance(), 1e-2);
        assert_eq!(FormatTag::Bfloat16.name(), "bfloat16");
    }

    #[test]
    fn every_name_round_trips_through_parse() {
        for format in FormatTag::all() {
            assert_eq!(FormatTag::parse(format.name()), Some(format), "{}", format.name());
        }
        assert_eq!(FormatTag::parse("OFP8 E4M3"), Some(FormatTag::Ofp8E4M3));
        assert_eq!(FormatTag::parse("ofp8-e5m2"), Some(FormatTag::Ofp8E5M2));
        assert_eq!(FormatTag::parse("Posit_16"), Some(FormatTag::Posit16));
        assert_eq!(FormatTag::parse("float128"), None);
    }
}
