//! The typed front door of the harness: [`ExperimentPlan`] → [`Session`] →
//! [`ExperimentResults`], with streaming [`ProgressEvent`]s.
//!
//! Every consumer of the experiment grid — the figure/table benches, the
//! `reproduce` binary, the examples, the integration tests — builds its run
//! through an [`ExperimentPlan`]: a builder that collects the corpus, the
//! format list, the [`ExperimentConfig`], an optional persistent
//! [`Store`], an optional 16-bit arithmetic tier override and an optional
//! thread budget, and resolves into a [`Session`] whose [`Session::run`]
//! produces exactly the same byte-identical, thread-count-independent
//! [`ExperimentResults`] the old free functions did.
//!
//! ```no_run
//! use lpa_datagen::{general_corpus, CorpusConfig};
//! use lpa_experiments::{ExperimentConfig, ExperimentPlan, FormatTag, StderrProgress};
//!
//! let corpus = general_corpus(&CorpusConfig::tiny());
//! let progress = StderrProgress::new("demo");
//! let results = ExperimentPlan::over(&corpus)
//!     .formats(&FormatTag::all())
//!     .config(ExperimentConfig::default())
//!     .threads(4)
//!     .observer(&progress)
//!     .session()
//!     .run();
//! println!("{} matrices, {} skipped", results.matrices.len(), results.skipped.len());
//! ```
//!
//! ## Progress events
//!
//! A [`ProgressObserver`] registered on the plan receives one event stream
//! per run: grid start, per-matrix reference solves (with a served-from-store
//! flag), skipped matrices, per-(matrix, format) outcomes (computed vs store
//! hit), and a final grid summary. Long runs can stream logs, progress bars
//! or incremental CSV instead of being silent for the whole sweep.
//!
//! Observers never affect the computation: results are byte-identical with
//! or without one. Event *order* is deterministic too — worker threads hand
//! their events to a sequencer that releases them in corpus/grid order, so
//! the stream for a given plan is identical for any thread count
//! (test-enforced by `tests/session_api.rs`). Callbacks run under the
//! sequencer lock, so an observer must not call back into the session and
//! should return quickly.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use lpa_arith::{
    dec16_tier, force_dec16_tier, force_kernel_batch, force_kernel_lanes, kernel_batch,
    kernel_lanes, Dec16Tier, KernelBatch, KernelLanes,
};
use lpa_datagen::TestMatrix;
use lpa_store::{ArtifactKind, Store};

use serde::Value;

use crate::formats::FormatTag;
use crate::manifest::{RunManifest, RUN_MANIFEST_SCHEMA};
use crate::outcome::Outcome;
use crate::persist;
use crate::pipeline::{compute_reference, run_format, ExperimentConfig, Reference};

/// All results for one matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixResult {
    pub name: String,
    pub category: String,
    pub n: usize,
    pub nnz: usize,
    /// One outcome per requested format, in the same order as the plan's
    /// format list.
    pub outcomes: Vec<(FormatTag, Outcome)>,
}

/// Results of a whole experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResults {
    pub formats: Vec<FormatTag>,
    pub matrices: Vec<MatrixResult>,
    /// Matrices skipped because even the double-double reference failed to
    /// converge (mirrors the paper's preparation step discarding such cases).
    pub skipped: Vec<String>,
    /// Matrices dropped because their reference solve crashed or timed out
    /// this run. Unlike `skipped` this is a per-run accident, not a fact
    /// about the matrix: nothing is persisted and a rerun retries them.
    pub crashed: Vec<String>,
}

impl ExperimentResults {
    /// Number of (matrix, format) cells whose outcome is a per-run failure
    /// ([`Outcome::Crashed`] or [`Outcome::TimedOut`]).
    pub fn crashed_cells(&self) -> usize {
        self.matrices
            .iter()
            .flat_map(|m| m.outcomes.iter())
            .filter(|(_, o)| o.is_ephemeral())
            .count()
    }

    /// True when this run completed with isolated failures: results are
    /// usable but incomplete, and a rerun will retry the failed cells.
    pub fn is_degraded(&self) -> bool {
        !self.crashed.is_empty() || self.crashed_cells() > 0
    }

    /// All outcomes of one format across the corpus.
    ///
    /// The session stores each matrix's outcomes in the experiment's format
    /// order, so the format's position in `self.formats` indexes every row
    /// directly — no per-matrix linear scan over the format list. Rows that
    /// don't follow that order (hand-assembled results) fall back to a scan.
    pub fn outcomes_for(&self, format: FormatTag) -> Vec<Outcome> {
        let Some(idx) = self.formats.iter().position(|&f| f == format) else {
            return Vec::new();
        };
        self.matrices
            .iter()
            .filter_map(|m| match m.outcomes.get(idx) {
                Some((f, o)) if *f == format => Some(o.clone()),
                _ => m.outcomes.iter().find(|(f, _)| *f == format).map(|(_, o)| o.clone()),
            })
            .collect()
    }
}

/// One progress event of a running [`Session`] (see the module docs for
/// ordering guarantees).
#[derive(Clone, Debug, PartialEq)]
pub enum ProgressEvent {
    /// The grid is about to run: `matrices × formats` jobs at most.
    GridStarted { matrices: usize, formats: usize },
    /// The reference solve of matrix `index` began resolving (lookup or
    /// double-double solve).
    ReferenceStarted { index: usize, matrix: String },
    /// The reference of matrix `index` is available; `from_store` says it
    /// was served from the persistent store instead of being computed.
    ReferenceComputed { index: usize, matrix: String, from_store: bool },
    /// Matrix `index` is skipped: even the double-double reference failed
    /// to converge (the paper's preparation step discards such cases).
    MatrixSkipped { index: usize, matrix: String },
    /// The outcome of (matrix `index`, `format`) is available; `from_store`
    /// distinguishes a store hit from a fresh solve.
    OutcomeComputed { index: usize, matrix: String, format: FormatTag, from_store: bool },
    /// A cell crashed or timed out and was isolated: the grid continues
    /// degraded. `format: None` means the matrix's *reference* solve failed
    /// (every cell of that matrix is lost this run); `Some(f)` is a single
    /// (matrix, format) cell. Emitted *instead of* the corresponding
    /// `ReferenceComputed`/`MatrixSkipped`/`OutcomeComputed` event.
    CellFailed { index: usize, matrix: String, format: Option<FormatTag>, reason: String },
    /// The whole grid finished and results are assembled.
    GridFinished { matrices: usize, skipped: usize, outcomes: usize },
}

/// Receives the [`ProgressEvent`] stream of a running [`Session`].
///
/// Implementations must be `Sync` — events originate on worker threads —
/// and cheap: callbacks run under the event sequencer's lock (that is what
/// makes the stream order deterministic), so a slow observer stalls
/// delivery, and re-entering the session from a callback deadlocks.
pub trait ProgressObserver: Sync {
    fn on_event(&self, event: &ProgressEvent);
}

/// A ready-made [`ProgressObserver`] that streams compact per-reference
/// progress lines (and a final summary) to stderr — stdout stays reserved
/// for the harnesses' machine-readable output.
pub struct StderrProgress {
    label: String,
    total: std::sync::atomic::AtomicUsize,
    seen: std::sync::atomic::AtomicUsize,
    outcome_hits: std::sync::atomic::AtomicUsize,
}

impl StderrProgress {
    pub fn new(label: impl Into<String>) -> StderrProgress {
        StderrProgress {
            label: label.into(),
            total: Default::default(),
            seen: Default::default(),
            outcome_hits: Default::default(),
        }
    }
}

impl ProgressObserver for StderrProgress {
    fn on_event(&self, event: &ProgressEvent) {
        use std::sync::atomic::Ordering::Relaxed;
        match event {
            ProgressEvent::GridStarted { matrices, formats } => {
                // A new grid resets the counters: one observer may be
                // reused across several sessions.
                self.total.store(*matrices, Relaxed);
                self.seen.store(0, Relaxed);
                self.outcome_hits.store(0, Relaxed);
                eprintln!("[{}] grid started: {matrices} matrices x {formats} formats", self.label);
            }
            ProgressEvent::ReferenceComputed { matrix, from_store, .. } => {
                let seen = self.seen.fetch_add(1, Relaxed) + 1;
                let total = self.total.load(Relaxed);
                let how = if *from_store { "store" } else { "solved" };
                eprintln!("[{}] reference {seen}/{total} {matrix} ({how})", self.label);
            }
            ProgressEvent::MatrixSkipped { matrix, .. } => {
                let seen = self.seen.fetch_add(1, Relaxed) + 1;
                let total = self.total.load(Relaxed);
                eprintln!(
                    "[{}] reference {seen}/{total} {matrix} (skipped: reference failed)",
                    self.label
                );
            }
            ProgressEvent::OutcomeComputed { from_store: true, .. } => {
                self.outcome_hits.fetch_add(1, Relaxed);
            }
            ProgressEvent::CellFailed { matrix, format, reason, .. } => match format {
                Some(f) => {
                    eprintln!("[{}] cell FAILED {matrix} {f:?}: {reason}", self.label);
                }
                None => {
                    let seen = self.seen.fetch_add(1, Relaxed) + 1;
                    let total = self.total.load(Relaxed);
                    eprintln!(
                        "[{}] reference {seen}/{total} {matrix} FAILED: {reason}",
                        self.label
                    );
                }
            },
            ProgressEvent::GridFinished { matrices, skipped, outcomes } => {
                eprintln!(
                    "[{}] grid finished: {matrices} matrices, {skipped} skipped, {outcomes} outcomes ({} from store)",
                    self.label,
                    self.outcome_hits.load(Relaxed)
                );
            }
            _ => {}
        }
    }
}

/// Builder for one experiment run: the single front door of the harness.
///
/// Knobs, in the order long runs usually set them: corpus → formats →
/// [`ExperimentConfig`] → persistent store → 16-bit arithmetic tier →
/// thread budget → progress observer. Every knob except the corpus has a
/// default (all 14 formats, the paper's config, no store, the ambient tier
/// and thread count, no observer).
#[derive(Clone)]
pub struct ExperimentPlan<'a> {
    corpus: &'a [TestMatrix],
    formats: Vec<FormatTag>,
    config: ExperimentConfig,
    store: Option<&'a Store>,
    arith_tier: Option<Dec16Tier>,
    kernel_batch: Option<KernelBatch>,
    kernel_lanes: Option<KernelLanes>,
    threads: Option<usize>,
    retry: Option<u32>,
    cell_deadline: Option<Duration>,
    observability: Option<bool>,
    manifest_out: Option<PathBuf>,
    observer: Option<&'a dyn ProgressObserver>,
}

impl<'a> ExperimentPlan<'a> {
    /// Start a plan over a corpus of test matrices.
    pub fn over(corpus: &'a [TestMatrix]) -> ExperimentPlan<'a> {
        ExperimentPlan {
            corpus,
            formats: FormatTag::all(),
            config: ExperimentConfig::default(),
            store: None,
            arith_tier: None,
            kernel_batch: None,
            kernel_lanes: None,
            threads: None,
            retry: None,
            cell_deadline: None,
            observability: None,
            manifest_out: None,
            observer: None,
        }
    }

    /// The number formats to run (default: all 14 of the paper).
    pub fn formats(mut self, formats: &[FormatTag]) -> Self {
        self.formats = formats.to_vec();
        self
    }

    /// The solver/matching parameters (default: [`ExperimentConfig::default`]).
    pub fn config(mut self, config: ExperimentConfig) -> Self {
        self.config = config;
        self
    }

    /// Back the run with a persistent artifact store: every reference and
    /// outcome is looked up before being computed, and computed results are
    /// persisted (warm starts, resumable runs, cross-process sharing).
    pub fn store(self, store: &'a Store) -> Self {
        self.maybe_store(Some(store))
    }

    /// [`ExperimentPlan::store`] with an optional handle, for call sites
    /// whose store is itself configured (`LPA_STORE`, `--store`).
    pub fn maybe_store(mut self, store: Option<&'a Store>) -> Self {
        self.store = store;
        self
    }

    /// Force the 16-bit arithmetic tier for the duration of the run
    /// (default: the ambient tier — `LPA_ARITH_TIER` or unpack). Both tiers
    /// are bit-identical, so this is a verification/debugging knob, not a
    /// semantic one.
    pub fn arith_tier(mut self, tier: Dec16Tier) -> Self {
        self.arith_tier = Some(tier);
        self
    }

    /// Force the batch kernel engine on or off for the duration of the run
    /// (default: the ambient engine — `LPA_KERNEL_BATCH` or batch). Both
    /// engines are bit-identical, so — like
    /// [`ExperimentPlan::arith_tier`] — this is a verification/benchmark
    /// knob, not a semantic one.
    pub fn kernel_batch(mut self, engine: KernelBatch) -> Self {
        self.kernel_batch = Some(engine);
        self
    }

    /// Force the planes-kernel lane width for the duration of the run
    /// (default: the ambient width — `LPA_KERNEL_LANES` or 1). Every width
    /// computes identical bits, so — like
    /// [`ExperimentPlan::kernel_batch`] — this is a verification/benchmark
    /// knob, not a semantic one.
    pub fn kernel_lanes(mut self, lanes: KernelLanes) -> Self {
        self.kernel_lanes = Some(lanes);
        self
    }

    /// Cap the run at `n` worker threads (default: `RAYON_NUM_THREADS`,
    /// else all cores). Results are byte-identical for any value.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Retry budget for transient store I/O failures (reads and writes
    /// retried with exponential backoff; default: the store's own default
    /// of 2). Only meaningful when a store is attached; restored to the
    /// store's previous budget when the run ends.
    pub fn retry(mut self, retries: u32) -> Self {
        self.retry = Some(retries);
        self
    }

    /// Opt-in wall-clock budget per solve (default: off). A cell past its
    /// deadline yields [`Outcome::TimedOut`] — reported, **never
    /// persisted** — at Arnoldi-expansion-step granularity, so the grid
    /// survives pathological cells without losing cache validity.
    pub fn cell_deadline(mut self, deadline: Duration) -> Self {
        self.cell_deadline = Some(deadline);
        self
    }

    /// Arm (or disarm) the `lpa-obs` tracing spans for the duration of the
    /// run (default: the ambient gate — `LPA_OBS` or disarmed), with the
    /// previous state restored when the run ends, like
    /// [`ExperimentPlan::arith_tier`]. Spans never affect computed results;
    /// this only selects whether the session records them.
    pub fn observability(mut self, armed: bool) -> Self {
        self.observability = Some(armed);
        self
    }

    /// Write the run's `run_manifest/v1` JSON artifact to `path` when the
    /// session finishes (default: no artifact). The manifest is also
    /// returned by [`Session::run_with_manifest`] regardless of this knob.
    pub fn manifest_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest_out = Some(path.into());
        self
    }

    /// Stream [`ProgressEvent`]s of the run to `observer`.
    pub fn observer(mut self, observer: &'a dyn ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Apply resolved harness settings (the CLI > environment > default
    /// layer, see [`crate::harness`]) to the plan's tier and thread knobs.
    /// The store is I/O and stays explicit: open it with
    /// [`crate::harness::HarnessSettings::open_store`] and pass it to
    /// [`ExperimentPlan::maybe_store`].
    pub fn apply(mut self, settings: &crate::harness::HarnessSettings) -> Self {
        if let Some(tier) = settings.arith_tier {
            self = self.arith_tier(tier);
        }
        if let Some(engine) = settings.kernel_batch {
            self = self.kernel_batch(engine);
        }
        if let Some(lanes) = settings.kernel_lanes {
            self = self.kernel_lanes(lanes);
        }
        if let Some(threads) = settings.threads {
            self = self.threads(threads);
        }
        if let Some(retries) = settings.retry {
            self = self.retry(retries);
        }
        if let Some(deadline) = settings.cell_deadline {
            self = self.cell_deadline(deadline);
        }
        if let Some(armed) = settings.observability {
            self = self.observability(armed);
        }
        if let Some(path) = &settings.manifest_out {
            self = self.manifest_out(path.clone());
        }
        self
    }

    /// Resolve the plan into a runnable [`Session`].
    pub fn session(self) -> Session<'a> {
        Session { plan: self }
    }

    /// Shorthand for `.session().run()`.
    pub fn run(self) -> ExperimentResults {
        self.session().run()
    }
}

/// A resolved, runnable experiment: produced by [`ExperimentPlan::session`].
pub struct Session<'a> {
    plan: ExperimentPlan<'a>,
}

impl Session<'_> {
    /// The formats this session will run.
    pub fn formats(&self) -> &[FormatTag] {
        &self.plan.formats
    }

    /// The solver/matching configuration this session will run with.
    pub fn config(&self) -> &ExperimentConfig {
        &self.plan.config
    }

    /// The worker-thread budget the grid will use.
    pub fn threads(&self) -> usize {
        self.plan.threads.unwrap_or_else(rayon::current_num_threads)
    }

    /// Run the whole (matrix × format) grid.
    ///
    /// The fan-out is the two-stage one the free functions used: one
    /// double-double reference solve per matrix (computed once and shared
    /// by every format run of that matrix), then the flattened grid of
    /// per-format runs over all matrices whose reference converged. Every
    /// run is deterministic (the Arnoldi starting vector comes from a
    /// per-run seeded RNG) and results are reassembled in corpus order, so
    /// the output — including its serialization — is identical for any
    /// thread count, store state and observer.
    ///
    /// When [`ExperimentPlan::manifest_out`] is set, the run's
    /// `run_manifest/v1` artifact is written there before returning.
    pub fn run(&self) -> ExperimentResults {
        self.run_with_manifest().0
    }

    /// [`Session::run`], also returning the run's manifest (written to the
    /// plan's `manifest_out` path too, when one is set).
    pub fn run_with_manifest(&self) -> (ExperimentResults, RunManifest) {
        let (results, manifest) = self.run_inner();
        if let Some(path) = &self.plan.manifest_out {
            manifest
                .write(path)
                .unwrap_or_else(|e| panic!("manifest {}: {e}", path.display()));
        }
        (results, manifest)
    }

    fn run_inner(&self) -> (ExperimentResults, RunManifest) {
        // Restore guards, outermost first: the obs gate (span recording),
        // the arithmetic tier, the kernel engine and the store's retry
        // budget are all process-/handle-global knobs scoped to this run.
        let _obs = self.plan.observability.map(ObsGuard::force);
        let _tier = self.plan.arith_tier.map(TierGuard::force);
        let _engine = self.plan.kernel_batch.map(BatchGuard::force);
        let _lanes = self.plan.kernel_lanes.map(LanesGuard::force);
        // Scope the I/O retry budget to this run (same restore-guard
        // pattern as the tier/engine knobs — the budget lives on the
        // shared store handle).
        let _retry = match (self.plan.retry, self.plan.store) {
            (Some(retries), Some(store)) => Some(RetryGuard::set(store, retries)),
            _ => None,
        };
        // Pre-run snapshots, so the manifest reports this run's deltas
        // rather than process-lifetime totals.
        let store_before = self.plan.store.map(|s| s.stats().registry().counters_snapshot());
        let spans_before = lpa_obs::span::aggregates();
        let started = Instant::now();
        let grid = match self.plan.threads {
            Some(n) => rayon::with_num_threads(n, || self.run_grid()),
            None => self.run_grid(),
        };
        let wall_ns = started.elapsed().as_nanos() as u64;
        let manifest = self.build_manifest(&grid, wall_ns, store_before, spans_before);
        (grid.results, manifest)
    }

    fn run_grid(&self) -> GridRun {
        let corpus = self.plan.corpus;
        let formats = self.formats();
        // The plan-level deadline overrides the config's own (both are
        // run-scoped knobs; neither enters the persistence key).
        let mut cfg = self.config().clone();
        cfg.cell_deadline = self.plan.cell_deadline.or(cfg.cell_deadline);
        let cfg = &cfg;
        let store = self.plan.store;
        let observer = self.plan.observer;

        emit(
            observer,
            || ProgressEvent::GridStarted { matrices: corpus.len(), formats: formats.len() },
        );

        // Stage 1: one reference per matrix, fanned out over the corpus.
        let slots: Vec<usize> = (0..corpus.len()).collect();
        let sequencer = Sequencer::new(observer);
        let references: Vec<(Result<Option<Reference>, CellError>, bool, u64)> = slots
            .par_iter()
            .map(|&i| {
                let tm = &corpus[i];
                let started = Instant::now();
                let (reference, from_store) = {
                    let _span = lpa_obs::span(lpa_obs::REFERENCE_SOLVE);
                    resolve_reference(tm, cfg, store)
                };
                let wall_ns = started.elapsed().as_nanos() as u64;
                sequencer.submit(i, |events| {
                    events.push(ProgressEvent::ReferenceStarted { index: i, matrix: tm.name.clone() });
                    events.push(match &reference {
                        Ok(Some(_)) => ProgressEvent::ReferenceComputed {
                            index: i,
                            matrix: tm.name.clone(),
                            from_store,
                        },
                        Ok(None) => {
                            ProgressEvent::MatrixSkipped { index: i, matrix: tm.name.clone() }
                        }
                        Err(e) => ProgressEvent::CellFailed {
                            index: i,
                            matrix: tm.name.clone(),
                            format: None,
                            reason: e.describe(),
                        },
                    });
                });
                (reference, from_store, wall_ns)
            })
            .collect();

        // Stage 2: the flattened (kept matrix × format) grid, which
        // load-balances far better than one task per matrix (a takum8 LUT
        // run and a posit64 soft-float run differ by orders of magnitude).
        let jobs: Vec<(usize, FormatTag)> = corpus
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(references[*i].0, Ok(Some(_))))
            .flat_map(|(i, _)| formats.iter().map(move |&f| (i, f)))
            .collect();
        let slots: Vec<usize> = (0..jobs.len()).collect();
        let sequencer = Sequencer::new(observer);
        let outcomes: Vec<(Outcome, bool, u64)> = slots
            .par_iter()
            .map(|&slot| {
                let (i, f) = jobs[slot];
                let reference = match &references[i].0 {
                    Ok(Some(r)) => r,
                    _ => unreachable!("only solved matrices are in the grid"),
                };
                let started = Instant::now();
                let (outcome, from_store) = {
                    let _span = lpa_obs::span(lpa_obs::CELL_SOLVE);
                    resolve_outcome(&corpus[i], reference, f, cfg, store)
                };
                let wall_ns = started.elapsed().as_nanos() as u64;
                sequencer.submit(slot, |events| {
                    events.push(match &outcome {
                        Outcome::Crashed { reason } => ProgressEvent::CellFailed {
                            index: i,
                            matrix: corpus[i].name.clone(),
                            format: Some(f),
                            reason: reason.clone(),
                        },
                        Outcome::TimedOut => ProgressEvent::CellFailed {
                            index: i,
                            matrix: corpus[i].name.clone(),
                            format: Some(f),
                            reason: "cell deadline exceeded".to_string(),
                        },
                        _ => ProgressEvent::OutcomeComputed {
                            index: i,
                            matrix: corpus[i].name.clone(),
                            format: f,
                            from_store,
                        },
                    });
                });
                (outcome, from_store, wall_ns)
            })
            .collect();

        // Reassemble in corpus order: jobs were generated matrix-major, so
        // the outcomes of each kept matrix form one contiguous chunk. The
        // per-reference/per-cell manifest records are built in the same
        // deterministic order (corpus order; cells matrix-major in plan
        // format order).
        let mut matrices = Vec::new();
        let mut skipped = Vec::new();
        let mut crashed = Vec::new();
        let mut ref_records = Vec::with_capacity(corpus.len());
        let mut chunks = outcomes.chunks_exact(formats.len().max(1));
        for (tm, (reference, from_store, wall_ns)) in corpus.iter().zip(&references) {
            let status = match reference {
                Ok(Some(_)) => "solved",
                Ok(None) => "skipped",
                Err(CellError::Crashed(_)) => "crashed",
                Err(CellError::TimedOut) => "timed-out",
            };
            ref_records.push(RefRecord {
                matrix: tm.name.clone(),
                status,
                from_store: *from_store,
                wall_ns: *wall_ns,
            });
            match reference {
                Ok(Some(_)) => {}
                Ok(None) => {
                    skipped.push(tm.name.clone());
                    continue;
                }
                Err(_) => {
                    crashed.push(tm.name.clone());
                    continue;
                }
            }
            let chunk = if formats.is_empty() {
                &[][..]
            } else {
                chunks.next().expect("one outcome chunk per kept matrix")
            };
            matrices.push(MatrixResult {
                name: tm.name.clone(),
                category: tm.category.clone(),
                n: tm.n(),
                nnz: tm.nnz(),
                outcomes: formats
                    .iter()
                    .copied()
                    .zip(chunk.iter().map(|(o, _, _)| o.clone()))
                    .collect(),
            });
        }
        let cell_records = jobs
            .iter()
            .zip(&outcomes)
            .map(|(&(i, f), (outcome, from_store, wall_ns))| CellRecord {
                matrix: corpus[i].name.clone(),
                format: f,
                outcome: outcome.label(),
                from_store: *from_store,
                wall_ns: *wall_ns,
            })
            .collect();
        emit(
            observer,
            || ProgressEvent::GridFinished {
                matrices: matrices.len(),
                skipped: skipped.len(),
                outcomes: outcomes.len(),
            },
        );
        GridRun {
            results: ExperimentResults { formats: formats.to_vec(), matrices, skipped, crashed },
            references: ref_records,
            cells: cell_records,
        }
    }

    /// Assemble the `run_manifest/v1` tree (layout: [`crate::manifest`]).
    ///
    /// The session counters are tallied here from the grid's own records
    /// and the *same values* are added to the process-global `lpa-obs`
    /// registry — one code path, so the registry delta and the manifest's
    /// `session` section agree by construction.
    fn build_manifest(
        &self,
        grid: &GridRun,
        wall_ns: u64,
        store_before: Option<Vec<(String, u64)>>,
        spans_before: Vec<lpa_obs::SpanAggregate>,
    ) -> RunManifest {
        let cfg = self.config();
        let plan = Value::Map(vec![
            (
                "formats".to_string(),
                Value::Seq(self.plan.formats.iter().map(Serialize::to_value).collect()),
            ),
            (
                "config".to_string(),
                Value::Map(vec![
                    ("eigenvalue_count".to_string(), Value::Num(cfg.eigenvalue_count as f64)),
                    (
                        "eigenvalue_buffer_count".to_string(),
                        Value::Num(cfg.eigenvalue_buffer_count as f64),
                    ),
                    ("which".to_string(), Value::Str(format!("{:?}", cfg.which))),
                    ("reference_tol".to_string(), Value::Num(cfg.reference_tol)),
                    ("max_restarts".to_string(), Value::Num(cfg.max_restarts as f64)),
                    ("seed".to_string(), Value::Num(cfg.seed as f64)),
                ]),
            ),
            ("corpus".to_string(), Value::Num(self.plan.corpus.len() as f64)),
            (
                "faults".to_string(),
                Value::Str(lpa_faults::active_spec().unwrap_or_else(|| "disarmed".to_string())),
            ),
            (
                // The effective numerics table (builtin plus any
                // LPA_NUMERICS_BUMP override) — the thing artifact
                // addresses hash per-slice views of.
                "numerics".to_string(),
                Value::Map(
                    crate::numerics::checked_current()
                        .to_pairs()
                        .into_iter()
                        .map(|(name, version)| (name.to_string(), Value::UInt(u64::from(version))))
                        .collect(),
                ),
            ),
        ]);

        // Session counters: tallied from the records, then added to the
        // global registry (always, so the counter names register even at
        // zero) and rendered into the manifest.
        let mut reference_computed = 0u64;
        let mut reference_hit = 0u64;
        let mut reference_skipped = 0u64;
        let mut reference_lost = 0u64;
        for r in &grid.references {
            match r.status {
                "crashed" | "timed-out" => reference_lost += 1,
                "skipped" => reference_skipped += 1,
                _ if r.from_store => reference_hit += 1,
                _ => reference_computed += 1,
            }
        }
        let mut cell_computed = 0u64;
        let mut cell_hit = 0u64;
        let mut cell_crashed = 0u64;
        let mut cell_timed_out = 0u64;
        for c in &grid.cells {
            match c.outcome {
                "crashed" => cell_crashed += 1,
                "timed-out" => cell_timed_out += 1,
                _ if c.from_store => cell_hit += 1,
                _ => cell_computed += 1,
            }
        }
        let session_counters: Vec<(String, u64)> = [
            ("session.reference.computed", reference_computed),
            ("session.reference.hit", reference_hit),
            ("session.reference.skipped", reference_skipped),
            ("session.reference.lost", reference_lost),
            ("session.cell.computed", cell_computed),
            ("session.cell.hit", cell_hit),
            ("session.cell.crashed", cell_crashed),
            ("session.cell.timed_out", cell_timed_out),
        ]
        .into_iter()
        .map(|(name, value)| {
            lpa_obs::global().counter(name).add(value);
            (name.to_string(), value)
        })
        .collect();

        // Store counters: this run's delta over the pre-run snapshot.
        let store_section = match (store_before, self.plan.store) {
            (Some(before), Some(s)) => {
                let before: BTreeMap<String, u64> = before.into_iter().collect();
                let deltas: Vec<(String, u64)> = s
                    .stats()
                    .registry()
                    .counters_snapshot()
                    .into_iter()
                    .map(|(name, after)| {
                        let base = before.get(&name).copied().unwrap_or(0);
                        (name, after - base)
                    })
                    .collect();
                lpa_obs::counters_value(&deltas)
            }
            _ => Value::Null,
        };

        // Span aggregates: count/total deltas over the pre-run snapshot
        // (exact even when other spans ran earlier in the process); max_ns
        // is the running maximum. Names untouched by this run are skipped.
        let before: BTreeMap<&str, (u64, u64)> =
            spans_before.iter().map(|a| (a.name, (a.count, a.total_ns))).collect();
        let spans: Vec<Value> = lpa_obs::span::aggregates()
            .iter()
            .filter_map(|a| {
                let (base_count, base_total) = before.get(a.name).copied().unwrap_or((0, 0));
                let count = a.count - base_count;
                if count == 0 {
                    return None;
                }
                Some(Value::Map(vec![
                    ("name".to_string(), Value::Str(a.name.to_string())),
                    ("count".to_string(), Value::Num(count as f64)),
                    ("total_ns".to_string(), Value::Num((a.total_ns - base_total) as f64)),
                    ("max_ns".to_string(), Value::Num(a.max_ns as f64)),
                ]))
            })
            .collect();

        let ms = |ns: u64| Value::Num(ns as f64 / 1e6);
        let references: Vec<Value> = grid
            .references
            .iter()
            .map(|r| {
                Value::Map(vec![
                    ("matrix".to_string(), Value::Str(r.matrix.clone())),
                    ("status".to_string(), Value::Str(r.status.to_string())),
                    ("from_store".to_string(), Value::Bool(r.from_store)),
                    ("wall_ms".to_string(), ms(r.wall_ns)),
                ])
            })
            .collect();
        let cells: Vec<Value> = grid
            .cells
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("matrix".to_string(), Value::Str(c.matrix.clone())),
                    ("format".to_string(), c.format.to_value()),
                    ("outcome".to_string(), Value::Str(c.outcome.to_string())),
                    ("from_store".to_string(), Value::Bool(c.from_store)),
                    ("wall_ms".to_string(), ms(c.wall_ns)),
                ])
            })
            .collect();

        // Knob provenance is read while the run's restore guards are still
        // alive, so the manifest reports the *effective* tier and engine.
        let run = Value::Map(vec![
            ("threads".to_string(), Value::Num(self.threads() as f64)),
            ("arith_tier".to_string(), Value::Str(format!("{:?}", dec16_tier()))),
            ("kernel_batch".to_string(), Value::Str(format!("{:?}", kernel_batch()))),
            ("kernel_lanes".to_string(), Value::Num(kernel_lanes().width() as f64)),
            (
                "retry".to_string(),
                self.plan.retry.map_or(Value::Null, |r| Value::Num(r as f64)),
            ),
            (
                "cell_deadline_ms".to_string(),
                self.plan
                    .cell_deadline
                    .or(cfg.cell_deadline)
                    .map_or(Value::Null, |d| Value::Num(d.as_millis() as f64)),
            ),
            ("observability".to_string(), Value::Str(lpa_obs::state_name().to_string())),
            ("wall_ms".to_string(), ms(wall_ns)),
            ("references".to_string(), Value::Seq(references)),
            ("cells".to_string(), Value::Seq(cells)),
            ("store".to_string(), store_section),
            ("session".to_string(), lpa_obs::counters_value(&session_counters)),
            ("spans".to_string(), Value::Seq(spans)),
        ]);

        RunManifest::new(Value::Map(vec![
            ("schema".to_string(), Value::Str(RUN_MANIFEST_SCHEMA.to_string())),
            ("plan".to_string(), plan),
            ("grid".to_string(), Serialize::to_value(&grid.results)),
            ("run".to_string(), run),
        ]))
    }
}

/// Everything one grid execution produced: the public results plus the
/// per-reference/per-cell records the run manifest reports.
struct GridRun {
    results: ExperimentResults,
    references: Vec<RefRecord>,
    cells: Vec<CellRecord>,
}

/// One stage-1 (reference) record, in corpus order.
struct RefRecord {
    matrix: String,
    status: &'static str,
    from_store: bool,
    wall_ns: u64,
}

/// One stage-2 (matrix, format) record, matrix-major in plan format order.
struct CellRecord {
    matrix: String,
    format: FormatTag,
    outcome: &'static str,
    from_store: bool,
    wall_ns: u64,
}

/// A per-run cell failure the driver isolated: says nothing about the
/// (matrix, format) cell itself, so it must never reach the store.
enum CellError {
    Crashed(String),
    TimedOut,
}

impl CellError {
    fn describe(&self) -> String {
        match self {
            CellError::Crashed(reason) => reason.clone(),
            CellError::TimedOut => "cell deadline exceeded".to_string(),
        }
    }

    fn into_outcome(self) -> Outcome {
        match self {
            CellError::Crashed(reason) => Outcome::Crashed { reason },
            CellError::TimedOut => Outcome::TimedOut,
        }
    }
}

/// Run one cell's compute under `catch_unwind`, turning a panic into an
/// `Err` with the stringified payload. The driver's state is all per-cell
/// (no shared mutable structures survive a cell), so resuming after an
/// unwound cell is sound — that is the whole isolation story.
fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())),
    }
}

/// Resolve one matrix's reference: store lookup (with in-place healing of
/// undecodable artifacts) or a fresh double-double solve. `Ok(None)` is a
/// persisted fact ("the reference does not converge", the paper's skip);
/// `Err` is a per-run crash/timeout, never persisted. The bool says the
/// result was served from the store.
fn resolve_reference(
    tm: &TestMatrix,
    cfg: &ExperimentConfig,
    store: Option<&Store>,
) -> (Result<Option<Reference>, CellError>, bool) {
    // One isolated solve. Distinguishes the three worlds: a solver verdict
    // (persistable), a deadline (per-run), a panic (per-run).
    let solve = || -> Result<Option<Reference>, CellError> {
        match catch_cell(|| compute_reference(&tm.matrix, cfg)) {
            Ok(Ok(r)) => Ok(Some(r)),
            Ok(Err(lpa_arnoldi::ArnoldiError::DeadlineExceeded)) => Err(CellError::TimedOut),
            Ok(Err(_)) => Ok(None),
            Err(reason) => Err(CellError::Crashed(reason)),
        }
    };
    let Some(s) = store else {
        return (solve(), false);
    };
    let computed = Cell::new(false);
    let key = persist::reference_key(&tm.matrix, cfg);
    let bytes = match s
        .get_or_try_compute(ArtifactKind::Reference, key, || {
            computed.set(true);
            // A crashed/timed-out solve propagates as Err: the store
            // persists nothing and the key stays retryable.
            solve().map(|r| persist::encode_reference(&r))
        })
        .expect("store I/O failed while persisting a reference")
    {
        Ok(bytes) => bytes,
        Err(cell_error) => return (Err(cell_error), false),
    };
    let reference = match persist::decode_reference(&bytes) {
        Ok(r) => Ok(r),
        // Checksum-valid but undecodable: payload schema drift without a
        // feature-version bump. Recompute and heal in place rather than
        // poisoning every future run.
        Err(_) => {
            computed.set(true);
            match solve() {
                Ok(r) => {
                    s.put(ArtifactKind::Reference, key, persist::encode_reference(&r))
                        .expect("store I/O failed while healing a reference");
                    Ok(r)
                }
                Err(cell_error) => Err(cell_error),
            }
        }
    };
    let from_store = !computed.get();
    (reference, from_store)
}

/// Resolve one (matrix, format) outcome, mirroring [`resolve_reference`]:
/// crashed/timed-out cells come back as `Outcome::Crashed`/`TimedOut` and
/// are never persisted.
fn resolve_outcome(
    tm: &TestMatrix,
    reference: &Reference,
    format: FormatTag,
    cfg: &ExperimentConfig,
    store: Option<&Store>,
) -> (Outcome, bool) {
    // `Ok` outcomes are cell facts (persistable); `Err` is this run's
    // accident. `run_format` maps a deadline to `Outcome::TimedOut`
    // internally, so it is re-routed to the Err side here.
    let solve = || -> Result<Outcome, CellError> {
        match catch_cell(|| run_format(&tm.matrix, reference, format, cfg).outcome) {
            Ok(Outcome::TimedOut) => Err(CellError::TimedOut),
            Ok(outcome) => Ok(outcome),
            Err(reason) => Err(CellError::Crashed(reason)),
        }
    };
    let Some(s) = store else {
        return (solve().unwrap_or_else(CellError::into_outcome), false);
    };
    let computed = Cell::new(false);
    let key = persist::outcome_key(&tm.matrix, format, cfg);
    // Outcome frames carry the format's stable wire id, so mislabelled
    // frames (hash collision, wrong-file restore) are quarantined on read
    // instead of being decoded as the wrong format's outcome.
    let format_id = Some(persist::format_id(format));
    let bytes = match s
        .get_or_try_compute_for(ArtifactKind::Outcome, key, format_id, || {
            computed.set(true);
            solve().map(|o| persist::encode_outcome(&o))
        })
        .expect("store I/O failed while persisting an outcome")
    {
        Ok(bytes) => bytes,
        Err(cell_error) => return (cell_error.into_outcome(), false),
    };
    let outcome = match persist::decode_outcome(&bytes) {
        Ok(o) => o,
        // Same healing path as references: recompute and overwrite the
        // undecodable artifact.
        Err(_) => {
            computed.set(true);
            match solve() {
                Ok(o) => {
                    s.put_for(ArtifactKind::Outcome, key, persist::encode_outcome(&o), format_id)
                        .expect("store I/O failed while healing an outcome");
                    o
                }
                Err(cell_error) => return (cell_error.into_outcome(), false),
            }
        }
    };
    (outcome, !computed.get())
}

fn emit(observer: Option<&dyn ProgressObserver>, event: impl FnOnce() -> ProgressEvent) {
    if let Some(o) = observer {
        o.on_event(&event());
    }
}

/// Forces the 16-bit tier for a scope and restores the previous tier on
/// drop. Both tiers compute identical bits, so overlapping guards from
/// concurrent sessions are benign (the knob is process-global).
struct TierGuard(Dec16Tier);

impl TierGuard {
    fn force(tier: Dec16Tier) -> TierGuard {
        let previous = dec16_tier();
        force_dec16_tier(tier);
        TierGuard(previous)
    }
}

impl Drop for TierGuard {
    fn drop(&mut self) {
        force_dec16_tier(self.0);
    }
}

/// Sets a store's I/O retry budget for a scope and restores the previous
/// budget on drop (the tier/engine restore-guard pattern).
struct RetryGuard<'a> {
    store: &'a Store,
    previous: u32,
}

impl<'a> RetryGuard<'a> {
    fn set(store: &'a Store, retries: u32) -> RetryGuard<'a> {
        let previous = store.io_retries();
        store.set_io_retries(retries);
        RetryGuard { store, previous }
    }
}

impl Drop for RetryGuard<'_> {
    fn drop(&mut self) {
        self.store.set_io_retries(self.previous);
    }
}

/// Arms (or disarms) the `lpa-obs` span gate for a scope and restores the
/// previous state on drop (the tier/engine restore-guard pattern; the gate
/// only selects whether spans are recorded, never what is computed, so
/// overlapping guards are benign).
struct ObsGuard(bool);

impl ObsGuard {
    fn force(armed: bool) -> ObsGuard {
        ObsGuard(lpa_obs::force(armed))
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        lpa_obs::force(self.0);
    }
}

/// Forces the batch kernel engine for a scope and restores the previous
/// engine on drop (the `arith_tier` restore-guard pattern; both engines
/// compute identical bits, so overlapping guards are benign).
struct BatchGuard(KernelBatch);

impl BatchGuard {
    fn force(engine: KernelBatch) -> BatchGuard {
        let previous = kernel_batch();
        force_kernel_batch(engine);
        BatchGuard(previous)
    }
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        force_kernel_batch(self.0);
    }
}

/// Forces the planes-kernel lane width for a scope and restores the
/// previous width on drop (the `kernel_batch` restore-guard pattern; every
/// width computes identical bits, so overlapping guards are benign).
struct LanesGuard(KernelLanes);

impl LanesGuard {
    fn force(lanes: KernelLanes) -> LanesGuard {
        let previous = kernel_lanes();
        force_kernel_lanes(lanes);
        LanesGuard(previous)
    }
}

impl Drop for LanesGuard {
    fn drop(&mut self) {
        force_kernel_lanes(self.0);
    }
}

/// Releases worker-thread events in slot order: slot `i`'s events are
/// delivered only after every slot `< i` has submitted and delivered, which
/// makes the observer stream identical for any thread count. Delivery
/// happens under the lock, so the total order is strict.
struct Sequencer<'a> {
    observer: Option<&'a dyn ProgressObserver>,
    state: Mutex<SequencerState>,
}

struct SequencerState {
    next: usize,
    pending: BTreeMap<usize, Vec<ProgressEvent>>,
}

impl<'a> Sequencer<'a> {
    fn new(observer: Option<&'a dyn ProgressObserver>) -> Sequencer<'a> {
        Sequencer {
            observer,
            state: Mutex::new(SequencerState { next: 0, pending: BTreeMap::new() }),
        }
    }

    /// Submit slot `slot`'s events; `fill` only runs when an observer is
    /// attached, so unobserved runs pay nothing for event construction.
    fn submit(&self, slot: usize, fill: impl FnOnce(&mut Vec<ProgressEvent>)) {
        let Some(observer) = self.observer else { return };
        let mut events = Vec::with_capacity(2);
        fill(&mut events);
        let mut state = self.state.lock().expect("event sequencer poisoned");
        state.pending.insert(slot, events);
        while let Some(ready) = { let next = state.next; state.pending.remove(&next) } {
            for event in &ready {
                observer.on_event(event);
            }
            state.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_datagen::{general_corpus, CorpusConfig};

    #[test]
    fn tiny_experiment_end_to_end() {
        // A handful of small matrices, a couple of formats: the full pipeline
        // must produce an outcome for every (matrix, format) pair.
        let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
            scale: 1,
            size_range: (30, 40),
            ..CorpusConfig::tiny()
        })
        .into_iter()
        .filter(|t| t.category == "lap1d" || t.category == "diagdom")
        .collect();
        assert!(corpus.len() >= 3);
        let formats = [FormatTag::Float64, FormatTag::Takum16, FormatTag::Ofp8E4M3];
        let cfg = ExperimentConfig {
            eigenvalue_count: 4,
            eigenvalue_buffer_count: 2,
            max_restarts: 60,
            ..Default::default()
        };
        let res = ExperimentPlan::over(&corpus).formats(&formats).config(cfg).run();
        assert_eq!(res.matrices.len() + res.skipped.len(), corpus.len());
        for m in &res.matrices {
            assert_eq!(m.outcomes.len(), 3);
        }
        // float64 should essentially always produce small errors here.
        let f64_outcomes = res.outcomes_for(FormatTag::Float64);
        assert!(!f64_outcomes.is_empty());
        for o in f64_outcomes {
            if let Some(e) = o.errors() {
                assert!(e.eigenvalue_rel < 1e-8);
            }
        }
    }

    #[test]
    fn sequencer_releases_in_slot_order_regardless_of_submit_order() {
        struct Tape(Mutex<Vec<usize>>);
        impl ProgressObserver for Tape {
            fn on_event(&self, event: &ProgressEvent) {
                if let ProgressEvent::ReferenceStarted { index, .. } = event {
                    self.0.lock().unwrap().push(*index);
                }
            }
        }
        let tape = Tape(Mutex::new(Vec::new()));
        let seq = Sequencer::new(Some(&tape as &dyn ProgressObserver));
        for slot in [2usize, 0, 3, 1, 4] {
            seq.submit(slot, |events| {
                events.push(ProgressEvent::ReferenceStarted {
                    index: slot,
                    matrix: String::new(),
                });
            });
        }
        assert_eq!(*tape.0.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
