//! The per-matrix experiment pipeline (Section 2.2 of the paper):
//!
//! 1. compute a high-precision reference partial Schur decomposition in
//!    double-double arithmetic (tolerance 1e-20, `nev + buffer` pairs),
//! 2. convert the matrix to the target format (range check → `∞σ`),
//! 3. run the same untailored Krylov–Schur Arnoldi in the target format
//!    (failure → `∞ω`),
//! 4. match computed to reference eigenvectors by absolute cosine similarity
//!    and Hungarian assignment, fix the signs using the largest reference
//!    entry, and
//! 5. report the relative L2 errors of the first `nev` eigenvalues and
//!    eigenvectors.

use lpa_arith::{Dd, Real};
use lpa_arnoldi::{partial_schur, ArnoldiOptions, PartialSchur, Which};
use lpa_assign::maximize_similarity;
use lpa_dense::DMatrix;
use lpa_sparse::{convert_checked, CsrMatrix};
use serde::{Deserialize, Serialize};

use crate::formats::FormatTag;
use crate::outcome::{EigenErrors, Outcome};

/// Parameters of an eigenvalue experiment (the paper's values are the
/// defaults).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of eigenpairs whose errors are reported (the paper uses 10).
    pub eigenvalue_count: usize,
    /// Extra eigenpairs computed as permutation headroom (the paper uses 2).
    pub eigenvalue_buffer_count: usize,
    /// Spectrum target (largest magnitude in all the paper's experiments).
    pub which: Which,
    /// Reference tolerance (1e-20 in the paper).
    pub reference_tol: f64,
    /// Maximum number of restarts per solve.
    pub max_restarts: usize,
    /// Seed of the Arnoldi starting vectors.
    pub seed: u64,
    /// Opt-in wall-clock budget per solve; past it the cell yields
    /// [`Outcome::TimedOut`]. Deliberately **not** part of the persistence
    /// key (`persist::hash_config`): it changes which runs finish, never
    /// what a finished run computes, and timed-out cells are never stored.
    pub cell_deadline: Option<std::time::Duration>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            eigenvalue_count: 10,
            eigenvalue_buffer_count: 2,
            which: Which::LargestMagnitude,
            reference_tol: 1e-20,
            max_restarts: 100,
            seed: 1,
            cell_deadline: None,
        }
    }
}

impl ExperimentConfig {
    pub fn total_pairs(&self) -> usize {
        self.eigenvalue_count + self.eigenvalue_buffer_count
    }

    fn options(&self, tol: f64) -> ArnoldiOptions {
        ArnoldiOptions {
            nev: self.total_pairs(),
            which: self.which,
            tol,
            max_dim: None,
            max_restarts: self.max_restarts,
            seed: self.seed,
            // The budget clock starts when the solve does.
            deadline: self.cell_deadline.map(|d| std::time::Instant::now() + d),
        }
    }
}

/// The reference solution of one matrix: eigenvalues, eigenvectors and the
/// index of the largest-magnitude entry of each eigenvector (the paper's
/// stable sign anchor).
#[derive(Clone, Debug)]
pub struct Reference {
    pub eigenvalues: Vec<Dd>,
    pub eigenvectors: DMatrix<Dd>,
    pub sign_anchor: Vec<usize>,
}

/// Compute the double-double reference solution (`∞ω` if even the reference
/// does not converge, which the driver treats as "skip this matrix", like the
/// paper's preparation step does).
pub fn compute_reference(
    matrix: &CsrMatrix<f64>,
    cfg: &ExperimentConfig,
) -> Result<Reference, lpa_arnoldi::ArnoldiError> {
    // Fault point: an injectable panic at the top of the reference solve,
    // for exercising the driver's per-cell crash isolation.
    lpa_faults::inject_panic(lpa_faults::SOLVER_PANIC);
    let a: CsrMatrix<Dd> = matrix.convert();
    let (ps, _hist) = partial_schur(&a, &cfg.options(cfg.reference_tol))?;
    let (values, vectors) = sorted_pairs(&ps, cfg);
    let sign_anchor = (0..vectors.ncols())
        .map(|j| lpa_dense::blas::iamax(vectors.col(j)))
        .collect();
    Ok(Reference { eigenvalues: values, eigenvectors: vectors, sign_anchor })
}

/// Extract `total_pairs` eigenpairs from a partial Schur decomposition,
/// sorted by decreasing magnitude (the interpretation step for symmetric
/// matrices described in the paper).
fn sorted_pairs<T: Real>(ps: &PartialSchur<T>, cfg: &ExperimentConfig) -> (Vec<Dd>, DMatrix<Dd>) {
    let k = ps.len().min(cfg.total_pairs());
    let mut idx: Vec<usize> = (0..ps.len()).collect();
    idx.sort_by(|&a, &b| {
        let ka = ps.eigenvalues[a].abs();
        let kb = ps.eigenvalues[b].abs();
        kb.partial_cmp(&ka).unwrap_or(core::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    let values: Vec<Dd> = idx.iter().map(|&i| Dd::from_f64(ps.eigenvalues[i].re.to_f64())).collect();
    let n = ps.q.nrows();
    let vectors = DMatrix::<Dd>::from_fn(n, k, |r, c| Dd::from_f64(ps.q[(r, idx[c])].to_f64()));
    (values, vectors)
}

/// Result of evaluating one format on one matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FormatRun {
    pub format: FormatTag,
    pub outcome: Outcome,
}

/// Run the experiment for a single format.
pub fn run_format(
    matrix: &CsrMatrix<f64>,
    reference: &Reference,
    format: FormatTag,
    cfg: &ExperimentConfig,
) -> FormatRun {
    let outcome = match format {
        FormatTag::Ofp8E4M3 => run_typed::<lpa_arith::E4M3>(matrix, reference, format, cfg),
        FormatTag::Ofp8E5M2 => run_typed::<lpa_arith::E5M2>(matrix, reference, format, cfg),
        FormatTag::Posit8 => run_typed::<lpa_arith::Posit8>(matrix, reference, format, cfg),
        FormatTag::Takum8 => run_typed::<lpa_arith::Takum8>(matrix, reference, format, cfg),
        FormatTag::Float16 => run_typed::<lpa_arith::F16>(matrix, reference, format, cfg),
        FormatTag::Bfloat16 => run_typed::<lpa_arith::Bf16>(matrix, reference, format, cfg),
        FormatTag::Posit16 => run_typed::<lpa_arith::Posit16>(matrix, reference, format, cfg),
        FormatTag::Takum16 => run_typed::<lpa_arith::Takum16>(matrix, reference, format, cfg),
        FormatTag::Float32 => run_typed::<f32>(matrix, reference, format, cfg),
        FormatTag::Posit32 => run_typed::<lpa_arith::Posit32>(matrix, reference, format, cfg),
        FormatTag::Takum32 => run_typed::<lpa_arith::Takum32>(matrix, reference, format, cfg),
        FormatTag::Float64 => run_typed::<f64>(matrix, reference, format, cfg),
        FormatTag::Posit64 => run_typed::<lpa_arith::Posit64>(matrix, reference, format, cfg),
        FormatTag::Takum64 => run_typed::<lpa_arith::Takum64>(matrix, reference, format, cfg),
    };
    FormatRun { format, outcome }
}

fn run_typed<T: lpa_arith::BatchReal>(
    matrix: &CsrMatrix<f64>,
    reference: &Reference,
    format: FormatTag,
    cfg: &ExperimentConfig,
) -> Outcome {
    // Fault point: an injectable panic at the top of the cell, for
    // exercising the driver's per-cell crash isolation.
    lpa_faults::inject_panic(lpa_faults::SOLVER_PANIC);
    // Step 1: conversion with dynamic-range check (the paper's ∞σ).
    let converted: CsrMatrix<T> = match convert_checked::<f64, T>(matrix) {
        Ok(m) => m,
        Err(_) => return Outcome::RangeExceeded,
    };
    // Step 2: the Arnoldi run itself (failure of any kind is the paper's ∞ω).
    // With the batch kernel engine active, the matrix values are decoded
    // once per (matrix, format) run here — every SpMV of every Arnoldi
    // step then gathers the shadows instead of re-decoding (bit-identical
    // results, see `lpa_arith::batch`).
    let opts = cfg.options(format.tolerance());
    let ps = if T::DECODED && lpa_arith::kernel_batch_enabled() {
        partial_schur(&lpa_sparse::CsrDecoded::new(converted), &opts)
    } else {
        partial_schur(&converted, &opts)
    };
    let ps = match ps {
        Ok((ps, _hist)) => ps,
        // Running out of wall clock is a fact about this run, not about
        // the cell; the driver keeps it out of the store.
        Err(lpa_arnoldi::ArnoldiError::DeadlineExceeded) => return Outcome::TimedOut,
        Err(_) => return Outcome::NotConverged,
    };
    let (values, vectors) = sorted_pairs(&ps, cfg);
    if values.len() < cfg.eigenvalue_count {
        return Outcome::NotConverged;
    }
    // Step 3: matching, sign fixing, error computation.
    let errors = compare_to_reference(reference, &values, &vectors, cfg);
    Outcome::Errors(errors)
}

/// Absolute cosine similarity matrix between reference and computed
/// eigenvectors (Eq. (2) of the paper), computed in `f64`.
pub fn cosine_similarity_matrix(reference: &DMatrix<Dd>, computed: &DMatrix<Dd>) -> Vec<Vec<f64>> {
    let k_ref = reference.ncols();
    let k_cmp = computed.ncols();
    let norm = |col: &[Dd]| -> f64 { lpa_dense::blas::nrm2(col).to_f64() };
    (0..k_ref)
        .map(|i| {
            (0..k_cmp)
                .map(|j| {
                    let num = lpa_dense::blas::dot(reference.col(i), computed.col(j)).to_f64().abs();
                    let den = norm(reference.col(i)) * norm(computed.col(j));
                    if den == 0.0 {
                        0.0
                    } else {
                        num / den
                    }
                })
                .collect()
        })
        .collect()
}

/// Match computed pairs to the reference (Hungarian on the negated absolute
/// cosine similarity), apply the permutation and sign correction, and return
/// the relative errors over the first `eigenvalue_count` pairs.
pub fn compare_to_reference(
    reference: &Reference,
    values: &[Dd],
    vectors: &DMatrix<Dd>,
    cfg: &ExperimentConfig,
) -> EigenErrors {
    let k = reference.eigenvalues.len().min(values.len());
    // Square similarity matrix over the buffered pair count.
    let sim = {
        let full = cosine_similarity_matrix(&reference.eigenvectors, vectors);
        full.into_iter().take(k).map(|row| row.into_iter().take(k).collect()).collect::<Vec<Vec<f64>>>()
    };
    let perm = maximize_similarity(&sim);

    let nev = cfg.eigenvalue_count.min(k);
    let n = vectors.nrows();

    // Relative L2 error of the eigenvalue vector, in double-double.
    let mut num = Dd::ZERO;
    let mut den = Dd::ZERO;
    for i in 0..nev {
        let d = reference.eigenvalues[i] - values[perm[i]];
        num += d * d;
        den += reference.eigenvalues[i] * reference.eigenvalues[i];
    }
    let value_error = if den.is_zero() {
        num.sqrt().to_f64()
    } else {
        (num.sqrt() / den.sqrt()).to_f64()
    };

    // Relative L2 (Frobenius) error of the eigenvector matrix after
    // permutation and sign correction.
    let mut vnum = Dd::ZERO;
    let mut vden = Dd::ZERO;
    for (i, &p) in perm.iter().enumerate().take(nev) {
        let r = reference.eigenvectors.col(i);
        let c = vectors.col(p);
        let anchor = reference.sign_anchor[i];
        let flip = (r[anchor].to_f64() >= 0.0) != (c[anchor].to_f64() >= 0.0);
        for row in 0..n {
            let cv = if flip { -c[row] } else { c[row] };
            let d = r[row] - cv;
            vnum += d * d;
            vden += r[row] * r[row];
        }
    }
    let vector_error = if vden.is_zero() {
        vnum.sqrt().to_f64()
    } else {
        (vnum.sqrt() / vden.sqrt()).to_f64()
    };

    EigenErrors { eigenvalue_rel: value_error, eigenvector_rel: vector_error }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { eigenvalue_count: 4, eigenvalue_buffer_count: 2, ..Default::default() }
    }

    #[test]
    fn reference_matches_analytic_spectrum() {
        let a = laplacian_1d(40);
        let cfg = small_cfg();
        let r = compute_reference(&a, &cfg).unwrap();
        assert_eq!(r.eigenvalues.len(), 6);
        for (k, v) in r.eigenvalues.iter().enumerate() {
            let exact = 2.0 - 2.0 * (std::f64::consts::PI * (40 - k) as f64 / 41.0).cos();
            assert!((v.to_f64() - exact).abs() < 1e-12, "{} vs {exact}", v.to_f64());
        }
        assert_eq!(r.sign_anchor.len(), 6);
    }

    #[test]
    fn float64_run_has_tiny_errors() {
        let a = laplacian_1d(40);
        let cfg = small_cfg();
        let r = compute_reference(&a, &cfg).unwrap();
        let run = run_format(&a, &r, FormatTag::Float64, &cfg);
        match run.outcome {
            Outcome::Errors(e) => {
                assert!(e.eigenvalue_rel < 1e-11, "eigenvalue error {}", e.eigenvalue_rel);
                assert!(e.eigenvector_rel < 1e-6, "eigenvector error {}", e.eigenvector_rel);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn low_precision_errors_are_larger_but_finite() {
        let a = laplacian_1d(40);
        let cfg = small_cfg();
        let r = compute_reference(&a, &cfg).unwrap();
        let f64_err = match run_format(&a, &r, FormatTag::Float64, &cfg).outcome {
            Outcome::Errors(e) => e.eigenvalue_rel,
            _ => panic!(),
        };
        for tag in [FormatTag::Float16, FormatTag::Posit16, FormatTag::Takum16] {
            match run_format(&a, &r, tag, &cfg).outcome {
                Outcome::Errors(e) => {
                    assert!(e.eigenvalue_rel.is_finite());
                    assert!(e.eigenvalue_rel > f64_err, "{tag:?}");
                    assert!(e.eigenvalue_rel < 1.0, "{tag:?}: {}", e.eigenvalue_rel);
                }
                Outcome::NotConverged => {} // acceptable for low precision
                other => panic!("{tag:?}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn range_exceeded_is_detected_for_ofp8() {
        // Entries far outside the E4M3 range (max 448).
        let mut t = Vec::new();
        let n = 30;
        for i in 0..n {
            t.push((i, i, 1e6 * (i + 1) as f64));
            if i + 1 < n {
                t.push((i, i + 1, 1.0));
                t.push((i + 1, i, 1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let cfg = small_cfg();
        let r = compute_reference(&a, &cfg).unwrap();
        assert!(matches!(
            run_format(&a, &r, FormatTag::Ofp8E4M3, &cfg).outcome,
            Outcome::RangeExceeded
        ));
        // Posits saturate instead, so they at least attempt the computation.
        assert!(!matches!(
            run_format(&a, &r, FormatTag::Posit8, &cfg).outcome,
            Outcome::RangeExceeded
        ));
    }

    #[test]
    fn permutation_and_sign_matching_fixes_shuffled_vectors() {
        let a = laplacian_1d(30);
        let cfg = small_cfg();
        let r = compute_reference(&a, &cfg).unwrap();
        // Build a "computed" result that is the reference with permuted
        // columns and flipped signs; the matching must undo both.
        let k = r.eigenvalues.len();
        let perm: Vec<usize> = (0..k).rev().collect();
        let values: Vec<Dd> = perm.iter().map(|&i| r.eigenvalues[i]).collect();
        let vectors = DMatrix::<Dd>::from_fn(30, k, |row, col| {
            let src = perm[col];
            let sign = if col % 2 == 0 { -1.0 } else { 1.0 };
            Dd::from_f64(sign * r.eigenvectors[(row, src)].to_f64())
        });
        // Invert: computed column col contains reference column perm[col].
        let errors = compare_to_reference(&r, &values, &vectors, &cfg);
        assert!(errors.eigenvalue_rel < 1e-25, "{}", errors.eigenvalue_rel);
        assert!(errors.eigenvector_rel < 1e-12, "{}", errors.eigenvector_rel);
    }
}
