//! # lpa-experiments — the eigenvalue experiment harness
//!
//! The MuFoLAB-equivalent layer of the reproduction: given a corpus of
//! symmetric test matrices (from `lpa-datagen`) and a set of number formats,
//! it
//!
//! 1. computes a double-double reference partial Schur decomposition per
//!    matrix (tolerance 1e-20),
//! 2. converts the matrix to each target format, classifying dynamic-range
//!    failures as the paper's `∞σ`,
//! 3. runs the identical Krylov–Schur Arnoldi code in the target format,
//!    classifying solver failures as `∞ω`,
//! 4. matches computed to reference eigenvectors with the paper's buffered
//!    absolute-cosine-similarity + Hungarian + sign-anchor scheme, and
//! 5. aggregates relative errors into the cumulative error distributions the
//!    paper plots (Figures 1–5), with CSV output and text summaries.
//!
//! Matrices are processed in parallel with rayon. With a persistent
//! `lpa-store` attached ([`run_experiment_with_store`]), every reference
//! solve and outcome is content-addressed and reused across harness runs —
//! see [`persist`] for the key-derivation and salt-bumping policy.

pub mod driver;
pub mod formats;
pub mod outcome;
pub mod persist;
pub mod pipeline;
pub mod report;

pub use driver::{run_experiment, run_experiment_with_store, ExperimentResults, MatrixResult};
pub use formats::FormatTag;
pub use outcome::{EigenErrors, Outcome};
pub use pipeline::{
    compare_to_reference, compute_reference, cosine_similarity_matrix, run_format,
    ExperimentConfig, Reference,
};
pub use report::{
    cumulative_distribution, format_summary_table, log10_clamped, write_figure_csv,
    CumulativeDistribution, Metric,
};
