//! # lpa-experiments — the eigenvalue experiment harness
//!
//! The MuFoLAB-equivalent layer of the reproduction: given a corpus of
//! symmetric test matrices (from `lpa-datagen`) and a set of number formats,
//! it
//!
//! 1. computes a double-double reference partial Schur decomposition per
//!    matrix (tolerance 1e-20),
//! 2. converts the matrix to each target format, classifying dynamic-range
//!    failures as the paper's `∞σ`,
//! 3. runs the identical Krylov–Schur Arnoldi code in the target format,
//!    classifying solver failures as `∞ω`,
//! 4. matches computed to reference eigenvectors with the paper's buffered
//!    absolute-cosine-similarity + Hungarian + sign-anchor scheme, and
//! 5. aggregates relative errors into the cumulative error distributions the
//!    paper plots (Figures 1–5), with CSV output and text summaries.
//!
//! ## One front door
//!
//! Every run is built through the [`ExperimentPlan`] builder and executed by
//! the [`Session`] it resolves into ([`session`] module). A copy-pasteable
//! run, with streamed progress and a persistent store:
//!
//! ```no_run
//! use lpa_datagen::{general_corpus, CorpusConfig};
//! use lpa_experiments::harness::HarnessSettings;
//! use lpa_experiments::{ExperimentConfig, ExperimentPlan, FormatTag, StderrProgress};
//!
//! // Resolved LPA_* environment (CLI flags would outrank it, see `harness`).
//! let settings = HarnessSettings::from_env();
//! let store = settings.open_store(); // Some(_) iff LPA_STORE is set
//! let corpus = general_corpus(&CorpusConfig::tiny());
//! let progress = StderrProgress::new("sweep");
//!
//! let results = ExperimentPlan::over(&corpus)
//!     .formats(&FormatTag::all())
//!     .config(ExperimentConfig::default())
//!     .maybe_store(store.as_ref())
//!     .apply(&settings)      // tier / thread overrides, if any
//!     .observer(&progress)   // stream per-matrix progress to stderr
//!     .session()
//!     .run();
//! println!("{} matrices, {} skipped", results.matrices.len(), results.skipped.len());
//! ```
//!
//! Results are deterministic and byte-identical for any thread count, store
//! state, observer, and arithmetic tier. With a persistent `lpa-store`
//! attached, every reference solve and outcome is content-addressed and
//! reused across harness runs — see [`persist`] for the key-derivation and
//! salt-bumping policy, and [`harness`] for the one place `LPA_*`
//! environment variables are read.

pub mod formats;
pub mod harness;
pub mod manifest;
pub mod numerics;
pub mod outcome;
pub mod persist;
pub mod pipeline;
pub mod progress;
pub mod report;
pub mod session;

pub use formats::FormatTag;
pub use manifest::{RunManifest, RUN_MANIFEST_SCHEMA};
pub use outcome::{EigenErrors, Outcome};
pub use pipeline::{
    compare_to_reference, compute_reference, cosine_similarity_matrix, run_format,
    ExperimentConfig, Reference,
};
pub use progress::CsvProgress;
pub use report::{
    cumulative_distribution, format_summary_table, log10_clamped, write_figure_csv,
    CumulativeDistribution, Metric,
};
pub use session::{
    ExperimentPlan, ExperimentResults, MatrixResult, ProgressEvent, ProgressObserver, Session,
    StderrProgress,
};
