//! Harness-side view of the versioned numerics table.
//!
//! `lpa_numerics` owns the table itself; this module is the single place
//! where the versions the arithmetic tiers *declare*
//! (`lpa_arith::numerics_versions`, `lpa_arnoldi::ARNOLDI_RESTART_VERSION`)
//! are checked against the versions the table *claims*
//! ([`NumericsConfig::builtin`]). A one-sided bump — changing a kernel and
//! bumping only the tier constant, or only the table — fails here loudly
//! before any key is derived, instead of silently serving stale cached
//! artifacts.

pub use lpa_numerics::{
    relevant_features, Feature, FormatClass, NumericsConfig, RecordedNumerics, Slice,
    ARNOLDI_RESTART, BATCH_ROUND, DD_REFERENCE, DEC16_TABLES, LUT8_TABLES, SOFTFLOAT_KERNEL,
};

/// The builtin table's version of each feature a tier declares, checked
/// against the tier constant. Panics (once, with the offending feature
/// named) on mismatch.
fn check_declared(builtin: &NumericsConfig) {
    let declared = [
        (DD_REFERENCE, lpa_arith::numerics_versions::DD_REFERENCE),
        (ARNOLDI_RESTART, lpa_arnoldi::ARNOLDI_RESTART_VERSION),
        (SOFTFLOAT_KERNEL, lpa_arith::numerics_versions::SOFTFLOAT_KERNEL),
        (DEC16_TABLES, lpa_arith::numerics_versions::DEC16_TABLES),
        (BATCH_ROUND, lpa_arith::numerics_versions::BATCH_ROUND),
        (LUT8_TABLES, lpa_arith::numerics_versions::LUT8_TABLES),
    ];
    for (feature, tier_version) in declared {
        assert_eq!(
            builtin.version(feature),
            tier_version,
            "numerics version mismatch for {:?}: NumericsConfig::builtin says {}, \
             the implementing tier declares {} — bump both in the same commit",
            feature.name(),
            builtin.version(feature),
            tier_version,
        );
    }
}

/// This process's effective numerics table ([`NumericsConfig::current`]),
/// with the tier-declaration cross-check run once per process.
pub fn checked_current() -> NumericsConfig {
    use std::sync::Once;
    static CHECK: Once = Once::new();
    CHECK.call_once(|| check_declared(&NumericsConfig::builtin()));
    NumericsConfig::current()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_table_matches_tier_declarations() {
        check_declared(&NumericsConfig::builtin());
    }

    #[test]
    fn format_ids_line_up_with_persist() {
        use crate::formats::FormatTag;
        // The per-format feature names in lpa_numerics are ordered by the
        // stable wire ids persist::format_id assigns; a drift here would
        // attribute a codec bump to the wrong format's slice.
        let expect = [
            (FormatTag::Ofp8E4M3, "fmt_ofp8_e4m3"),
            (FormatTag::Ofp8E5M2, "fmt_ofp8_e5m2"),
            (FormatTag::Posit8, "fmt_posit8"),
            (FormatTag::Takum8, "fmt_takum8"),
            (FormatTag::Float16, "fmt_float16"),
            (FormatTag::Bfloat16, "fmt_bfloat16"),
            (FormatTag::Posit16, "fmt_posit16"),
            (FormatTag::Takum16, "fmt_takum16"),
            (FormatTag::Float32, "fmt_float32"),
            (FormatTag::Posit32, "fmt_posit32"),
            (FormatTag::Takum32, "fmt_takum32"),
            (FormatTag::Float64, "fmt_float64"),
            (FormatTag::Posit64, "fmt_posit64"),
            (FormatTag::Takum64, "fmt_takum64"),
        ];
        for (tag, name) in expect {
            let id = crate::persist::format_id(tag);
            assert_eq!(Feature::for_format(id).map(|f| f.name()), Some(name), "{tag:?}");
        }
    }

    #[test]
    fn native_formats_are_immune_to_kernel_bumps() {
        // f32/f64 round in hardware; no emulated-kernel feature may reach
        // their outcome slices.
        for id in [8u8, 11] {
            let slice = Slice::Outcome { format: Some(id) };
            let relevant = relevant_features(slice);
            for f in [SOFTFLOAT_KERNEL, DEC16_TABLES, BATCH_ROUND, LUT8_TABLES] {
                assert!(!relevant.contains(&f), "format id {id} vs {:?}", f.name());
            }
        }
    }
}
