//! End-to-end guard for the unpack-once 16-bit arithmetic fast path: a
//! small (matrix × 16-bit-format) experiment grid run with the fast path
//! forced **off** and forced **on** must produce byte-identical serialized
//! results — both the JSON serialization of the whole `ExperimentResults`
//! and the `lpa-store` payload encoding of every outcome.
//!
//! This is the proof that the fast path needs no
//! [`lpa_experiments::persist::CODE_VERSION_SALT`] bump: the persisted
//! store artifacts of a warm-started run keyed on the current salt stay
//! valid, and the warm-start CI assertion (zero reference misses,
//! byte-identical CSVs) keeps holding.
//!
//! Kept as a single test in its own integration binary because it toggles
//! the process-global 16-bit tier (via the plan's `arith_tier` knob).

use lpa_arith::Dec16Tier;
use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{persist, ExperimentConfig, ExperimentPlan, FormatTag};

#[test]
fn fast_path_grid_serializes_identically_to_softfloat() {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(4)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the grid");
    let formats = FormatTag::with_bits(16);
    assert_eq!(formats.len(), 4, "all four 16-bit formats must be under test");
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };

    let plan = || ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone());
    let soft = plan().arith_tier(Dec16Tier::Softfloat).run();
    let fast = plan().arith_tier(Dec16Tier::Unpack).run();

    // The whole result object, serialization included, must not change.
    let soft_json = serde_json::to_string(&soft).expect("serialize soft-float results");
    let fast_json = serde_json::to_string(&fast).expect("serialize fast-path results");
    assert_eq!(soft_json, fast_json, "16-bit fast path changed experiment results");

    // And neither must the store payload bytes of any outcome: this is the
    // exact encoding persisted under CODE_VERSION_SALT-derived keys.
    assert!(!soft.matrices.is_empty(), "every reference solve failed");
    for (ms, mf) in soft.matrices.iter().zip(&fast.matrices) {
        for ((fs, os), (ff, of)) in ms.outcomes.iter().zip(&mf.outcomes) {
            assert_eq!(fs, ff);
            assert_eq!(
                persist::encode_outcome(os),
                persist::encode_outcome(of),
                "persisted outcome bytes diverged for {} / {:?}",
                ms.name,
                fs
            );
        }
    }
}
