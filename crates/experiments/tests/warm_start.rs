//! The store's end-to-end contract at the experiment level:
//!
//! * property coverage of the `Reference`/`Outcome` payload codecs over
//!   arbitrary inputs (all `Outcome` variants, NaN/inf error values,
//!   empty and rectangular eigenvector matrices), and
//! * a cold-vs-warm integration run proving a warm rerun is byte-identical
//!   (via the serialized results) and performs zero reference solves.

use lpa_arith::Dd;
use lpa_dense::DMatrix;
use lpa_experiments::persist::{
    decode_outcome, decode_reference, encode_outcome, encode_reference,
};
use lpa_experiments::{
    EigenErrors, ExperimentConfig, ExperimentPlan, FormatTag, Outcome, Reference,
};
use lpa_store::{ArtifactKind, Store};
use proptest::prelude::*;

fn dd_bits_eq(a: Dd, b: Dd) -> bool {
    a.hi.to_bits() == b.hi.to_bits() && a.lo.to_bits() == b.lo.to_bits()
}

/// Decode an arbitrary byte pair into one of the three outcome variants
/// with arbitrary (possibly NaN/inf) error values.
fn arbitrary_outcome(variant: u8, bits_a: u64, bits_b: u64) -> Outcome {
    match variant % 3 {
        0 => Outcome::Errors(EigenErrors {
            eigenvalue_rel: f64::from_bits(bits_a),
            eigenvector_rel: f64::from_bits(bits_b),
        }),
        1 => Outcome::NotConverged,
        _ => Outcome::RangeExceeded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn outcome_codec_round_trips_all_variants(
        variant in any::<u8>(),
        bits_a in any::<u64>(),
        bits_b in any::<u64>(),
    ) {
        let outcome = arbitrary_outcome(variant, bits_a, bits_b);
        let back = decode_outcome(&encode_outcome(&outcome));
        prop_assert!(back.is_ok(), "{back:?}");
        match (outcome, back.unwrap()) {
            (Outcome::Errors(a), Outcome::Errors(b)) => {
                prop_assert_eq!(a.eigenvalue_rel.to_bits(), b.eigenvalue_rel.to_bits());
                prop_assert_eq!(a.eigenvector_rel.to_bits(), b.eigenvector_rel.to_bits());
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn reference_codec_round_trips_any_shape(seed in any::<u64>(), n in any::<u8>(), k in any::<u8>()) {
        // n×k eigenvector matrices with 0..=5 pairs (k = 0 gives the empty
        // reference; n ≠ k keeps them rectangular), entries raw bit noise.
        let n = (n % 8) as usize;
        let k = (k % 6) as usize;
        let mut rng = TestRng::seed_from_u64(seed);
        let reference = Reference {
            eigenvalues: (0..k)
                .map(|_| Dd { hi: f64::from_bits(rng.next_u64()), lo: f64::from_bits(rng.next_u64()) })
                .collect(),
            eigenvectors: DMatrix::from_fn(n, k, |_, _| Dd {
                hi: f64::from_bits(rng.next_u64()),
                lo: f64::from_bits(rng.next_u64()),
            }),
            sign_anchor: (0..k).map(|j| j % n.max(1)).collect(),
        };
        let bytes = encode_reference(&Some(reference.clone()));
        let back = decode_reference(&bytes);
        prop_assert!(back.is_ok(), "{back:?}");
        let back = back.unwrap().expect("present reference");
        prop_assert_eq!(&back.sign_anchor, &reference.sign_anchor);
        prop_assert_eq!(back.eigenvalues.len(), k);
        for (a, b) in back.eigenvalues.iter().zip(&reference.eigenvalues) {
            prop_assert!(dd_bits_eq(*a, *b));
        }
        prop_assert_eq!(back.eigenvectors.nrows(), n);
        prop_assert_eq!(back.eigenvectors.ncols(), k);
        for j in 0..k {
            for i in 0..n {
                prop_assert!(dd_bits_eq(back.eigenvectors[(i, j)], reference.eigenvectors[(i, j)]));
            }
        }
    }
}

#[test]
fn undecodable_artifacts_are_healed_not_fatal() {
    // A checksum-valid artifact whose *payload* no longer decodes (schema
    // drift without a salt bump) must be recomputed and overwritten, not
    // crash the run.
    let corpus: Vec<lpa_datagen::TestMatrix> =
        lpa_datagen::general_corpus(&lpa_datagen::CorpusConfig {
            scale: 1,
            size_range: (30, 40),
            ..lpa_datagen::CorpusConfig::tiny()
        })
        .into_iter()
        .filter(|t| t.category == "lap1d")
        .take(1)
        .collect();
    assert_eq!(corpus.len(), 1);
    let formats = [FormatTag::Float64];
    let cfg = ExperimentConfig {
        eigenvalue_count: 4,
        eigenvalue_buffer_count: 2,
        max_restarts: 60,
        ..Default::default()
    };
    let baseline = ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).run();

    let dir = std::env::temp_dir().join(format!("lpa-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let ref_key = lpa_experiments::persist::reference_key(&corpus[0].matrix, &cfg);
    let out_key =
        lpa_experiments::persist::outcome_key(&corpus[0].matrix, FormatTag::Float64, &cfg);
    // Valid containers, garbage payloads (0xEE is no known tag).
    store.put(ArtifactKind::Reference, ref_key, vec![0xEE, 1, 2, 3]).unwrap();
    store.put(ArtifactKind::Outcome, out_key, vec![0xEE]).unwrap();

    let healed_run =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).store(&store).run();
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&healed_run).unwrap()
    );
    // Both artifacts were rewritten and now decode cleanly.
    let fresh = Store::open(&dir).unwrap();
    let ref_bytes = fresh.get(ArtifactKind::Reference, ref_key).unwrap().expect("present");
    assert!(decode_reference(&ref_bytes).unwrap().is_some());
    let out_bytes = fresh.get(ArtifactKind::Outcome, out_key).unwrap().expect("present");
    decode_outcome(&out_bytes).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_rerun_is_byte_identical_and_solves_no_references() {
    let corpus: Vec<lpa_datagen::TestMatrix> =
        lpa_datagen::general_corpus(&lpa_datagen::CorpusConfig {
            scale: 1,
            size_range: (30, 40),
            ..lpa_datagen::CorpusConfig::tiny()
        })
        .into_iter()
        .filter(|t| t.category == "lap1d" || t.category == "diagdom")
        .collect();
    assert!(corpus.len() >= 3);
    let formats = [FormatTag::Float64, FormatTag::Takum16, FormatTag::Ofp8E4M3];
    let cfg = ExperimentConfig {
        eigenvalue_count: 4,
        eigenvalue_buffer_count: 2,
        max_restarts: 60,
        ..Default::default()
    };

    let dir = std::env::temp_dir().join(format!("lpa-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Baseline without any store, then a cold populating run, then a warm
    // run through a fresh handle (second harness process in spirit).
    let baseline = ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).run();
    let cold_store = Store::open(&dir).unwrap();
    let cold =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).store(&cold_store).run();
    let warm_store = Store::open(&dir).unwrap();
    let warm =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).store(&warm_store).run();

    // The store must be transparent: all three serializations identical.
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    assert_eq!(baseline_json, serde_json::to_string(&cold).unwrap());
    assert_eq!(baseline_json, serde_json::to_string(&warm).unwrap());

    // Cold run: every reference and outcome was a miss (computed once).
    let matrices = corpus.len() as u64;
    let cold_ref = cold_store.stats().snapshot(ArtifactKind::Reference);
    assert_eq!(cold_ref.misses, matrices);
    assert_eq!(cold_ref.hits(), 0);

    // Warm run: zero double-double solves, 100% hits, all from disk.
    let warm_ref = warm_store.stats().snapshot(ArtifactKind::Reference);
    assert_eq!(warm_ref.misses, 0, "warm run must not solve any reference");
    assert_eq!(warm_ref.hits(), matrices);
    let warm_out = warm_store.stats().snapshot(ArtifactKind::Outcome);
    assert_eq!(warm_out.misses, 0, "warm run must not rerun any format");
    assert_eq!(
        warm_out.hits(),
        (cold.matrices.len() * formats.len()) as u64,
        "one outcome hit per (kept matrix, format)"
    );

    // The populated store passes a full verification sweep.
    let report = lpa_store::admin::verify(&dir).unwrap();
    assert_eq!(report.ok as u64, cold_ref.misses + cold_store.stats().snapshot(ArtifactKind::Outcome).misses);
    assert!(report.corrupt.is_empty(), "{:?}", report.corrupt);

    std::fs::remove_dir_all(&dir).unwrap();
}
