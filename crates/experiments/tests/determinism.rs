//! The parallel driver must be bit-deterministic: the same corpus, formats
//! and config must produce an identical `ExperimentResults` — including its
//! serialization — whether the (matrix × format) grid runs on one thread or
//! many.
//!
//! Kept as a single test in its own integration binary because it toggles
//! the process-global `RAYON_NUM_THREADS` variable.

use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{run_experiment, ExperimentConfig, FormatTag};

#[test]
fn parallel_results_identical_to_serial() {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(5)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the fan-out");
    // A mix of all three emulated backends plus native.
    let formats = [
        FormatTag::Ofp8E4M3,
        FormatTag::Takum8,
        FormatTag::Float16,
        FormatTag::Posit16,
        FormatTag::Float64,
    ];
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_experiment(&corpus, &formats, &cfg);
    // Pin an explicit thread count > 1 so the threaded path runs even on a
    // single-core machine (the shim would otherwise fall back to inline).
    std::env::set_var("RAYON_NUM_THREADS", "3");
    let parallel = run_experiment(&corpus, &formats, &cfg);
    // Run the grid a second time in parallel: OnceLock LUT initialization
    // raced on first use must not change anything either.
    let parallel_again = run_experiment(&corpus, &formats, &cfg);
    std::env::remove_var("RAYON_NUM_THREADS");

    let s = serde_json::to_string(&serial).expect("serialize serial results");
    let p = serde_json::to_string(&parallel).expect("serialize parallel results");
    let p2 = serde_json::to_string(&parallel_again).expect("serialize repeat results");
    assert_eq!(s, p, "serial and parallel drivers diverged");
    assert_eq!(p, p2, "repeated parallel runs diverged");
    assert_eq!(serial.matrices.len() + serial.skipped.len(), corpus.len());
    for m in &serial.matrices {
        assert_eq!(m.outcomes.len(), formats.len());
    }
}
