//! The parallel session must be bit-deterministic: the same plan must
//! produce an identical `ExperimentResults` — including its serialization —
//! whether the (matrix × format) grid runs on one thread or many, and
//! whether the thread budget comes from the plan's `threads` knob or the
//! `RAYON_NUM_THREADS` environment variable.
//!
//! Kept as a single test in its own integration binary because it toggles
//! the process-global `RAYON_NUM_THREADS` variable.

use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{ExperimentConfig, ExperimentPlan, FormatTag};

#[test]
fn parallel_results_identical_to_serial() {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(5)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the fan-out");
    // A mix of all three emulated backends plus native.
    let formats = [
        FormatTag::Ofp8E4M3,
        FormatTag::Takum8,
        FormatTag::Float16,
        FormatTag::Posit16,
        FormatTag::Float64,
    ];
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };
    let plan = || ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone());

    // Serial via the environment knob (the rayon shim honours it on every
    // call), parallel via the plan's thread budget — which must outrank it.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = plan().run();
    let parallel = plan().threads(3).run();
    std::env::remove_var("RAYON_NUM_THREADS");
    // Run the grid a second time in parallel: OnceLock LUT initialization
    // raced on first use must not change anything either.
    let parallel_again = plan().threads(3).run();

    let s = serde_json::to_string(&serial).expect("serialize serial results");
    let p = serde_json::to_string(&parallel).expect("serialize parallel results");
    let p2 = serde_json::to_string(&parallel_again).expect("serialize repeat results");
    assert_eq!(s, p, "serial and parallel sessions diverged");
    assert_eq!(p, p2, "repeated parallel runs diverged");
    assert_eq!(serial.matrices.len() + serial.skipped.len(), corpus.len());
    for m in &serial.matrices {
        assert_eq!(m.outcomes.len(), formats.len());
    }
}
