//! Byte-stability contract of the versioned-numerics key derivation.
//!
//! Keys used to hash one monolithic `CODE_VERSION_SALT`; they now hash the
//! per-slice key material of a [`NumericsConfig`]. Two properties keep the
//! migration honest over arbitrary (matrix, options, format) inputs:
//!
//! 1. **Warm-store compatibility**: at the baseline table the new
//!    derivation reproduces the old salt-based addresses bit-for-bit (the
//!    old derivation is reimplemented here, literal salt and all, from the
//!    pre-table code). Every pre-migration store stays fully warm.
//! 2. **Surgical invalidation**: bumping a single feature version changes
//!    a key *iff* the feature is relevant to that artifact's slice —
//!    nothing else moves.

use lpa_experiments::persist::{format_id, outcome_key_with, reference_key_with};
use lpa_experiments::{ExperimentConfig, FormatTag};
use lpa_numerics::{relevant_features, Feature, NumericsConfig, Slice};
use lpa_sparse::CsrMatrix;
use lpa_store::{Hasher128, Key};
use proptest::prelude::*;

/// The pre-table monolithic salt, as a literal: this file must keep
/// reproducing the *historical* byte stream even if the constants move.
const OLD_SALT: u64 = 0x6c70_6131_0000_0001;

/// The old `hash_config`: the salt first, then the solver options.
fn old_hash_config(h: &mut Hasher128, cfg: &ExperimentConfig) {
    h.write_u64(OLD_SALT);
    h.write_usize(cfg.eigenvalue_count);
    h.write_usize(cfg.eigenvalue_buffer_count);
    h.write_u8(which_id(cfg.which));
    h.write_f64_bits(cfg.reference_tol);
    h.write_usize(cfg.max_restarts);
    h.write_u64(cfg.seed);
}

fn which_id(which: lpa_arnoldi::Which) -> u8 {
    match which {
        lpa_arnoldi::Which::LargestMagnitude => 0,
        lpa_arnoldi::Which::SmallestMagnitude => 1,
        lpa_arnoldi::Which::LargestReal => 2,
        lpa_arnoldi::Which::SmallestReal => 3,
    }
}

fn old_hash_matrix(h: &mut Hasher128, matrix: &CsrMatrix<f64>) {
    h.write_usize(matrix.nrows());
    h.write_usize(matrix.ncols());
    h.write_usize(matrix.nnz());
    for &p in matrix.row_ptr() {
        h.write_usize(p);
    }
    for &j in matrix.col_indices() {
        h.write_usize(j);
    }
    for &v in matrix.values() {
        h.write_f64_bits(v);
    }
}

fn old_reference_key(matrix: &CsrMatrix<f64>, cfg: &ExperimentConfig) -> Key {
    let mut h = Hasher128::new();
    h.write(b"lpa/ref");
    old_hash_config(&mut h, cfg);
    old_hash_matrix(&mut h, matrix);
    h.finish()
}

fn old_outcome_key(matrix: &CsrMatrix<f64>, format: FormatTag, cfg: &ExperimentConfig) -> Key {
    let mut h = Hasher128::new();
    h.write(b"lpa/outcome");
    h.write_u8(format_id(format));
    old_hash_config(&mut h, cfg);
    old_hash_matrix(&mut h, matrix);
    h.finish()
}

/// A small random CSR matrix (possibly empty) deterministic in `seed`.
fn arbitrary_matrix(seed: u64, n: usize, nnz: usize) -> CsrMatrix<f64> {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let i = (rng.next_u64() as usize) % n.max(1);
        let j = (rng.next_u64() as usize) % n.max(1);
        // Raw bit noise: key derivation must be exact on any f64 pattern.
        triplets.push((i, j, f64::from_bits(rng.next_u64())));
    }
    triplets.sort_by_key(|t| (t.0, t.1));
    triplets.dedup_by_key(|t| (t.0, t.1));
    CsrMatrix::from_triplets(n, n, &triplets)
}

fn arbitrary_config(seed: u64) -> ExperimentConfig {
    let mut rng = TestRng::seed_from_u64(seed);
    let which = match rng.next_u64() % 4 {
        0 => lpa_arnoldi::Which::LargestMagnitude,
        1 => lpa_arnoldi::Which::SmallestMagnitude,
        2 => lpa_arnoldi::Which::LargestReal,
        _ => lpa_arnoldi::Which::SmallestReal,
    };
    ExperimentConfig {
        eigenvalue_count: 1 + (rng.next_u64() as usize) % 12,
        eigenvalue_buffer_count: (rng.next_u64() as usize) % 4,
        which,
        reference_tol: f64::from_bits(rng.next_u64()),
        max_restarts: (rng.next_u64() as usize) % 1000,
        seed: rng.next_u64(),
        ..ExperimentConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Property 1: every pre-migration address is reproduced exactly.
    #[test]
    fn baseline_table_reproduces_the_old_salt_addresses(
        mat_seed in any::<u64>(),
        cfg_seed in any::<u64>(),
        shape in any::<u64>(),
    ) {
        // The vendored proptest has no integer-range strategies; derive
        // the small shape parameters from one u64.
        let n = 1 + (shape % 9) as usize;
        let nnz = ((shape >> 8) % 24) as usize;
        let format_idx = ((shape >> 16) % 14) as usize;
        let matrix = arbitrary_matrix(mat_seed, n, nnz);
        let cfg = arbitrary_config(cfg_seed);
        let format = FormatTag::all()[format_idx];
        let baseline = NumericsConfig::baseline();

        prop_assert_eq!(
            old_reference_key(&matrix, &cfg),
            reference_key_with(&baseline, &matrix, &cfg),
            "reference address moved at the baseline table"
        );
        prop_assert_eq!(
            old_outcome_key(&matrix, format, &cfg),
            outcome_key_with(&baseline, &matrix, format, &cfg),
            "outcome address moved at the baseline table"
        );
        // The builtin table is currently all-baseline, so the pipeline's
        // public derivation agrees too (no LPA_NUMERICS_BUMP in tests).
        prop_assert_eq!(
            old_reference_key(&matrix, &cfg),
            lpa_experiments::persist::reference_key(&matrix, &cfg)
        );
        prop_assert_eq!(
            old_outcome_key(&matrix, format, &cfg),
            lpa_experiments::persist::outcome_key(&matrix, format, &cfg)
        );
    }

    /// Property 2: a single-feature bump moves a key iff the feature is
    /// relevant to that key's slice.
    #[test]
    fn single_feature_bumps_invalidate_exactly_their_slice(
        mat_seed in any::<u64>(),
        cfg_seed in any::<u64>(),
        shape in any::<u64>(),
    ) {
        let n = 1 + (shape % 7) as usize;
        let nnz = ((shape >> 8) % 16) as usize;
        let format_idx = ((shape >> 16) % 14) as usize;
        let bump_to = 2 + ((shape >> 24) % 98) as u32;
        let matrix = arbitrary_matrix(mat_seed, n, nnz);
        let cfg = arbitrary_config(cfg_seed);
        let format = FormatTag::all()[format_idx];
        let id = format_id(format);
        let baseline = NumericsConfig::baseline();
        let ref_before = reference_key_with(&baseline, &matrix, &cfg);
        let out_before = outcome_key_with(&baseline, &matrix, format, &cfg);

        for feature in Feature::all() {
            let bumped = baseline.with_version(feature, bump_to);
            let ref_moved = reference_key_with(&bumped, &matrix, &cfg) != ref_before;
            let out_moved = outcome_key_with(&bumped, &matrix, format, &cfg) != out_before;
            prop_assert_eq!(
                ref_moved,
                relevant_features(Slice::Reference).contains(&feature),
                "reference key vs relevance disagree on {}", feature.name()
            );
            prop_assert_eq!(
                out_moved,
                relevant_features(Slice::Outcome { format: Some(id) }).contains(&feature),
                "outcome key vs relevance disagree on {} for format {:?}",
                feature.name(), format
            );
        }
    }
}
