//! The incremental CSV observer must produce byte-identical output for any
//! thread count — the event sequencer releases worker events in corpus/grid
//! order, so a streaming consumer is as reproducible as the final results.

use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{CsvProgress, ExperimentConfig, ExperimentPlan, FormatTag};

#[test]
fn csv_is_identical_across_thread_counts() {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 32),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(4)
    .collect();
    assert!(corpus.len() >= 3);
    let formats = [FormatTag::Takum16, FormatTag::Posit32, FormatTag::Float64];
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };

    let run = |threads: usize| -> String {
        let csv = CsvProgress::buffered();
        let results = ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .threads(threads)
            .observer(&csv)
            .run();
        assert_eq!(results.matrices.len() + results.skipped.len(), corpus.len());
        String::from_utf8(csv.into_inner()).expect("csv is utf-8")
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "CSV progress output depends on the thread count");

    // Shape checks: a header, one row per reference resolution (computed or
    // skipped), one row per outcome.
    let lines: Vec<&str> = serial.lines().collect();
    assert_eq!(lines[0], "event,index,matrix,format,from_store");
    let references = lines.iter().filter(|l| l.starts_with("reference,") || l.starts_with("skipped,")).count();
    assert_eq!(references, corpus.len());
    let outcomes = lines.iter().filter(|l| l.starts_with("outcome,")).count();
    assert!(outcomes > 0 && outcomes % formats.len() == 0, "{outcomes} outcome rows");
    // Rows arrive in corpus/grid order: reference indices are non-decreasing.
    let mut last = 0usize;
    for l in &lines[1..] {
        if let Some(rest) = l.strip_prefix("reference,").or_else(|| l.strip_prefix("skipped,")) {
            let idx: usize = rest.split(',').next().unwrap().parse().unwrap();
            assert!(idx >= last, "reference rows out of order");
            last = idx;
        }
    }
}
