//! Contract tests of the `ExperimentPlan`/`Session` front door:
//!
//! * independently built plans for the same grid serialize
//!   byte-identically and warm-start each other's stores with zero
//!   misses, under an unchanged base salt (the salt guard — stores
//!   populated by earlier releases, including the removed
//!   `run_experiment{,_with_store}` free functions, stay valid),
//! * the `ProgressObserver` event stream has a deterministic order for
//!   any thread count and never perturbs results, and
//! * store-backed sessions report accurate served-from-store flags.

use std::sync::Mutex;

use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{
    ExperimentConfig, ExperimentPlan, FormatTag, ProgressEvent, ProgressObserver,
};
use lpa_store::Store;

fn tiny_corpus(take: usize) -> Vec<TestMatrix> {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(take)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the grid");
    corpus
}

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    }
}

/// Records every event (cloned) in delivery order.
#[derive(Default)]
struct Recorder(Mutex<Vec<ProgressEvent>>);

impl ProgressObserver for Recorder {
    fn on_event(&self, event: &ProgressEvent) {
        self.0.lock().unwrap().push(event.clone());
    }
}

impl Recorder {
    fn events(&self) -> Vec<ProgressEvent> {
        self.0.lock().unwrap().clone()
    }
}

/// The key-stability guard: plans built independently for the same grid
/// must serialize byte-identically, store artifacts included, under
/// unchanged key material (historically `CODE_VERSION_SALT`, now the
/// numerics table's base salt) — which keeps every store populated by an
/// earlier release (including the removed `run_experiment{,_with_store}`
/// free functions, which delegated to exactly these plans) warm today.
#[test]
fn independent_plans_are_byte_identical_and_share_stores() {
    // If this assertion fires, a refactor changed computed numerics (or
    // someone moved the base salt without needing to): both invalidate
    // the warm-start guarantee this test exists to protect.
    assert_eq!(lpa_numerics::BASE_SALT, 0x6c70_6131_0000_0001, "base salt must not change");

    let corpus = tiny_corpus(4);
    let formats =
        [FormatTag::Float64, FormatTag::Posit16, FormatTag::Takum8, FormatTag::Ofp8E5M2];
    let cfg = tiny_config();

    let first = ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).run();
    let second =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).session().run();
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
        "independently built plans diverged"
    );

    // Store round trip: populate through one store handle, warm-start
    // through a fresh one. Zero misses means every content-address
    // matched.
    let dir = std::env::temp_dir().join(format!("lpa-session-api-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cold_store = Store::open(&dir).unwrap();
    let cold = ExperimentPlan::over(&corpus)
        .formats(&formats)
        .config(cfg.clone())
        .store(&cold_store)
        .run();
    let warm_store = Store::open(&dir).unwrap();
    let warm = ExperimentPlan::over(&corpus)
        .formats(&formats)
        .config(cfg.clone())
        .store(&warm_store)
        .run();
    assert_eq!(serde_json::to_string(&cold).unwrap(), serde_json::to_string(&warm).unwrap());
    let refs = warm_store.stats().snapshot(lpa_store::ArtifactKind::Reference);
    assert_eq!(refs.misses, 0, "persisted artifacts must warm-start a fresh handle");
    assert_eq!(refs.hits(), corpus.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Observer event ordering is deterministic: one worker thread or many,
/// the stream is identical — and attaching an observer never changes the
/// results.
#[test]
fn event_order_is_deterministic_across_thread_counts() {
    let corpus = tiny_corpus(5);
    let formats = [FormatTag::Float64, FormatTag::Takum16, FormatTag::Ofp8E4M3];
    let cfg = tiny_config();

    let unobserved =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).threads(4).run();

    let run_recorded = |threads: usize| {
        let recorder = Recorder::default();
        let results = ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .threads(threads)
            .observer(&recorder)
            .run();
        (recorder.events(), results)
    };
    let (serial_events, serial_results) = run_recorded(1);
    let (parallel_events, parallel_results) = run_recorded(4);

    assert_eq!(serial_events, parallel_events, "event stream depends on thread count");
    assert_eq!(
        serde_json::to_string(&serial_results).unwrap(),
        serde_json::to_string(&parallel_results).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&unobserved).unwrap(),
        serde_json::to_string(&parallel_results).unwrap(),
        "attaching an observer changed the results"
    );

    // Structural invariants of the stream.
    let events = serial_events;
    assert!(
        matches!(events.first(), Some(ProgressEvent::GridStarted { matrices, formats: nf })
            if *matrices == corpus.len() && *nf == formats.len()),
        "{events:?}"
    );
    let kept = serial_results.matrices.len();
    let skipped = serial_results.skipped.len();
    assert!(
        matches!(events.last(), Some(ProgressEvent::GridFinished { matrices, skipped: s, outcomes })
            if *matrices == kept && *s == skipped && *outcomes == kept * formats.len()),
        "{events:?}"
    );
    // References stream strictly in corpus order, one started + one
    // resolution event per matrix, all before the first outcome.
    let mut expected_index = 0;
    let mut outcome_count = 0;
    for event in &events {
        match event {
            ProgressEvent::ReferenceStarted { index, matrix } => {
                assert_eq!(*index, expected_index, "references out of corpus order");
                assert_eq!(*matrix, corpus[*index].name);
                assert_eq!(outcome_count, 0, "reference events must precede outcomes");
            }
            ProgressEvent::ReferenceComputed { index, .. }
            | ProgressEvent::MatrixSkipped { index, .. } => {
                assert_eq!(*index, expected_index);
                if let ProgressEvent::ReferenceComputed { from_store, .. } = event {
                    assert!(!from_store, "no store attached, nothing can be served from one");
                }
                expected_index += 1;
            }
            ProgressEvent::OutcomeComputed { .. } => outcome_count += 1,
            _ => {}
        }
    }
    assert_eq!(expected_index, corpus.len());
    assert_eq!(outcome_count, kept * formats.len());
}

/// With a persistent store attached, the second run's events all carry
/// `from_store: true`.
#[test]
fn store_hits_are_reported_in_events() {
    let corpus = tiny_corpus(3);
    let formats = [FormatTag::Float64, FormatTag::Posit8];
    let cfg = tiny_config();
    let dir = std::env::temp_dir().join(format!("lpa-session-events-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |store: &Store| {
        let recorder = Recorder::default();
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .store(store)
            .observer(&recorder)
            .run();
        recorder.events()
    };
    let cold_store = Store::open(&dir).unwrap();
    let cold = run(&cold_store);
    let warm_store = Store::open(&dir).unwrap();
    let warm = run(&warm_store);

    let from_store_flags = |events: &[ProgressEvent]| -> Vec<bool> {
        events
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::ReferenceComputed { from_store, .. }
                | ProgressEvent::OutcomeComputed { from_store, .. } => Some(*from_store),
                _ => None,
            })
            .collect()
    };
    let cold_flags = from_store_flags(&cold);
    let warm_flags = from_store_flags(&warm);
    assert!(!cold_flags.is_empty());
    assert_eq!(cold_flags.len(), warm_flags.len());
    assert!(cold_flags.iter().all(|&f| !f), "cold run found artifacts in an empty store");
    assert!(warm_flags.iter().all(|&f| f), "warm run recomputed something");
    std::fs::remove_dir_all(&dir).unwrap();
}
