//! End-to-end fault tolerance at the session level: an injected solver
//! panic is isolated to its cell (every other cell's serialized outcome is
//! byte-identical to a fault-free run), timed-out and crashed cells are
//! never persisted, and transient store I/O faults are retried away.
//!
//! The fault registry is process-global; every test here holds a
//! [`FaultScope`] for its entire body (an `off` trigger makes a section
//! effectively fault-free while still serializing against the other
//! tests), so no test observes another's armed spec.

use std::time::Duration;

use lpa_experiments::persist::encode_outcome;
use lpa_experiments::{ExperimentConfig, ExperimentPlan, FormatTag};
use lpa_faults::FaultScope;
use lpa_store::{ArtifactKind, Store};

fn tiny_corpus(categories: &[&str]) -> Vec<lpa_datagen::TestMatrix> {
    lpa_datagen::general_corpus(&lpa_datagen::CorpusConfig {
        scale: 1,
        size_range: (30, 40),
        ..lpa_datagen::CorpusConfig::tiny()
    })
    .into_iter()
    .filter(|t| categories.contains(&t.category.as_str()))
    .collect()
}

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        eigenvalue_count: 4,
        eigenvalue_buffer_count: 2,
        max_restarts: 60,
        ..Default::default()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lpa-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `solver.panic=once` fault crashes exactly one cell; the grid completes
/// degraded, the crash is never persisted, and a clean rerun through the
/// same store heals it — every surviving cell byte-identical to a fault-free
/// run throughout.
#[test]
fn solver_panic_is_isolated_to_one_cell() {
    let corpus = tiny_corpus(&["lap1d", "diagdom"]);
    assert!(corpus.len() >= 2, "need at least two matrices to prove isolation");
    let formats = [FormatTag::Float64, FormatTag::Takum16];
    let cfg = tiny_config();

    // Fault-free baseline (scope held with an `off` trigger: serialized
    // against the other tests, fires nothing).
    let baseline = {
        let _quiet = FaultScope::arm("solver.panic=off");
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).threads(1).run()
    };
    assert!(!baseline.is_degraded());

    // Armed run: with one worker thread, the first solve in the grid — the
    // reference of matrix 0 — takes the `once` panic.
    let dir = scratch_dir("panic");
    let store = Store::open(&dir).unwrap();
    let degraded = {
        let _armed = FaultScope::arm("solver.panic=once");
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .threads(1)
            .store(&store)
            .run()
    };
    assert!(degraded.is_degraded());
    assert_eq!(degraded.crashed, vec![corpus[0].name.clone()], "exactly the first reference");
    assert_eq!(degraded.matrices.len() + degraded.skipped.len() + 1, corpus.len());

    // Every surviving cell's *serialized* outcome is byte-identical to the
    // fault-free run's.
    for survivor in &degraded.matrices {
        let in_baseline = baseline
            .matrices
            .iter()
            .find(|m| m.name == survivor.name)
            .expect("survivor present in baseline");
        for ((fa, oa), (fb, ob)) in survivor.outcomes.iter().zip(&in_baseline.outcomes) {
            assert_eq!(fa, fb);
            assert_eq!(
                encode_outcome(oa),
                encode_outcome(ob),
                "{}/{:?} diverged under an unrelated fault",
                survivor.name,
                fa
            );
        }
    }

    // The crashed cell persisted nothing: the store holds artifacts only
    // for the surviving matrices.
    let refs = store.stats().snapshot(ArtifactKind::Reference);
    assert_eq!(refs.misses as usize, degraded.matrices.len() + degraded.skipped.len());

    // A clean rerun through the same store heals the crashed cell and is
    // byte-identical to the baseline.
    let healed = {
        let _quiet = FaultScope::arm("solver.panic=off");
        let warm = Store::open(&dir).unwrap();
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .threads(1)
            .store(&warm)
            .run()
    };
    assert!(!healed.is_degraded());
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&healed).unwrap()
    );
    let report = lpa_store::admin::verify(&dir).unwrap();
    assert!(report.corrupt.is_empty(), "{:?}", report.corrupt);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cell deadline of effectively zero times out every reference solve;
/// nothing is persisted (TimedOut is ephemeral), and dropping the deadline
/// recovers the full grid.
#[test]
fn timed_out_cells_are_never_persisted() {
    let _quiet = FaultScope::arm("solver.panic=off");
    let corpus = tiny_corpus(&["lap1d"]);
    assert!(!corpus.is_empty());
    let formats = [FormatTag::Float64];
    let cfg = tiny_config();

    let dir = scratch_dir("deadline");
    let store = Store::open(&dir).unwrap();
    let timed_out = ExperimentPlan::over(&corpus)
        .formats(&formats)
        .config(cfg.clone())
        .cell_deadline(Duration::from_nanos(1))
        .store(&store)
        .run();
    assert!(timed_out.is_degraded());
    assert_eq!(timed_out.crashed.len(), corpus.len(), "every reference hit the deadline");
    assert!(timed_out.matrices.is_empty());
    let refs = store.stats().snapshot(ArtifactKind::Reference);
    let outs = store.stats().snapshot(ArtifactKind::Outcome);
    assert_eq!(refs.misses + outs.misses, 0, "timed-out cells must not persist");

    // Without the deadline, the same plan and store produce the full grid,
    // identical to a store-free baseline.
    let baseline = ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).run();
    let recovered =
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).store(&store).run();
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&recovered).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A transient I/O fault on the store is retried away inside the store
/// layer: the run completes with the exact baseline results and the retry
/// budget from `ExperimentPlan::retry` is restored afterwards.
#[test]
fn transient_store_faults_are_retried_away() {
    let corpus = tiny_corpus(&["lap1d"]);
    let formats = [FormatTag::Float64];
    let cfg = tiny_config();
    let baseline = {
        let _quiet = FaultScope::arm("store.io.transient=off");
        ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone()).run()
    };

    let dir = scratch_dir("transient");
    let store = Store::open(&dir).unwrap();
    let default_budget = store.io_retries();
    let results = {
        let _armed = FaultScope::arm("store.io.transient=once");
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .retry(4)
            .store(&store)
            .run()
    };
    assert!(!results.is_degraded(), "a retried transient fault must not degrade the grid");
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&results).unwrap()
    );
    assert_eq!(store.io_retries(), default_budget, "RetryGuard restores the budget");
    std::fs::remove_dir_all(&dir).unwrap();
}
