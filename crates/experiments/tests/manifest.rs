//! Contract tests of the `run_manifest/v1` artifact:
//!
//! * every emitted manifest passes `manifest::validate`,
//! * the timing-masked manifest is byte-identical across thread counts
//!   (matching store state — here: no store),
//! * the `stable_view` (plan + grid) is byte-identical across kernel
//!   engines and store states (warm vs cold),
//! * served-from-store flags and span sections report truthfully.

use lpa_arith::KernelBatch;
use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{manifest, ExperimentConfig, ExperimentPlan, FormatTag};
use lpa_store::Store;
use serde::Value;

fn tiny_corpus(take: usize) -> Vec<TestMatrix> {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(take)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the grid");
    corpus
}

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    }
}

/// The `run.cells` records of a manifest.
fn cells(manifest_value: &Value) -> &[Value] {
    manifest_value
        .get("run")
        .and_then(|r| r.get("cells"))
        .and_then(|c| c.as_seq())
        .expect("run.cells is an array")
}

#[test]
fn timing_masked_manifest_is_identical_across_thread_counts() {
    let corpus = tiny_corpus(4);
    let formats = [FormatTag::Float64, FormatTag::Takum16, FormatTag::Ofp8E4M3];
    let cfg = tiny_config();

    let run = |threads: usize| {
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .threads(threads)
            .session()
            .run_with_manifest()
            .1
    };
    let serial = run(1);
    let parallel = run(4);
    manifest::validate(serial.value()).unwrap();
    manifest::validate(parallel.value()).unwrap();

    // Everything except wall times and the thread knob must match — record
    // order included (references in corpus order, cells matrix-major).
    assert_eq!(
        serde_json::to_string_pretty(&serial.timing_masked()).unwrap(),
        serde_json::to_string_pretty(&parallel.timing_masked()).unwrap(),
        "non-timing manifest fields depend on thread count"
    );
}

#[test]
fn stable_view_is_identical_across_engines_and_store_states() {
    let corpus = tiny_corpus(3);
    let formats = [FormatTag::Float64, FormatTag::Posit16];
    let cfg = tiny_config();
    let dir = std::env::temp_dir().join(format!("lpa-manifest-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let batch = ExperimentPlan::over(&corpus)
        .formats(&formats)
        .config(cfg.clone())
        .kernel_batch(KernelBatch::Batch)
        .session()
        .run_with_manifest()
        .1;
    let scalar = ExperimentPlan::over(&corpus)
        .formats(&formats)
        .config(cfg.clone())
        .kernel_batch(KernelBatch::Scalar)
        .session()
        .run_with_manifest()
        .1;

    let with_store = |store: &Store| {
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .store(store)
            .session()
            .run_with_manifest()
            .1
    };
    let cold_store = Store::open(&dir).unwrap();
    let cold = with_store(&cold_store);
    let warm_store = Store::open(&dir).unwrap();
    let warm = with_store(&warm_store);

    let stable = |m: &lpa_experiments::RunManifest| {
        serde_json::to_string_pretty(&m.stable_view()).unwrap()
    };
    assert_eq!(stable(&batch), stable(&scalar), "stable view depends on the kernel engine");
    assert_eq!(stable(&batch), stable(&cold), "stable view depends on having a store");
    assert_eq!(stable(&cold), stable(&warm), "stable view depends on store warmth");

    // The volatile section tells the two store runs apart: the cold run
    // computed every cell, the warm run served every cell from the store.
    let from_store_flags = |m: &lpa_experiments::RunManifest| -> Vec<bool> {
        cells(m.value())
            .iter()
            .map(|c| matches!(c.get("from_store"), Some(Value::Bool(true))))
            .collect()
    };
    let cold_flags = from_store_flags(&cold);
    let warm_flags = from_store_flags(&warm);
    assert!(!cold_flags.is_empty());
    assert!(cold_flags.iter().all(|&f| !f), "cold run found artifacts in an empty store");
    assert!(warm_flags.iter().all(|&f| f), "warm run recomputed something");

    // Storeless manifests carry a null store section; store-backed ones
    // carry registry counter deltas that reflect this run only.
    assert!(matches!(batch.value().get("run").and_then(|r| r.get("store")), Some(Value::Null)));
    let miss_delta = |m: &lpa_experiments::RunManifest| {
        m.value()
            .get("run")
            .and_then(|r| r.get("store"))
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get("store.reference.misses"))
            .and_then(|v| v.as_num())
            .expect("store-backed manifest has a store.reference.misses counter")
    };
    assert_eq!(miss_delta(&cold), corpus.len() as f64);
    assert_eq!(miss_delta(&warm), 0.0, "warm-run store deltas must be this run's, not totals");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_spans_follow_the_obs_gate() {
    let corpus = tiny_corpus(3);
    let formats = [FormatTag::Float64];
    let cfg = tiny_config();

    let run = |armed: bool| {
        ExperimentPlan::over(&corpus)
            .formats(&formats)
            .config(cfg.clone())
            .observability(armed)
            .session()
            .run_with_manifest()
            .1
    };
    // ObsScope serializes against other arming tests in this binary and
    // resets the ring/aggregates so each run observes only its own spans.
    let scope = lpa_obs::ObsScope::arm();
    let armed = run(true);
    drop(scope);
    let scope = lpa_obs::ObsScope::disarm();
    lpa_obs::span::reset();
    let disarmed = run(false);
    drop(scope);

    let spans = |m: &lpa_experiments::RunManifest| -> Vec<(String, f64)> {
        m.value()
            .get("run")
            .and_then(|r| r.get("spans"))
            .and_then(|s| s.as_seq())
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s.get("name").and_then(|v| v.as_str()).unwrap().to_string(),
                    s.get("count").and_then(|v| v.as_num()).unwrap(),
                )
            })
            .collect()
    };
    assert!(spans(&disarmed).is_empty(), "disarmed runs must record no spans");
    assert_eq!(
        disarmed.value().get("run").and_then(|r| r.get("observability")).and_then(|v| v.as_str()),
        Some("disarmed")
    );

    let armed_spans = spans(&armed);
    let count_of = |name: &str| {
        armed_spans.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or(0.0)
    };
    // Lower bounds, not equalities: the gate is process-global, so tests
    // running concurrently in this binary may record spans of their own
    // into the window between this run's snapshots.
    assert!(count_of(lpa_obs::REFERENCE_SOLVE) >= corpus.len() as f64, "{armed_spans:?}");
    let kept = armed
        .value()
        .get("grid")
        .and_then(|g| g.get("matrices"))
        .and_then(|m| m.as_seq())
        .unwrap()
        .len();
    assert!(count_of(lpa_obs::CELL_SOLVE) >= (kept * formats.len()) as f64, "{armed_spans:?}");
    assert!(count_of(lpa_obs::ARNOLDI_RESTART) > 0.0, "solves must record restart spans");
    assert_eq!(
        armed.value().get("run").and_then(|r| r.get("observability")).and_then(|v| v.as_str()),
        Some("armed")
    );

    // The session counter section mirrors the grid's own tallies.
    let session_counter = |m: &lpa_experiments::RunManifest, name: &str| {
        m.value()
            .get("run")
            .and_then(|r| r.get("session"))
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_num())
            .unwrap_or_else(|| panic!("missing session counter {name}"))
    };
    assert_eq!(session_counter(&armed, "session.cell.computed"), cells(armed.value()).len() as f64);
    assert_eq!(session_counter(&armed, "session.cell.crashed"), 0.0);
}

#[test]
fn manifest_out_writes_the_artifact() {
    let corpus = tiny_corpus(3);
    let path = std::env::temp_dir()
        .join(format!("lpa-manifest-out-{}", std::process::id()))
        .join("figure1")
        .join("manifest.json");
    let _ = std::fs::remove_dir_all(path.parent().unwrap().parent().unwrap());

    let (results, manifest_in_memory) = ExperimentPlan::over(&corpus)
        .formats(&[FormatTag::Float64])
        .config(tiny_config())
        .manifest_out(&path)
        .session()
        .run_with_manifest();

    let written = std::fs::read_to_string(&path).expect("manifest written to manifest_out path");
    assert_eq!(written, manifest_in_memory.to_json_pretty());
    assert!(written.ends_with('\n'), "on-disk manifest is newline-terminated");
    let parsed: Value = serde_json::from_str(&written).unwrap();
    manifest::validate(&parsed).unwrap();

    // The grid section is the results' own serialization, verbatim.
    assert_eq!(
        serde_json::to_string(parsed.get("grid").unwrap()).unwrap(),
        serde_json::to_string(&results).unwrap()
    );
    std::fs::remove_dir_all(path.parent().unwrap().parent().unwrap()).unwrap();
}
