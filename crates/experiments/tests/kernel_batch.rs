//! End-to-end guard for the batch kernel engine: a (matrix × format)
//! experiment grid run with the engine forced **off** (scalar reference)
//! and forced **on** (decoded batch kernels) must produce byte-identical
//! serialized results — both the JSON serialization of the whole
//! `ExperimentResults` and the `lpa-store` payload encoding of every
//! outcome.
//!
//! This is the proof that the engine needs no
//! [`lpa_experiments::persist::CODE_VERSION_SALT`] bump: artifacts
//! persisted by a scalar-engine (or pre-engine) run stay valid under the
//! batch engine and vice versa, so existing stores warm-start unchanged.
//!
//! The format list deliberately spans every affected backend: the 16-bit
//! unpack-once tier, the 32-bit soft-float tapered formats the engine
//! primarily targets, and native float64 as the `Dec = Self` control.
//!
//! Kept as a single test in its own integration binary because it toggles
//! the process-global kernel engine (via the plan's `kernel_batch` knob).

use lpa_arith::KernelBatch;
use lpa_datagen::{general_corpus, CorpusConfig, TestMatrix};
use lpa_experiments::{persist, ExperimentConfig, ExperimentPlan, FormatTag};

#[test]
fn batch_engine_grid_serializes_identically_to_scalar() {
    let corpus: Vec<TestMatrix> = general_corpus(&CorpusConfig {
        scale: 1,
        size_range: (24, 36),
        ..CorpusConfig::tiny()
    })
    .into_iter()
    .take(4)
    .collect();
    assert!(corpus.len() >= 3, "corpus too small to exercise the grid");
    let formats = [
        FormatTag::Posit32,
        FormatTag::Takum32,
        FormatTag::Posit16,
        FormatTag::Takum16,
        FormatTag::Float16,
        FormatTag::Bfloat16,
        FormatTag::Float64,
    ];
    let cfg = ExperimentConfig {
        eigenvalue_count: 3,
        eigenvalue_buffer_count: 2,
        max_restarts: 40,
        ..Default::default()
    };

    let plan = || ExperimentPlan::over(&corpus).formats(&formats).config(cfg.clone());
    let scalar = plan().kernel_batch(KernelBatch::Scalar).run();
    let batch = plan().kernel_batch(KernelBatch::Batch).run();

    // The whole result object, serialization included, must not change.
    let scalar_json = serde_json::to_string(&scalar).expect("serialize scalar-engine results");
    let batch_json = serde_json::to_string(&batch).expect("serialize batch-engine results");
    assert_eq!(scalar_json, batch_json, "batch kernel engine changed experiment results");

    // And neither must the store payload bytes of any outcome: this is the
    // exact encoding persisted under CODE_VERSION_SALT-derived keys.
    assert!(!scalar.matrices.is_empty(), "every reference solve failed");
    for (ms, mb) in scalar.matrices.iter().zip(&batch.matrices) {
        for ((fs, os), (fb, ob)) in ms.outcomes.iter().zip(&mb.outcomes) {
            assert_eq!(fs, fb);
            assert_eq!(
                persist::encode_outcome(os),
                persist::encode_outcome(ob),
                "persisted outcome bytes diverged for {} / {:?}",
                ms.name,
                fs
            );
        }
    }
}
