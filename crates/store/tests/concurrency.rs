//! Concurrency guarantees of the store: racing threads perform one compute
//! per key, and artifacts written by one handle are visible to a fresh
//! handle on the same directory (the "second process" case — each `Store`
//! has its own in-process cache, so a new handle must go to disk).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use lpa_store::{hash128, ArtifactKind, Store};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpa-store-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn racing_threads_compute_once_and_read_identical_bytes() {
    let dir = scratch_dir("race");
    let store = Store::open(&dir).unwrap();
    let key = hash128(b"contended-key");
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();

    const THREADS: usize = 16;
    let computes = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let bytes = store
                        .get_or_compute(ArtifactKind::Reference, key, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: every other thread must
                            // block on the slot, not find it filled by luck.
                            std::thread::sleep(Duration::from_millis(20));
                            payload.clone()
                        })
                        .unwrap();
                    (*bytes).clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(computes.load(Ordering::SeqCst), 1, "compute must run exactly once");
    assert_eq!(results.len(), THREADS);
    for r in &results {
        assert_eq!(r, &payload, "every racer must read identical bytes");
    }
    let s = store.stats().snapshot(ArtifactKind::Reference);
    assert_eq!(s.misses, 1);
    assert_eq!(s.hits(), THREADS as u64 - 1);

    // A second process-style open of the same directory sees the artifact.
    let second = Store::open(&dir).unwrap();
    let got = second.get(ArtifactKind::Reference, key).unwrap().expect("artifact on disk");
    assert_eq!(&*got, &payload);
    let s2 = second.stats().snapshot(ArtifactKind::Reference);
    assert_eq!((s2.hits_disk, s2.hits_mem, s2.misses), (1, 0, 0));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_handles_racing_on_one_directory_leave_valid_identical_artifacts() {
    // Two Store handles on one directory stand in for two concurrent
    // harness processes: both may compute the same keys (single-flight is
    // per-process), but the atomic tmp+rename writes must leave exactly one
    // valid artifact per key and readers must never observe torn bytes.
    let dir = scratch_dir("two-handles");
    let a = Store::open(&dir).unwrap();
    let b = Store::open(&dir).unwrap();
    const KEYS: usize = 32;
    let payload_for = |i: usize| vec![i as u8; 512 + i];

    std::thread::scope(|scope| {
        for handle in [&a, &b] {
            scope.spawn(move || {
                for i in 0..KEYS {
                    let key = hash128(format!("shared-{i}").as_bytes());
                    let bytes = handle
                        .get_or_compute(ArtifactKind::Outcome, key, || payload_for(i))
                        .unwrap();
                    assert_eq!(&*bytes, &payload_for(i));
                }
            });
        }
    });

    // Every artifact on disk is complete and checksums clean.
    let report = lpa_store::admin::verify(&dir).unwrap();
    assert_eq!(report.ok, KEYS);
    assert!(report.corrupt.is_empty(), "{:?}", report.corrupt);
    // And a third handle reads every key back.
    let c = Store::open(&dir).unwrap();
    for i in 0..KEYS {
        let key = hash128(format!("shared-{i}").as_bytes());
        let got = c.get(ArtifactKind::Outcome, key).unwrap().expect("present");
        assert_eq!(&*got, &payload_for(i));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
