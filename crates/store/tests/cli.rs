//! End-to-end tests of the `lpa-store` administration CLI, driving the
//! real binary (`CARGO_BIN_EXE_lpa-store`) against scratch stores.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, SystemTime};

use lpa_store::{hash128, ArtifactKind, Store};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lpa-store"))
        .args(args)
        .output()
        .expect("spawn lpa-store CLI")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn scratch_store(tag: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!(
        "lpa-store-cli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    (dir, store)
}

fn fill(store: &Store, n: usize) {
    for i in 0..n {
        let key = hash128(format!("cli-artifact-{i}").as_bytes());
        let kind = if i % 2 == 0 { ArtifactKind::Reference } else { ArtifactKind::Outcome };
        store.put(kind, key, vec![i as u8; 100]).unwrap();
    }
}

fn backdate(path: &Path, secs: u64) {
    let old = SystemTime::now() - Duration::from_secs(secs);
    let file = std::fs::File::options().write(true).open(path).unwrap();
    file.set_times(std::fs::FileTimes::new().set_modified(old)).unwrap();
}

#[test]
fn stats_and_verify_report_a_healthy_store() {
    let (dir, store) = scratch_store("stats");
    fill(&store, 4);
    let dir_str = dir.to_str().unwrap();

    let out = cli(&["stats", dir_str]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("reference"), "{text}");
    assert!(text.contains("outcome"), "{text}");

    let out = cli(&["verify", dir_str]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("verified 4 artifacts"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn verify_fails_on_corruption() {
    let (dir, store) = scratch_store("verify-bad");
    fill(&store, 3);
    let victim = store.path_of(hash128(b"cli-artifact-1"));
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 1;
    std::fs::write(&victim, bytes).unwrap();

    let out = cli(&["verify", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "corruption is exit 1, not usage");
    // Per-kind breakdown: cli-artifact-1 is an Outcome.
    let text = stdout(&out);
    assert!(text.contains("1 corrupt"), "{text}");
    assert!(text.contains("outcome=1"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repair_quarantines_and_reports() {
    let (dir, store) = scratch_store("repair");
    fill(&store, 4);
    let victim = store.path_of(hash128(b"cli-artifact-2"));
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[50] ^= 0xff;
    std::fs::write(&victim, bytes).unwrap();
    let dir_str = dir.to_str().unwrap();

    // Repair finds the damage (exit 1), moves it aside, reports greppably.
    let out = cli(&["verify", dir_str, "--repair"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("repair: quarantined 1 corrupt files"), "{text}");
    assert!(text.contains("reference=1"), "{text}");
    assert!(!victim.exists(), "damaged file moved to quarantine");

    // The store is clean now; stats shows the quarantined file.
    let out = cli(&["verify", dir_str]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("verified 3 artifacts"), "{}", stdout(&out));
    let out = cli(&["stats", dir_str]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("quarantine"), "{text}");
    assert!(text.contains("1 files"), "{text}");

    // Unknown verify flag is a usage error.
    let out = cli(&["verify", dir_str, "--heal"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_json_emits_the_registry_schema() {
    let (dir, store) = scratch_store("stats-json");
    fill(&store, 4);
    let out = cli(&["stats", dir.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{out:?}");
    let value: serde::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(
        value.get("schema").and_then(|v| v.as_str()),
        Some(lpa_obs::REGISTRY_SCHEMA),
        "stats --json uses the shared registry schema"
    );
    let counters = value.get("counters").and_then(|v| v.as_map()).unwrap();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_num())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("store.reference.artifacts"), 2.0);
    assert_eq!(counter("store.outcome.artifacts"), 2.0);
    assert_eq!(counter("store.invalid"), 0.0);
    assert_eq!(counter("store.quarantine.files"), 0.0);
    // Name-sorted map: scripts can diff two outputs textually.
    let names: Vec<&String> = counters.iter().map(|(k, _)| k).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);

    // Unknown extra flag is still a usage error.
    let out = cli(&["stats", dir.to_str().unwrap(), "--yaml"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn verify_json_keeps_the_corruption_exit_code() {
    let (dir, store) = scratch_store("verify-json");
    fill(&store, 3);
    let dir_str = dir.to_str().unwrap();

    let out = cli(&["verify", dir_str, "--json"]);
    assert!(out.status.success(), "{out:?}");
    let value: serde::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let counters = value.get("counters").and_then(|v| v.as_map()).unwrap();
    let counter = |counters: &[(String, serde::Value)], name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_num())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter(counters, "store.verify.ok"), 3.0);
    assert_eq!(counter(counters, "store.verify.corrupt"), 0.0);

    // Corrupt one artifact: --json still exits 1 so CI assertions hold.
    let victim = store.path_of(hash128(b"cli-artifact-1"));
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 1;
    std::fs::write(&victim, bytes).unwrap();
    let out = cli(&["verify", dir_str, "--json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let value: serde::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let counters = value.get("counters").and_then(|v| v.as_map()).unwrap();
    assert_eq!(counter(counters, "store.verify.ok"), 2.0);
    assert_eq!(counter(counters, "store.verify.corrupt"), 1.0);
    assert_eq!(counter(counters, "store.outcome.corrupt"), 1.0);
    assert_eq!(counter(counters, "store.reference.corrupt"), 0.0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_store_directory_is_a_usage_error() {
    let out = cli(&["verify", "/definitely/not/a/real/store/dir"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn gc_age_policy_deletes_only_expired_artifacts() {
    let (dir, store) = scratch_store("gc-age");
    fill(&store, 5);
    for i in 0..2 {
        backdate(&store.path_of(hash128(format!("cli-artifact-{i}").as_bytes())), 7200);
    }

    let out = cli(&["gc", dir.to_str().unwrap(), "--max-age-secs", "3600"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("kept 3 artifacts"), "{text}");
    assert!(text.contains("deleted 2"), "{text}");

    let out = cli(&["verify", dir.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("verified 3 artifacts"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_age_and_bytes_compose() {
    let (dir, store) = scratch_store("gc-both");
    fill(&store, 6);
    backdate(&store.path_of(hash128(b"cli-artifact-0")), 7200);
    // Every artifact file is the same size; budget for two of the five
    // fresh survivors.
    let file_len = std::fs::metadata(store.path_of(hash128(b"cli-artifact-1"))).unwrap().len();
    let budget = (2 * file_len).to_string();

    let out = cli(&[
        "gc",
        dir.to_str().unwrap(),
        "--max-age-secs",
        "3600",
        "--max-bytes",
        &budget,
    ]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("kept 2 artifacts"), "{text}");
    assert!(text.contains("deleted 4"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_without_a_limit_is_a_usage_error() {
    let (dir, _store) = scratch_store("gc-empty");
    let out = cli(&["gc", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = cli(&["gc", dir.to_str().unwrap(), "--max-bytes", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = cli(&["gc", dir.to_str().unwrap(), "--frobnicate", "1"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_stale_numerics_drops_the_bumped_slice_with_a_greppable_line() {
    let (dir, store) = scratch_store("gc-stale");
    // Baseline store: a reference plus one outcome per backend class —
    // LUT8 posit8 (id 2), batch-routed posit16 (id 6), native float64
    // (id 11).
    store.put(ArtifactKind::Reference, hash128(b"ref"), b"r".to_vec()).unwrap();
    store.put_for(ArtifactKind::Outcome, hash128(b"o-p8"), b"a".to_vec(), Some(2)).unwrap();
    store.put_for(ArtifactKind::Outcome, hash128(b"o-p16"), b"b".to_vec(), Some(6)).unwrap();
    store.put_for(ArtifactKind::Outcome, hash128(b"o-f64"), b"c".to_vec(), Some(11)).unwrap();
    let dir_str = dir.to_str().unwrap();

    // stats and verify break the store down by recorded numerics table.
    let out = cli(&["stats", dir_str]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("numerics[outcome] baseline: 3 artifacts"), "{}", stdout(&out));
    let out = cli(&["verify", dir_str]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("numerics[reference] baseline: 1 artifacts"), "{}", stdout(&out));

    // At the matching table the pass is a no-op — and says so greppably.
    let out = cli(&["gc", dir_str, "--stale-numerics"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("stale-numerics: deleted 0 stale artifacts (0 bytes)"), "{text}");
    assert!(text.contains("kept 4 artifacts"), "{text}");

    // Under a batch_round bump exactly the batch-routed outcome is stale.
    let out = Command::new(env!("CARGO_BIN_EXE_lpa-store"))
        .args(["gc", dir_str, "--stale-numerics"])
        .env("LPA_NUMERICS_BUMP", "batch_round=2")
        .output()
        .expect("spawn lpa-store CLI");
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("stale-numerics: deleted 1 stale artifacts"), "{text}");
    assert!(text.contains("kept 3 artifacts"), "{text}");
    assert!(!store.path_of(hash128(b"o-p16")).exists(), "batch-routed outcome dropped");
    assert!(store.path_of(hash128(b"o-p8")).exists());
    assert!(store.path_of(hash128(b"o-f64")).exists());
    assert!(store.path_of(hash128(b"ref")).exists());

    // A typo in the bump spec fails loudly instead of gc'ing the wrong slice.
    let out = Command::new(env!("CARGO_BIN_EXE_lpa-store"))
        .args(["gc", dir_str, "--stale-numerics"])
        .env("LPA_NUMERICS_BUMP", "batch_rond=2")
        .output()
        .expect("spawn lpa-store CLI");
    assert!(!out.status.success(), "{out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_prints_usage() {
    let out = cli(&["defrag", "/tmp"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"), "{out:?}");
}
