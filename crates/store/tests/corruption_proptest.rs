//! Fault-model property coverage for the on-disk artifact frames: random
//! truncation or bit-flips of any stored file must never panic a read,
//! corrupt frames heal through single-flight recompute with byte-identical
//! payloads, and `repair` quarantines exactly the damaged files while
//! leaving the healthy ones in place.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lpa_store::{admin, ArtifactKind, Key, Store, QUARANTINE_DIR};
use proptest::prelude::*;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lpa-corruption-prop-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic payload bytes for artifact `i` (never empty).
fn payload(seed: u64, i: u64) -> Vec<u8> {
    let len = 16 + ((seed ^ i.wrapping_mul(0x9E37)) % 200) as usize;
    (0..len).map(|j| ((seed.wrapping_mul(31) + i * 7 + j as u64) % 251) as u8).collect()
}

fn key_of(i: u64) -> Key {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&i.to_le_bytes());
    k[8] = 0xAB;
    Key(k)
}

const KINDS: [ArtifactKind; 2] = [ArtifactKind::Reference, ArtifactKind::Outcome];

/// Populate a store with `count` artifacts and return their disk paths
/// (via a filesystem walk, so the test does not depend on the sharding
/// scheme).
fn populate(dir: &PathBuf, seed: u64, count: u64) -> Vec<PathBuf> {
    let store = Store::open(dir).expect("open scratch store");
    for i in 0..count {
        store.put(KINDS[(i % 2) as usize], key_of(i), payload(seed, i)).expect("put artifact");
    }
    let mut files = Vec::new();
    for shard in std::fs::read_dir(dir).expect("read store root") {
        let shard = shard.expect("dir entry").path();
        let name = shard.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if !shard.is_dir() || name == QUARANTINE_DIR || name.starts_with('.') {
            continue;
        }
        for f in std::fs::read_dir(&shard).expect("read shard") {
            files.push(f.expect("file entry").path());
        }
    }
    files.sort();
    assert_eq!(files.len(), count as usize);
    files
}

/// Damage one file: bit-flip at `pos` or truncate to `pos` bytes.
fn damage(path: &PathBuf, pos: usize, truncate: bool) {
    let mut bytes = std::fs::read(path).expect("read victim");
    if truncate {
        bytes.truncate(pos % bytes.len());
    } else {
        let at = pos % bytes.len();
        bytes[at] ^= 1 << (pos % 8);
    }
    std::fs::write(path, bytes).expect("rewrite victim");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any single-file damage is detected on read (no panic, no garbage
    /// payload), the damaged cell recomputes byte-identically, and every
    /// other artifact still reads back exactly.
    #[test]
    fn damaged_reads_never_panic_and_recompute_byte_identically(
        seed in any::<u64>(),
        victim in any::<u8>(),
        pos in any::<u16>(),
        truncate in any::<bool>(),
    ) {
        let dir = scratch_dir();
        let count = 4u64;
        let files = populate(&dir, seed, count);
        let victim_i = (victim as u64) % count;
        let victim_kind = KINDS[(victim_i % 2) as usize];
        // Derive the victim's path from its key rather than the walk
        // order, so the damage provably lands on the intended artifact.
        let hex = key_of(victim_i).to_hex();
        let victim_path = files
            .iter()
            .find(|p| p.to_string_lossy().contains(&hex))
            .expect("victim file present")
            .clone();
        damage(&victim_path, pos as usize, truncate);

        // A fresh handle (cold in-memory cache) must survive reading every
        // artifact: the damaged one heals to `None` + quarantine, the rest
        // are byte-identical.
        let store = Store::open(&dir).expect("reopen store");
        for i in 0..count {
            let kind = KINDS[(i % 2) as usize];
            let got = store.get(kind, key_of(i)).expect("read never errors on corruption");
            if i == victim_i {
                prop_assert!(got.is_none(), "damaged artifact served as valid");
            } else {
                let got = got.expect("healthy artifact present");
                let want = payload(seed, i);
                prop_assert_eq!(got.as_slice(), want.as_slice());
            }
        }
        prop_assert!(store.get(victim_kind, key_of(victim_i)).unwrap().is_none());

        // Single-flight recompute heals the cell byte-identically...
        let healed = store
            .get_or_compute(victim_kind, key_of(victim_i), || payload(seed, victim_i))
            .expect("recompute persists");
        let want = payload(seed, victim_i);
        prop_assert_eq!(healed.as_slice(), want.as_slice());
        // ...and the healed bytes are served from disk by yet another handle.
        let fresh = Store::open(&dir).expect("third handle");
        let back = fresh.get(victim_kind, key_of(victim_i)).unwrap().expect("healed on disk");
        prop_assert_eq!(back.as_slice(), want.as_slice());

        // The corrupt original was quarantined, not deleted.
        let quarantine = dir.join(QUARANTINE_DIR);
        prop_assert!(quarantine.is_dir(), "quarantine dir created");
        prop_assert_eq!(std::fs::read_dir(&quarantine).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `repair` quarantines exactly the damaged files: one pass moves the
    /// victim and nothing else, a second pass finds a clean store.
    #[test]
    fn repair_quarantines_exactly_the_damaged_files(
        seed in any::<u64>(),
        victim in any::<u8>(),
        pos in any::<u16>(),
        truncate in any::<bool>(),
    ) {
        let dir = scratch_dir();
        let count = 4u64;
        let files = populate(&dir, seed, count);
        let victim_i = (victim as u64) % count;
        let hex = key_of(victim_i).to_hex();
        let victim_path = files
            .iter()
            .find(|p| p.to_string_lossy().contains(&hex))
            .expect("victim file present")
            .clone();
        damage(&victim_path, pos as usize, truncate);

        let report = admin::repair(&dir).expect("repair sweep");
        prop_assert_eq!(report.quarantined, 1, "{:?}", report.verify.corrupt);
        prop_assert_eq!(report.verify.corrupt.len(), 1);
        prop_assert_eq!(&report.verify.corrupt[0].0, &victim_path);
        prop_assert!(!victim_path.exists(), "victim moved out of the data tree");
        prop_assert_eq!(report.verify.ok, (count - 1) as usize);

        let second = admin::repair(&dir).expect("idempotent repair");
        prop_assert_eq!(second.quarantined, 0);
        prop_assert!(second.verify.corrupt.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
