//! Property coverage for the binary codec: every `f64`/`Dd` bit pattern —
//! NaN payloads, infinities, signed zeros, subnormals — must survive a
//! round trip exactly, for any matrix shape including empty and
//! rectangular ones.

use lpa_arith::Dd;
use lpa_dense::DMatrix;
use lpa_store::{Decoder, Encoder};
use proptest::prelude::*;

fn dd_bits_eq(a: Dd, b: Dd) -> bool {
    a.hi.to_bits() == b.hi.to_bits() && a.lo.to_bits() == b.lo.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn dd_round_trips_any_bit_pattern(hi in any::<u64>(), lo in any::<u64>()) {
        let x = Dd { hi: f64::from_bits(hi), lo: f64::from_bits(lo) };
        let mut e = Encoder::new();
        e.put_dd(x);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = d.get_dd();
        prop_assert!(back.is_ok(), "{back:?}");
        prop_assert!(dd_bits_eq(back.unwrap(), x));
        prop_assert!(d.finish().is_ok());
    }

    #[test]
    fn special_float_classes_round_trip(
        x in prop::num::f64::ZERO
            | prop::num::f64::SUBNORMAL
            | prop::num::f64::NORMAL
            | prop::num::f64::INFINITE
            | prop::num::f64::QUIET_NAN,
    ) {
        let mut e = Encoder::new();
        e.put_f64(x);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = d.get_f64();
        prop_assert!(back.is_ok(), "{back:?}");
        prop_assert_eq!(back.unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn dd_matrices_round_trip_any_shape(seed in any::<u64>(), nr in any::<u8>(), nc in any::<u8>()) {
        // Shapes 0..=6 per side: exercises empty (0×0, 0×k, k×0), square
        // and rectangular matrices; entries are raw bit noise (lots of
        // NaNs/infinities by construction).
        let nrows = (nr % 7) as usize;
        let ncols = (nc % 7) as usize;
        let mut rng = TestRng::seed_from_u64(seed);
        let m = DMatrix::<Dd>::from_fn(nrows, ncols, |_, _| Dd {
            hi: f64::from_bits(rng.next_u64()),
            lo: f64::from_bits(rng.next_u64()),
        });

        let mut e = Encoder::new();
        e.put_dd_matrix(&m);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = d.get_dd_matrix();
        prop_assert!(back.is_ok(), "{back:?}");
        let back = back.unwrap();
        prop_assert!(d.finish().is_ok());
        prop_assert_eq!(back.nrows(), nrows);
        prop_assert_eq!(back.ncols(), ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                prop_assert!(dd_bits_eq(back[(i, j)], m[(i, j)]), "mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn dd_slices_round_trip(seed in any::<u64>(), len in any::<u8>()) {
        let len = (len % 33) as usize;
        let mut rng = TestRng::seed_from_u64(seed);
        let xs: Vec<Dd> = (0..len)
            .map(|_| Dd { hi: f64::from_bits(rng.next_u64()), lo: f64::from_bits(rng.next_u64()) })
            .collect();
        let mut e = Encoder::new();
        e.put_dd_slice(&xs);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = d.get_dd_slice();
        prop_assert!(back.is_ok(), "{back:?}");
        let back = back.unwrap();
        prop_assert!(d.finish().is_ok());
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!(dd_bits_eq(*a, *b));
        }
    }

    #[test]
    fn truncated_payloads_never_panic(seed in any::<u64>(), cut in any::<u8>()) {
        // Encode a small mixed payload, cut it anywhere, and decode: every
        // outcome must be a clean CodecError, never a panic or an OOM-sized
        // allocation.
        let mut rng = TestRng::seed_from_u64(seed);
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_dd_slice(&[Dd::from_f64(rng.unit_f64()), Dd::from_f64(rng.unit_f64())]);
        e.put_usize_slice(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let cut = (cut as usize) % bytes.len();
        let mut d = Decoder::new(&bytes[..cut]);
        // Drive the decoder through the schema; errors are expected, panics
        // are not.
        let _ = d.get_u8().and_then(|_| d.get_dd_slice()).and_then(|_| d.get_usize_slice());
    }
}
