//! Offline store administration: scanning, verification and garbage
//! collection. These walk the directory tree directly (no `Store` handle
//! needed) and back the `lpa-store` CLI.

use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use lpa_numerics::{NumericsConfig, RecordedNumerics, Slice};

use crate::hash::Key;
use crate::store::{decode_artifact, quarantine_dest, ArtifactKind, QUARANTINE_DIR};

/// Invalid files found during a [`scan`], each with its reason.
pub type InvalidFiles = Vec<(PathBuf, String)>;

/// One artifact file as found on disk (header metadata only).
pub struct ArtifactInfo {
    pub path: PathBuf,
    pub kind: ArtifactKind,
    pub key: Key,
    /// Whole-file size (header + payload).
    pub file_len: u64,
    pub modified: SystemTime,
    /// Recorded format id (v3 frames; `None` for references and legacy).
    pub format: Option<u8>,
    /// Serialized producing numerics table (v3 frames).
    pub numerics: Option<Vec<u8>>,
}

impl ArtifactInfo {
    /// The (kind, format) slice this artifact's address lives in.
    fn slice(&self) -> Slice {
        match self.kind {
            ArtifactKind::Reference => Slice::Reference,
            ArtifactKind::Outcome => Slice::Outcome { format: self.format },
        }
    }

    /// The producing numerics table, decoded. Legacy v1/v2 frames were
    /// produced at the baseline table by the byte-stability contract;
    /// `None` means the recorded section is undecodable.
    fn recorded_numerics(&self) -> Option<RecordedNumerics> {
        match &self.numerics {
            None => Some(RecordedNumerics::legacy_baseline()),
            Some(bytes) => RecordedNumerics::from_bytes(bytes).ok(),
        }
    }

    /// Slice label for per-numerics-version reporting: the recorded
    /// table's fingerprint, `legacy` for pre-v3 frames, `undecodable`
    /// when the recorded section cannot be parsed.
    fn numerics_label(&self) -> String {
        match &self.numerics {
            None => "legacy".to_string(),
            Some(_) => match self.recorded_numerics() {
                Some(rec) => rec.fingerprint(),
                None => "undecodable".to_string(),
            },
        }
    }
}

/// Artifact counts per (kind, numerics label), sorted — the per-version
/// slice breakdown `lpa-store stats`/`verify` report.
pub fn numerics_slice_counts(artifacts: &[ArtifactInfo]) -> Vec<(ArtifactKind, String, u64)> {
    let mut counts: Vec<(ArtifactKind, String, u64)> = Vec::new();
    for a in artifacts {
        let label = a.numerics_label();
        match counts.iter_mut().find(|(k, l, _)| *k == a.kind && *l == label) {
            Some((_, _, n)) => *n += 1,
            None => counts.push((a.kind, label, 1)),
        }
    }
    counts.sort_by(|a, b| (a.0 as u8, &a.1).cmp(&(b.0 as u8, &b.1)));
    counts
}

/// Walk every `<2-hex>/<hash>.bin` under `root`, decoding and validating
/// each artifact. Invalid files are returned separately with a reason.
pub fn scan(root: &Path) -> io::Result<(Vec<ArtifactInfo>, InvalidFiles)> {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    let mut shards: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() && name.len() == 2 && name.chars().all(|c| c.is_ascii_hexdigit()) {
            shards.push(entry.path());
        }
    }
    shards.sort();
    for shard in shards {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&shard)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "bin"))
            .collect();
        files.sort();
        for path in files {
            match check_file(&path) {
                Ok(info) => ok.push(info),
                Err(reason) => bad.push((path, reason)),
            }
        }
    }
    Ok((ok, bad))
}

/// Validate one artifact file: container decode (magic, version, checksum)
/// plus the content-addressing invariants — the file name is the key and
/// the shard directory is the key's first byte.
fn check_file(path: &Path) -> Result<ArtifactInfo, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("stat failed: {e}"))?;
    let bytes = std::fs::read(path).map_err(|e| format!("read failed: {e}"))?;
    let artifact = decode_artifact(&bytes).map_err(|e| e.to_string())?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| "non-UTF-8 file name".to_string())?;
    if Key::from_hex(stem) != Some(artifact.key) {
        return Err(format!("file name {stem} does not match embedded key {}", artifact.key));
    }
    let shard = path.parent().and_then(|p| p.file_name()).and_then(|s| s.to_str());
    if shard != Some(artifact.key.shard().as_str()) {
        return Err(format!("sharded under {shard:?} but key {} expects {}", artifact.key, artifact.key.shard()));
    }
    Ok(ArtifactInfo {
        path: path.to_path_buf(),
        kind: artifact.kind,
        key: artifact.key,
        file_len: meta.len(),
        modified: meta.modified().map_err(|e| format!("no mtime: {e}"))?,
        format: artifact.format,
        numerics: artifact.numerics,
    })
}

/// Result of [`verify`].
pub struct VerifyReport {
    pub ok: usize,
    pub bytes: u64,
    pub corrupt: InvalidFiles,
    /// Corrupt-file counts per artifact kind; the extra last slot counts
    /// files whose header is too damaged to even name a kind.
    pub corrupt_per_kind: [usize; ArtifactKind::COUNT + 1],
    /// Valid-artifact counts per (kind, recorded numerics table).
    pub numerics_slices: Vec<(ArtifactKind, String, u64)>,
}

/// Best-effort kind of a *corrupt* file, from the header's kind byte. The
/// frame failed validation, so this is a label for reporting, not a fact.
fn sniff_kind(path: &Path) -> Option<ArtifactKind> {
    let bytes = std::fs::read(path).ok()?;
    ArtifactKind::from_u8(*bytes.get(5)?)
}

fn count_per_kind(corrupt: &InvalidFiles) -> [usize; ArtifactKind::COUNT + 1] {
    let mut counts = [0usize; ArtifactKind::COUNT + 1];
    for (path, _) in corrupt {
        match sniff_kind(path) {
            Some(kind) => counts[kind as usize] += 1,
            None => counts[ArtifactKind::COUNT] += 1,
        }
    }
    counts
}

impl VerifyReport {
    /// The report as named counters, for rendering in the shared
    /// `lpa-obs-registry/v1` schema (`lpa-store verify --json`). The
    /// `store.<kind>.corrupt` names match the live [`crate::StoreStats`]
    /// registry; scan-only facts get their own `store.verify.*` namespace.
    pub fn to_counters(&self) -> Vec<(String, u64)> {
        let mut counters = vec![
            ("store.verify.ok".to_string(), self.ok as u64),
            ("store.verify.bytes".to_string(), self.bytes),
            ("store.verify.corrupt".to_string(), self.corrupt.len() as u64),
        ];
        for kind in ArtifactKind::ALL {
            counters.push((
                format!("store.{}.corrupt", kind.name()),
                self.corrupt_per_kind[kind as usize] as u64,
            ));
        }
        counters.push((
            "store.unknown.corrupt".to_string(),
            self.corrupt_per_kind[ArtifactKind::COUNT] as u64,
        ));
        for (kind, label, count) in &self.numerics_slices {
            counters.push((format!("store.numerics.{}.{label}", kind.name()), *count));
        }
        counters
    }
}

/// Re-hash and structurally check every artifact in the store.
pub fn verify(root: &Path) -> io::Result<VerifyReport> {
    let (ok, corrupt) = scan(root)?;
    let corrupt_per_kind = count_per_kind(&corrupt);
    Ok(VerifyReport {
        ok: ok.len(),
        bytes: ok.iter().map(|a| a.file_len).sum(),
        numerics_slices: numerics_slice_counts(&ok),
        corrupt,
        corrupt_per_kind,
    })
}

/// Result of [`repair`].
pub struct RepairReport {
    pub verify: VerifyReport,
    /// How many corrupt files were actually moved to `quarantine/`.
    pub quarantined: usize,
}

/// [`verify`], then move every corrupt file into `<root>/quarantine/` so
/// the next harness run recomputes those keys instead of tripping over
/// the bad bytes. Idempotent: a clean store repairs to a no-op.
pub fn repair(root: &Path) -> io::Result<RepairReport> {
    let report = verify(root)?;
    let mut quarantined = 0;
    if !report.corrupt.is_empty() {
        let dir = root.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&dir)?;
        for (path, _) in &report.corrupt {
            let Some(name) = path.file_name() else { continue };
            if std::fs::rename(path, quarantine_dest(&dir, name)).is_ok() {
                quarantined += 1;
            }
        }
    }
    Ok(RepairReport { verify: report, quarantined })
}

/// `(file count, total bytes)` of the quarantine directory.
pub fn quarantine_usage(root: &Path) -> io::Result<(u64, u64)> {
    let dir = root.join(QUARANTINE_DIR);
    let (mut count, mut bytes) = (0u64, 0u64);
    if dir.is_dir() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                count += 1;
                bytes += entry.metadata()?.len();
            }
        }
    }
    Ok((count, bytes))
}

/// Per-kind store usage summary.
pub struct StatsReport {
    /// `(count, file bytes)` indexed by `ArtifactKind as usize`.
    pub per_kind: [(u64, u64); ArtifactKind::COUNT],
    pub invalid: usize,
    /// `(count, file bytes)` sitting in `quarantine/`.
    pub quarantine: (u64, u64),
    /// Artifact counts per (kind, recorded numerics table).
    pub numerics_slices: Vec<(ArtifactKind, String, u64)>,
}

impl StatsReport {
    pub fn total_count(&self) -> u64 {
        self.per_kind.iter().map(|(c, _)| c).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.per_kind.iter().map(|(_, b)| b).sum()
    }

    /// The report as named counters, for rendering in the shared
    /// `lpa-obs-registry/v1` schema (`lpa-store stats --json`).
    pub fn to_counters(&self) -> Vec<(String, u64)> {
        let mut counters = Vec::new();
        for kind in ArtifactKind::ALL {
            let (count, bytes) = self.per_kind[kind as usize];
            counters.push((format!("store.{}.artifacts", kind.name()), count));
            counters.push((format!("store.{}.bytes", kind.name()), bytes));
        }
        counters.push(("store.invalid".to_string(), self.invalid as u64));
        counters.push(("store.quarantine.files".to_string(), self.quarantine.0));
        counters.push(("store.quarantine.bytes".to_string(), self.quarantine.1));
        for (kind, label, count) in &self.numerics_slices {
            counters.push((format!("store.numerics.{}.{label}", kind.name()), *count));
        }
        counters
    }
}

pub fn stats_report(root: &Path) -> io::Result<StatsReport> {
    let (ok, bad) = scan(root)?;
    let mut per_kind = [(0u64, 0u64); ArtifactKind::COUNT];
    for a in &ok {
        let slot = &mut per_kind[a.kind as usize];
        slot.0 += 1;
        slot.1 += a.file_len;
    }
    Ok(StatsReport {
        per_kind,
        invalid: bad.len(),
        quarantine: quarantine_usage(root)?,
        numerics_slices: numerics_slice_counts(&ok),
    })
}

/// Result of [`gc`].
pub struct GcReport {
    pub kept: usize,
    pub kept_bytes: u64,
    pub deleted: usize,
    pub deleted_bytes: u64,
    pub tmp_removed: usize,
    /// Artifacts dropped by the `stale_numerics` pass (not counted in
    /// `deleted`, which covers the age/budget/invalid passes).
    pub stale: usize,
    pub stale_bytes: u64,
}

/// What [`gc`] deletes. The limits compose: the stale-numerics pass runs
/// first (drop artifacts whose recorded feature versions no longer match
/// the given table on any relevant feature), then age (drop everything
/// not touched within `max_age`), then the byte budget shrinks whatever
/// survived, oldest first. At least one limit must be set — an empty
/// policy would be a no-op that *looks* like a cleanup.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcPolicy {
    /// Keep total artifact bytes at or below this budget.
    pub max_bytes: Option<u64>,
    /// Delete artifacts whose mtime is older than this.
    pub max_age: Option<std::time::Duration>,
    /// Delete artifacts whose recorded numerics table differs from this
    /// one on a feature relevant to their (kind, format) slice.
    pub stale_numerics: Option<NumericsConfig>,
}

impl GcPolicy {
    pub fn max_bytes(n: u64) -> GcPolicy {
        GcPolicy { max_bytes: Some(n), ..Default::default() }
    }

    pub fn max_age(age: std::time::Duration) -> GcPolicy {
        GcPolicy { max_age: Some(age), ..Default::default() }
    }

    pub fn stale_numerics(config: NumericsConfig) -> GcPolicy {
        GcPolicy { stale_numerics: Some(config), ..Default::default() }
    }

    pub fn is_empty(&self) -> bool {
        self.max_bytes.is_none() && self.max_age.is_none() && self.stale_numerics.is_none()
    }
}

/// Shrink the store per `policy`: delete artifacts invalidated by a
/// numerics-feature bump, then those older than `max_age`, then the least
/// recently modified ones until under `max_bytes`, and sweep leftover
/// `.tmp` files (from crashed writers). Invalid artifacts are always
/// deleted. Not safe to run concurrently with an *actively writing*
/// harness — a live tmp file could be swept — but readers are unaffected.
pub fn gc(root: &Path, policy: &GcPolicy) -> io::Result<GcReport> {
    if policy.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "gc policy sets neither max_bytes, max_age nor stale_numerics",
        ));
    }
    let (mut ok, bad) = scan(root)?;
    let mut report = GcReport {
        kept: 0,
        kept_bytes: 0,
        deleted: 0,
        deleted_bytes: 0,
        tmp_removed: 0,
        stale: 0,
        stale_bytes: 0,
    };
    for (path, _) in &bad {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(path)?;
        report.deleted += 1;
        report.deleted_bytes += len;
    }
    // Stale-numerics pass first: these artifacts can never be addressed
    // again (their keys were derived under versions that no longer match),
    // so no other limit should spend budget keeping them. An artifact
    // whose recorded table cannot be decoded is stale too — it is
    // unattributable and safely recomputable. Legacy pre-v3 frames decode
    // as the baseline table.
    if let Some(config) = &policy.stale_numerics {
        let (stale, live): (Vec<_>, Vec<_>) = ok.into_iter().partition(|a| {
            a.recorded_numerics()
                .is_none_or(|rec| config.invalidates(a.slice(), &rec))
        });
        for a in &stale {
            std::fs::remove_file(&a.path)?;
            report.stale += 1;
            report.stale_bytes += a.file_len;
        }
        ok = live;
    }
    // Age limit next: everything past the horizon goes, regardless of the
    // byte budget.
    let now = SystemTime::now();
    if let Some(max_age) = policy.max_age {
        // A horizon longer than representable time means nothing can be
        // old enough: explicitly keep everything rather than letting the
        // unrepresentable cutoff silently skip the pass.
        if let Some(cutoff) = now.checked_sub(max_age) {
            let (expired, fresh): (Vec<_>, Vec<_>) =
                ok.into_iter().partition(|a| a.modified < cutoff);
            for a in &expired {
                std::fs::remove_file(&a.path)?;
                report.deleted += 1;
                report.deleted_bytes += a.file_len;
            }
            ok = fresh;
        }
    }
    // Then the byte budget on the survivors, oldest first; ties broken by
    // the (stable, sorted) scan order. A future mtime (clock skew, bogus
    // timestamp) sorts as the epoch so such files are evicted first —
    // trusting it would pin them as "newest" forever.
    ok.sort_by_key(|a| if a.modified > now { std::time::UNIX_EPOCH } else { a.modified });
    let total: u64 = ok.iter().map(|a| a.file_len).sum();
    let mut excess = total.saturating_sub(policy.max_bytes.unwrap_or(u64::MAX));
    for a in &ok {
        if excess > 0 {
            std::fs::remove_file(&a.path)?;
            report.deleted += 1;
            report.deleted_bytes += a.file_len;
            excess = excess.saturating_sub(a.file_len);
        } else {
            report.kept += 1;
            report.kept_bytes += a.file_len;
        }
    }
    let tmp = root.join(".tmp");
    if tmp.is_dir() {
        for entry in std::fs::read_dir(&tmp)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                std::fs::remove_file(entry.path())?;
                report.tmp_removed += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash128;
    use crate::store::{Store, HEADER_LEN};

    fn scratch_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "lpa-store-admin-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn fill(store: &Store, n: usize) {
        for i in 0..n {
            let key = hash128(format!("artifact-{i}").as_bytes());
            let kind = if i % 2 == 0 { ArtifactKind::Reference } else { ArtifactKind::Outcome };
            store.put(kind, key, vec![i as u8; 64 + i]).unwrap();
        }
    }

    #[test]
    fn verify_passes_on_a_healthy_store_and_flags_corruption() {
        let (dir, store) = scratch_store("verify");
        fill(&store, 8);
        let report = verify(&dir).unwrap();
        assert_eq!(report.ok, 8);
        assert!(report.corrupt.is_empty());
        assert!(report.bytes > 8 * (HEADER_LEN as u64 + 64));

        // Corrupt one payload byte.
        let victim = hash128(b"artifact-3");
        let path = store.path_of(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, bytes).unwrap();
        // And plant a file whose name is not its key.
        let stray = dir.join(victim.shard()).join(format!("{}.bin", hash128(b"liar")));
        std::fs::copy(store.path_of(hash128(b"artifact-2")), &stray).unwrap();

        let report = verify(&dir).unwrap();
        assert_eq!(report.ok, 7);
        assert_eq!(report.corrupt.len(), 2);
        assert_eq!(report.corrupt_per_kind.iter().sum::<usize>(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_quarantines_exactly_the_damaged_files() {
        let (dir, store) = scratch_store("repair");
        fill(&store, 6);

        // Damage two artifacts in different ways: a payload bit-flip and a
        // header so mangled the kind can't even be sniffed.
        let flipped = store.path_of(hash128(b"artifact-1"));
        let mut bytes = std::fs::read(&flipped).unwrap();
        bytes[HEADER_LEN] ^= 0x80;
        std::fs::write(&flipped, bytes).unwrap();
        let mangled = store.path_of(hash128(b"artifact-4"));
        std::fs::write(&mangled, b"not even close").unwrap();

        let report = repair(&dir).unwrap();
        assert_eq!(report.verify.ok, 4);
        assert_eq!(report.verify.corrupt.len(), 2);
        assert_eq!(report.quarantined, 2);
        // Corrupt kinds: artifact-1 is an Outcome (odd index); the mangled
        // file lands in the "unknown" slot.
        assert_eq!(report.verify.corrupt_per_kind[ArtifactKind::Outcome as usize], 1);
        assert_eq!(report.verify.corrupt_per_kind[ArtifactKind::COUNT], 1);
        assert!(!flipped.exists() && !mangled.exists());
        assert_eq!(quarantine_usage(&dir).unwrap().0, 2);

        // The healthy artifacts were untouched, and repair is idempotent.
        let clean = repair(&dir).unwrap();
        assert_eq!(clean.verify.ok, 4);
        assert!(clean.verify.corrupt.is_empty());
        assert_eq!(clean.quarantined, 0);

        // Quarantine shows up in the stats report, not as store contents.
        let stats = stats_report(&dir).unwrap();
        assert_eq!(stats.total_count(), 4);
        assert_eq!(stats.invalid, 0);
        assert_eq!(stats.quarantine.0, 2);
        assert!(stats.quarantine.1 > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_report_breaks_down_by_kind() {
        let (dir, store) = scratch_store("stats");
        fill(&store, 6);
        let report = stats_report(&dir).unwrap();
        assert_eq!(report.per_kind[ArtifactKind::Reference as usize].0, 3);
        assert_eq!(report.per_kind[ArtifactKind::Outcome as usize].0, 3);
        assert_eq!(report.total_count(), 6);
        assert_eq!(report.invalid, 0);
        assert!(report.total_bytes() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_deletes_oldest_until_under_budget() {
        let (dir, store) = scratch_store("gc");
        fill(&store, 6);
        // Age the first two artifacts by rewriting the rest later is not
        // reliable timing-wise; instead set the budget so only some survive.
        let total = verify(&dir).unwrap().bytes;
        let report = gc(&dir, &GcPolicy::max_bytes(total / 2)).unwrap();
        assert!(report.deleted > 0 && report.kept > 0, "deleted {} kept {}", report.deleted, report.kept);
        assert!(report.kept_bytes <= total / 2);
        let after = verify(&dir).unwrap();
        assert_eq!(after.ok, report.kept);
        assert!(after.corrupt.is_empty());

        // max_bytes 0 empties the store; a stale tmp file is swept too.
        std::fs::write(dir.join(".tmp").join("stale.tmp"), b"zzz").unwrap();
        let report = gc(&dir, &GcPolicy::max_bytes(0)).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(verify(&dir).unwrap().ok, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Backdate an artifact's mtime by `secs` seconds.
    fn backdate(path: &Path, secs: u64) {
        let old = SystemTime::now() - std::time::Duration::from_secs(secs);
        let file = std::fs::File::options().write(true).open(path).unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(old)).unwrap();
    }

    #[test]
    fn gc_age_policy_deletes_expired_and_composes_with_bytes() {
        use std::time::Duration;
        let (dir, store) = scratch_store("gc-age");
        fill(&store, 6);
        // Artifacts 0 and 1 are an hour old; the rest are fresh.
        for i in 0..2 {
            backdate(&store.path_of(hash128(format!("artifact-{i}").as_bytes())), 3600);
        }

        // Pure age policy: exactly the two backdated artifacts go.
        let report = gc(&dir, &GcPolicy::max_age(Duration::from_secs(60))).unwrap();
        assert_eq!(report.deleted, 2, "expired artifacts deleted");
        assert_eq!(report.kept, 4);
        assert_eq!(verify(&dir).unwrap().ok, 4);

        // Composed policy: age expires one more backdated artifact, then
        // the byte budget shrinks the fresh survivors too.
        backdate(&store.path_of(hash128(b"artifact-2")), 3600);
        let expired_path = store.path_of(hash128(b"artifact-2"));
        let survivors_bytes: u64 = scan(&dir)
            .unwrap()
            .0
            .iter()
            .filter(|a| a.path != expired_path)
            .map(|a| a.file_len)
            .sum();
        let policy = GcPolicy {
            max_age: Some(Duration::from_secs(60)),
            max_bytes: Some(survivors_bytes / 2),
            ..Default::default()
        };
        let report = gc(&dir, &policy).unwrap();
        assert!(report.deleted >= 2, "age victim plus at least one budget victim");
        assert!(report.kept_bytes <= survivors_bytes / 2);
        assert_eq!(verify(&dir).unwrap().ok, report.kept);

        // An empty policy is rejected, not a silent no-op.
        assert!(gc(&dir, &GcPolicy::default()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_with_unrepresentable_age_horizon_keeps_everything() {
        use std::time::Duration;
        let (dir, store) = scratch_store("gc-age-overflow");
        fill(&store, 4);
        backdate(&store.path_of(hash128(b"artifact-0")), 3600);
        // A horizon longer than representable time: `SystemTime::now() -
        // max_age` has no answer, so nothing can provably be that old —
        // the pass must keep everything, not silently skip into the
        // partition with an arbitrary outcome.
        let report = gc(&dir, &GcPolicy::max_age(Duration::MAX)).unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(report.kept, 4);
        assert_eq!(verify(&dir).unwrap().ok, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Push an artifact's mtime `secs` seconds into the future.
    fn future_date(path: &Path, secs: u64) {
        let skewed = SystemTime::now() + std::time::Duration::from_secs(secs);
        let file = std::fs::File::options().write(true).open(path).unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(skewed)).unwrap();
    }

    #[test]
    fn gc_byte_budget_evicts_future_dated_files_first() {
        let (dir, store) = scratch_store("gc-future");
        fill(&store, 2);
        // artifact-1 claims to be modified an hour from now (clock skew).
        // Trusting that timestamp would rank it newest and pin it forever;
        // the clamp ranks it below every honestly-dated file instead.
        let honest = store.path_of(hash128(b"artifact-0"));
        let skewed = store.path_of(hash128(b"artifact-1"));
        future_date(&skewed, 3600);
        let keep_one = std::fs::metadata(&honest).unwrap().len();
        let report = gc(&dir, &GcPolicy::max_bytes(keep_one)).unwrap();
        assert_eq!((report.deleted, report.kept), (1, 1));
        assert!(honest.exists(), "honestly-dated artifact survives");
        assert!(!skewed.exists(), "future-dated artifact is evicted first");
        // And the age pass never deletes a future-dated file (its age is
        // unprovable), so age-only policies leave it alone.
        future_date(&honest, 3600);
        let report = gc(&dir, &GcPolicy::max_age(std::time::Duration::from_secs(1))).unwrap();
        assert_eq!((report.deleted, report.kept), (0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_stale_numerics_drops_exactly_the_bumped_slice() {
        use lpa_numerics::{NumericsConfig, BATCH_ROUND};
        let (dir, store) = scratch_store("gc-stale");
        // A baseline store: one reference, one outcome per format class —
        // LUT8 (posit8, id 2), batch-routed dec16 (posit16, id 6), native
        // (float64, id 11) — plus one legacy v1 outcome frame with no
        // recorded format or table.
        store.put(ArtifactKind::Reference, hash128(b"ref"), b"r".to_vec()).unwrap();
        store.put_for(ArtifactKind::Outcome, hash128(b"o-p8"), b"a".to_vec(), Some(2)).unwrap();
        store.put_for(ArtifactKind::Outcome, hash128(b"o-p16"), b"b".to_vec(), Some(6)).unwrap();
        store.put_for(ArtifactKind::Outcome, hash128(b"o-f64"), b"c".to_vec(), Some(11)).unwrap();
        let legacy_key = hash128(b"o-legacy");
        let legacy_path = store.path_of(legacy_key);
        std::fs::create_dir_all(legacy_path.parent().unwrap()).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"LPST\x01");
        v1.push(ArtifactKind::Outcome as u8);
        v1.extend_from_slice(&[0, 0]);
        v1.extend_from_slice(&legacy_key.0);
        v1.extend_from_slice(&hash128(b"d").0);
        v1.extend_from_slice(&1u64.to_le_bytes());
        v1.extend_from_slice(b"d");
        std::fs::write(&legacy_path, &v1).unwrap();

        // The stats breakdown labels the slices before any gc.
        let stats = stats_report(&dir).unwrap();
        assert!(stats
            .numerics_slices
            .iter()
            .any(|(k, l, n)| *k == ArtifactKind::Outcome && l == "legacy" && *n == 1));
        assert!(stats
            .numerics_slices
            .iter()
            .any(|(k, l, n)| *k == ArtifactKind::Outcome && l == "baseline" && *n == 3));

        // Bump batch_round: exactly the batch-routed posit16 outcome is
        // stale. The reference, the LUT8 and native outcomes, and the
        // legacy frame (unknown format → only universal features
        // attributable) all survive.
        let bumped = NumericsConfig::baseline().with_version(BATCH_ROUND, 2);
        let report = gc(&dir, &GcPolicy::stale_numerics(bumped)).unwrap();
        assert_eq!((report.stale, report.deleted), (1, 0));
        assert!(report.stale_bytes > 0);
        assert_eq!(report.kept, 4);
        assert!(!store.path_of(hash128(b"o-p16")).exists());
        assert!(store.path_of(hash128(b"o-p8")).exists());
        assert!(store.path_of(hash128(b"o-f64")).exists());
        assert!(store.path_of(hash128(b"ref")).exists());
        assert!(legacy_path.exists());

        // A matching table is a no-op for frames recorded under it: write
        // the posit16 outcome back under the bumped table, then gc with
        // that same table again.
        let store2 = Store::open(&dir).unwrap();
        store2.set_numerics(&bumped);
        store2.put_for(ArtifactKind::Outcome, hash128(b"o-p16"), b"b2".to_vec(), Some(6)).unwrap();
        let report = gc(&dir, &GcPolicy::stale_numerics(bumped)).unwrap();
        assert_eq!((report.stale, report.kept), (0, 5));
        // But a universally relevant bump clears everything — legacy and
        // the just-rewritten batch frame included (dd_reference reaches
        // every slice).
        let dd_bump =
            NumericsConfig::baseline().with_version(lpa_numerics::DD_REFERENCE, 2);
        let report = gc(&dir, &GcPolicy::stale_numerics(dd_bump)).unwrap();
        assert_eq!((report.stale, report.kept), (5, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
