//! Hit/miss/byte counters, kept per artifact kind so a harness can prove
//! statements like "the warm run performed zero double-double reference
//! solves" directly from the store.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::store::ArtifactKind;

/// Counters for one artifact kind. All updates are `Relaxed`: the counters
/// are monotone tallies read after the parallel section, not synchronization.
#[derive(Default)]
pub struct KindCounters {
    /// Served from the in-process cache.
    hits_mem: AtomicU64,
    /// Served from disk (another run — or another process — computed it).
    hits_disk: AtomicU64,
    /// The compute closure ran.
    misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    /// On-disk artifacts of this kind rejected at decode time.
    corrupt: AtomicU64,
    /// Rejected artifacts successfully moved to `quarantine/`.
    quarantined: AtomicU64,
}

impl KindCounters {
    pub(crate) fn record_hit_mem(&self) {
        self.hits_mem.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit_disk(&self, bytes: u64) {
        self.hits_disk.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self, bytes_written: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes_written, Ordering::Relaxed);
    }
}

/// All counters of one [`crate::Store`].
#[derive(Default)]
pub struct StoreStats {
    kinds: [KindCounters; ArtifactKind::COUNT],
    /// Artifacts found on disk but rejected (bad magic/version/checksum);
    /// each is treated as a miss and rewritten. Sum over the per-kind
    /// `corrupt` counters, kept as its own tally for cheap health checks.
    corrupt: AtomicU64,
}

impl StoreStats {
    pub(crate) fn kind(&self, kind: ArtifactKind) -> &KindCounters {
        &self.kinds[kind as usize]
    }

    pub(crate) fn record_corrupt(&self, kind: ArtifactKind) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        self.kind(kind).corrupt.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_quarantined(&self, kind: ArtifactKind) {
        self.kind(kind).quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of one kind's counters.
    pub fn snapshot(&self, kind: ArtifactKind) -> CountersSnapshot {
        let k = self.kind(kind);
        CountersSnapshot {
            hits_mem: k.hits_mem.load(Ordering::Relaxed),
            hits_disk: k.hits_disk.load(Ordering::Relaxed),
            misses: k.misses.load(Ordering::Relaxed),
            bytes_read: k.bytes_read.load(Ordering::Relaxed),
            bytes_written: k.bytes_written.load(Ordering::Relaxed),
            corrupt: k.corrupt.load(Ordering::Relaxed),
            quarantined: k.quarantined.load(Ordering::Relaxed),
        }
    }

    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }
}

/// Plain-data view of [`KindCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub hits_mem: u64,
    pub hits_disk: u64,
    pub misses: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub corrupt: u64,
    pub quarantined: u64,
}

impl CountersSnapshot {
    /// Lookups served without running the compute closure.
    pub fn hits(&self) -> u64 {
        self.hits_mem + self.hits_disk
    }

    /// Counter deltas since an earlier snapshot of the same store.
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            hits_mem: self.hits_mem - earlier.hits_mem,
            hits_disk: self.hits_disk - earlier.hits_disk,
            misses: self.misses - earlier.misses,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            corrupt: self.corrupt - earlier.corrupt,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_and_deltas() {
        let stats = StoreStats::default();
        stats.kind(ArtifactKind::Reference).record_miss(100);
        stats.kind(ArtifactKind::Reference).record_hit_mem();
        stats.kind(ArtifactKind::Outcome).record_hit_disk(40);
        let r = stats.snapshot(ArtifactKind::Reference);
        assert_eq!((r.misses, r.hits(), r.bytes_written), (1, 1, 100));
        let o = stats.snapshot(ArtifactKind::Outcome);
        assert_eq!((o.hits_disk, o.bytes_read), (1, 40));

        stats.kind(ArtifactKind::Reference).record_hit_disk(7);
        let later = stats.snapshot(ArtifactKind::Reference);
        let delta = later.since(&r);
        assert_eq!((delta.hits_disk, delta.misses, delta.bytes_read), (1, 0, 7));
        assert_eq!(stats.corrupt(), 0);

        stats.record_corrupt(ArtifactKind::Outcome);
        stats.record_quarantined(ArtifactKind::Outcome);
        assert_eq!(stats.corrupt(), 1);
        let o2 = stats.snapshot(ArtifactKind::Outcome);
        assert_eq!((o2.corrupt, o2.quarantined), (1, 1));
        assert_eq!(stats.snapshot(ArtifactKind::Reference).corrupt, 0);
    }
}
