//! Hit/miss/byte counters, kept per artifact kind so a harness can prove
//! statements like "the warm run performed zero double-double reference
//! solves" directly from the store.
//!
//! Since PR 7 these are no longer a private tally: every counter is a
//! named [`lpa_obs::Counter`] on a per-store [`lpa_obs::Registry`]
//! (`store.<kind>.<field>`, plus the `store.corrupt` health tally), so
//! `print_store_counters`, the run manifest's store section and
//! `lpa-store stats --json` are all views over the same registry. The
//! registry is per-store-instance — not the process-global one — so
//! parallel tests with scratch stores stay isolated.

use std::sync::Arc;

use lpa_obs::{Counter, Registry};

use crate::store::ArtifactKind;

/// Counter handles for one artifact kind. All updates are `Relaxed`
/// atomics: the counters are monotone tallies read after the parallel
/// section, not synchronization.
pub struct KindCounters {
    /// Served from the in-process cache.
    hits_mem: Arc<Counter>,
    /// Served from disk (another run — or another process — computed it).
    hits_disk: Arc<Counter>,
    /// The compute closure ran.
    misses: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    /// On-disk artifacts of this kind rejected at decode time.
    corrupt: Arc<Counter>,
    /// Rejected artifacts successfully moved to `quarantine/`.
    quarantined: Arc<Counter>,
}

impl KindCounters {
    fn register(registry: &Registry, kind: ArtifactKind) -> KindCounters {
        let named = |field: &str| registry.counter(&format!("store.{}.{field}", kind.name()));
        KindCounters {
            hits_mem: named("hits_mem"),
            hits_disk: named("hits_disk"),
            misses: named("misses"),
            bytes_read: named("bytes_read"),
            bytes_written: named("bytes_written"),
            corrupt: named("corrupt"),
            quarantined: named("quarantined"),
        }
    }

    pub(crate) fn record_hit_mem(&self) {
        self.hits_mem.incr();
    }

    pub(crate) fn record_hit_disk(&self, bytes: u64) {
        self.hits_disk.incr();
        self.bytes_read.add(bytes);
    }

    pub(crate) fn record_miss(&self, bytes_written: u64) {
        self.misses.incr();
        self.bytes_written.add(bytes_written);
    }
}

/// All counters of one [`crate::Store`], backed by its metrics registry.
pub struct StoreStats {
    registry: Registry,
    kinds: [KindCounters; ArtifactKind::COUNT],
    /// Artifacts found on disk but rejected (bad magic/version/checksum);
    /// each is treated as a miss and rewritten. Sum over the per-kind
    /// `corrupt` counters, kept as its own tally (`store.corrupt`) for
    /// cheap health checks.
    corrupt: Arc<Counter>,
}

impl Default for StoreStats {
    fn default() -> StoreStats {
        let registry = Registry::new();
        let kinds =
            std::array::from_fn(|i| KindCounters::register(&registry, ArtifactKind::ALL[i]));
        let corrupt = registry.counter("store.corrupt");
        StoreStats { registry, kinds, corrupt }
    }
}

impl StoreStats {
    /// The registry every counter lives on. `lpa-store stats --json`, the
    /// run manifest and the registry-drift regression tests read this.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn kind(&self, kind: ArtifactKind) -> &KindCounters {
        &self.kinds[kind as usize]
    }

    pub(crate) fn record_corrupt(&self, kind: ArtifactKind) {
        self.corrupt.incr();
        self.kind(kind).corrupt.incr();
    }

    pub(crate) fn record_quarantined(&self, kind: ArtifactKind) {
        self.kind(kind).quarantined.incr();
    }

    /// Point-in-time copy of one kind's counters.
    pub fn snapshot(&self, kind: ArtifactKind) -> CountersSnapshot {
        let k = self.kind(kind);
        CountersSnapshot {
            hits_mem: k.hits_mem.get(),
            hits_disk: k.hits_disk.get(),
            misses: k.misses.get(),
            bytes_read: k.bytes_read.get(),
            bytes_written: k.bytes_written.get(),
            corrupt: k.corrupt.get(),
            quarantined: k.quarantined.get(),
        }
    }

    pub fn corrupt(&self) -> u64 {
        self.corrupt.get()
    }
}

/// Plain-data view of [`KindCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub hits_mem: u64,
    pub hits_disk: u64,
    pub misses: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub corrupt: u64,
    pub quarantined: u64,
}

impl CountersSnapshot {
    /// Lookups served without running the compute closure.
    pub fn hits(&self) -> u64 {
        self.hits_mem + self.hits_disk
    }

    /// Counter deltas since an earlier snapshot of the same store.
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            hits_mem: self.hits_mem - earlier.hits_mem,
            hits_disk: self.hits_disk - earlier.hits_disk,
            misses: self.misses - earlier.misses,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            corrupt: self.corrupt - earlier.corrupt,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_and_deltas() {
        let stats = StoreStats::default();
        stats.kind(ArtifactKind::Reference).record_miss(100);
        stats.kind(ArtifactKind::Reference).record_hit_mem();
        stats.kind(ArtifactKind::Outcome).record_hit_disk(40);
        let r = stats.snapshot(ArtifactKind::Reference);
        assert_eq!((r.misses, r.hits(), r.bytes_written), (1, 1, 100));
        let o = stats.snapshot(ArtifactKind::Outcome);
        assert_eq!((o.hits_disk, o.bytes_read), (1, 40));

        stats.kind(ArtifactKind::Reference).record_hit_disk(7);
        let later = stats.snapshot(ArtifactKind::Reference);
        let delta = later.since(&r);
        assert_eq!((delta.hits_disk, delta.misses, delta.bytes_read), (1, 0, 7));
        assert_eq!(stats.corrupt(), 0);

        stats.record_corrupt(ArtifactKind::Outcome);
        stats.record_quarantined(ArtifactKind::Outcome);
        assert_eq!(stats.corrupt(), 1);
        let o2 = stats.snapshot(ArtifactKind::Outcome);
        assert_eq!((o2.corrupt, o2.quarantined), (1, 1));
        assert_eq!(stats.snapshot(ArtifactKind::Reference).corrupt, 0);
    }

    #[test]
    fn snapshot_is_a_registry_view() {
        let stats = StoreStats::default();
        stats.kind(ArtifactKind::Reference).record_miss(64);
        stats.kind(ArtifactKind::Reference).record_hit_mem();
        stats.record_corrupt(ArtifactKind::Reference);

        let reg = stats.registry();
        assert_eq!(reg.counter_value("store.reference.misses"), 1);
        assert_eq!(reg.counter_value("store.reference.bytes_written"), 64);
        assert_eq!(reg.counter_value("store.reference.hits_mem"), 1);
        assert_eq!(reg.counter_value("store.corrupt"), stats.corrupt());
        assert_eq!(
            reg.counter_value("store.reference.corrupt"),
            stats.snapshot(ArtifactKind::Reference).corrupt
        );
        // Every kind registers its full counter set up front, so JSON views
        // list identical keys for cold and warm stores.
        let names: Vec<String> =
            reg.counters_snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 2 * 7 + 1);
        assert!(names.contains(&"store.outcome.quarantined".to_string()));
    }
}
