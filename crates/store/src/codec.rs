//! Compact versioned binary codec for store payloads.
//!
//! Artifacts sit on the harness's hot path (every warm run decodes one
//! `Reference` per matrix), so the encoding is raw little-endian binary —
//! no JSON, no field names. Losslessness is the hard requirement: a warm
//! run must be byte-identical to the cold run it replays, so every `f64`
//! travels as its exact bit pattern (NaN payloads and signed zeros
//! included) and `Dd` as its two components.
//!
//! Versioning: the artifact container header (see [`crate::store`]) carries
//! [`CODEC_VERSION`]; readers reject any other version rather than
//! misinterpreting bytes. Bump it whenever the payload schemas change.

use lpa_arith::Dd;
use lpa_dense::DMatrix;

/// Version of every payload schema written by this build.
pub const CODEC_VERSION: u8 = 1;

/// Decoding failure. Encoding is infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a field was complete.
    Truncated { needed: usize, remaining: usize },
    /// A length prefix exceeds what the remaining bytes could possibly hold.
    LengthOverflow { claimed: u64, remaining: usize },
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// Bytes were left over after the last field of a payload.
    Trailing(usize),
    /// A stored length does not fit in `usize` on this platform.
    UsizeOverflow(u64),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "payload truncated: needed {needed} bytes, {remaining} remaining")
            }
            CodecError::LengthOverflow { claimed, remaining } => {
                write!(f, "length prefix {claimed} exceeds {remaining} remaining bytes")
            }
            CodecError::BadTag(t) => write!(f, "unknown enum tag {t:#04x}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::UsizeOverflow(n) => write!(f, "stored length {n} overflows usize"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only payload writer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    #[inline]
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    #[inline]
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Exact bit pattern, so NaN payloads and `-0.0` survive round trips.
    #[inline]
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    #[inline]
    pub fn put_dd(&mut self, x: Dd) {
        self.put_f64(x.hi);
        self.put_f64(x.lo);
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_usize_slice(&mut self, xs: &[usize]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_usize(x);
        }
    }

    pub fn put_dd_slice(&mut self, xs: &[Dd]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_dd(x);
        }
    }

    /// Dimensions followed by the column-major element run.
    pub fn put_dd_matrix(&mut self, m: &DMatrix<Dd>) {
        self.put_usize(m.nrows());
        self.put_usize(m.ncols());
        for &x in m.as_slice() {
            self.put_dd(x);
        }
    }
}

/// Checked payload reader over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("take(8) yields 8 bytes")))
    }

    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let x = self.get_u64()?;
        usize::try_from(x).map_err(|_| CodecError::UsizeOverflow(x))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_dd(&mut self) -> Result<Dd, CodecError> {
        let hi = self.get_f64()?;
        let lo = self.get_f64()?;
        Ok(Dd { hi, lo })
    }

    /// Read a length prefix for elements of at least `elem_size` bytes,
    /// bounding it by the remaining payload so corrupt data cannot trigger
    /// a huge allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let claimed = self.get_u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if claimed > max {
            return Err(CodecError::LengthOverflow { claimed, remaining: self.remaining() });
        }
        Ok(claimed as usize)
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    pub fn get_usize_slice(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_usize()).collect()
    }

    pub fn get_dd_slice(&mut self) -> Result<Vec<Dd>, CodecError> {
        let len = self.get_len(16)?;
        (0..len).map(|_| self.get_dd()).collect()
    }

    pub fn get_dd_matrix(&mut self) -> Result<DMatrix<Dd>, CodecError> {
        let nrows = self.get_usize()?;
        let ncols = self.get_usize()?;
        let elems = nrows
            .checked_mul(ncols)
            .ok_or(CodecError::UsizeOverflow(u64::MAX))?;
        if (self.remaining() / 16) < elems {
            return Err(CodecError::LengthOverflow {
                claimed: elems as u64,
                remaining: self.remaining(),
            });
        }
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(self.get_dd()?);
        }
        Ok(DMatrix::from_fn(nrows, ncols, |i, j| data[j * nrows + i]))
    }

    /// Assert the whole payload was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(0xab);
        e.put_u64(u64::MAX - 3);
        e.put_usize(12345);
        e.put_f64(-0.0);
        e.put_f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN with payload
        e.put_bytes(b"hello");
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xab);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.get_usize().unwrap(), 12345);
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        d.finish().unwrap();
    }

    #[test]
    fn matrices_round_trip_including_empty_and_rectangular() {
        for (nrows, ncols) in [(0, 0), (0, 3), (3, 0), (1, 1), (4, 2), (2, 5)] {
            let m = DMatrix::<Dd>::from_fn(nrows, ncols, |i, j| {
                Dd::new((i as f64 + 1.0) / (j as f64 + 2.0), 1e-20 * (i + j) as f64)
            });
            let mut e = Encoder::new();
            e.put_dd_matrix(&m);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let back = d.get_dd_matrix().unwrap();
            d.finish().unwrap();
            assert_eq!(back.nrows(), nrows);
            assert_eq!(back.ncols(), ncols);
            for j in 0..ncols {
                for i in 0..nrows {
                    assert_eq!(back[(i, j)].hi.to_bits(), m[(i, j)].hi.to_bits());
                    assert_eq!(back[(i, j)].lo.to_bits(), m[(i, j)].lo.to_bits());
                }
            }
        }
    }

    #[test]
    fn corrupt_payloads_error_instead_of_allocating() {
        // Truncation mid-field.
        let mut e = Encoder::new();
        e.put_u64(7);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(d.get_u64(), Err(CodecError::Truncated { .. })));

        // A length prefix claiming far more elements than remain.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_dd_slice(), Err(CodecError::LengthOverflow { .. })));

        // Matrix dimensions whose product overflows.
        let mut e = Encoder::new();
        e.put_usize(usize::MAX);
        e.put_usize(usize::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_dd_matrix().is_err());

        // Trailing garbage is rejected.
        let d = Decoder::new(&[0u8; 3]);
        assert_eq!(d.finish(), Err(CodecError::Trailing(3)));
    }

    #[test]
    fn slices_round_trip() {
        let xs = vec![0usize, 1, usize::MAX, 42];
        let ds = vec![Dd::ZERO, Dd::ONE, Dd { hi: f64::INFINITY, lo: f64::NAN }];
        let mut e = Encoder::new();
        e.put_usize_slice(&xs);
        e.put_dd_slice(&ds);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_usize_slice().unwrap(), xs);
        let back = d.get_dd_slice().unwrap();
        d.finish().unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.iter().zip(&ds) {
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        }
    }
}
