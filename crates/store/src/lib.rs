//! # lpa-store — persistent content-addressed experiment store
//!
//! The paper's harness re-solves every matrix with a double-double
//! reference (tolerance 1e-20) on every invocation, and that solve
//! dominates figure wall time. This crate makes each expensive solve a
//! write-once artifact: a 128-bit content address is derived from *all*
//! compute inputs (matrix CSR bytes, solver options, format tag, and a
//! code-version salt), so a warm harness run looks every reference and
//! outcome up instead of recomputing, and an interrupted run resumes from
//! whatever the previous run persisted.
//!
//! Pieces:
//!
//! * [`hash`] — self-contained SipHash-2-4-128; the stable key space.
//! * [`codec`] — compact versioned binary payload codec (`Dd`
//!   vectors/matrices and friends; no JSON on the hot path).
//! * [`store`] — the on-disk layout `<root>/<2-hex>/<hash>.bin` with
//!   atomic tmp-file + rename writes and [`Store::get_or_compute`].
//! * [`cache`] — sharded in-process cache with per-key single-flight.
//! * [`stats`] — per-kind hit/miss/byte counters.
//! * [`admin`] — `scan` / `verify` / `gc`, backing the `lpa-store` CLI.
//!
//! What goes *into* a key (and therefore what invalidates artifacts) is
//! owned by the layer that computes the artifacts — see
//! `lpa_experiments::persist`, which also documents the salt-bumping
//! policy.

pub mod admin;
pub(crate) mod cache;
pub mod codec;
pub mod hash;
pub mod stats;
pub mod store;

pub use codec::{CodecError, Decoder, Encoder, CODEC_VERSION};
pub use hash::{hash128, Hasher128, Key};
pub use stats::{CountersSnapshot, StoreStats};
pub use store::{Artifact, ArtifactKind, Store, StoreError, QUARANTINE_DIR};
