//! Sharded in-process single-flight slots.
//!
//! The shard map is only ever locked long enough to clone out a per-key
//! slot `Arc`, so rayon workers hammering different keys contend on
//! nothing. The slot's own mutex is what serializes one key: the first
//! worker holds it across compute-and-fill while later arrivals block on
//! the same slot and then read the filled value — the compute runs exactly
//! once per key per process.
//!
//! Slots are *transient*: the [`crate::Store`] removes a key's map entry
//! as soon as its slot is resolved, so only workers already holding the
//! slot `Arc` see the in-memory payload and the map never pins artifact
//! bytes for the store's lifetime (harness access patterns touch each key
//! once; a later lookup re-reads the checksummed disk copy).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::hash::Key;

/// One key's cached payload (`None` until filled).
pub(crate) type Slot = Arc<Mutex<Option<Arc<Vec<u8>>>>>;

const SHARD_COUNT: usize = 16;

pub(crate) struct ShardedCache {
    shards: [Mutex<HashMap<Key, Slot>>; SHARD_COUNT],
}

impl ShardedCache {
    pub(crate) fn new() -> Self {
        ShardedCache { shards: core::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    /// Get (or create) the slot for `key`. Byte 8 picks the shard: byte 0
    /// already names the on-disk shard directory, and using an independent
    /// byte keeps disk layout and lock contention decorrelated.
    pub(crate) fn slot(&self, key: Key) -> Slot {
        let shard = &self.shards[key.0[8] as usize % SHARD_COUNT];
        // Survive poison: the map holds only complete entries (insertion is
        // a single `entry().or_default()`), so a panic elsewhere in the
        // process never leaves it in a broken state worth propagating.
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_default().clone()
    }

    /// Drop a key's map entry once its slot is resolved. Workers already
    /// blocked on the slot keep their `Arc` and read the filled value; the
    /// payload memory is freed when the last of them drops it.
    pub(crate) fn remove(&self, key: Key) {
        let shard = &self.shards[key.0[8] as usize % SHARD_COUNT];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash128;

    #[test]
    fn slots_are_stable_per_key() {
        let cache = ShardedCache::new();
        let a = hash128(b"a");
        let b = hash128(b"b");
        let slot_a1 = cache.slot(a);
        let slot_a2 = cache.slot(a);
        let slot_b = cache.slot(b);
        assert!(Arc::ptr_eq(&slot_a1, &slot_a2));
        assert!(!Arc::ptr_eq(&slot_a1, &slot_b));
        *slot_a1.lock().unwrap() = Some(Arc::new(vec![1, 2, 3]));
        assert_eq!(cache.slot(a).lock().unwrap().as_deref(), Some(&vec![1, 2, 3]));
        // After removal a fresh, empty slot is handed out; holders of the
        // old Arc still see their filled value.
        cache.remove(a);
        assert!(cache.slot(a).lock().unwrap().is_none());
        assert_eq!(slot_a1.lock().unwrap().as_deref(), Some(&vec![1, 2, 3]));
    }
}
