//! Store administration CLI.
//!
//! ```text
//! lpa-store stats  <dir> [--json]            per-kind artifact counts, bytes, quarantine
//! lpa-store verify <dir> [--repair|--json]   re-hash and check every artifact
//! lpa-store gc     <dir> [--max-bytes N] [--max-age-secs S] [--stale-numerics]
//! ```
//!
//! `--json` renders the same numbers in the `lpa-obs-registry/v1` counter
//! schema that the run manifest's store section uses, so scripts parse one
//! shape everywhere. `stats` and `verify` also break valid artifacts down
//! by recorded numerics table (`store.numerics.<kind>.<versions>`).
//!
//! `gc` needs at least one limit. `--stale-numerics` deletes artifacts
//! whose recorded feature versions no longer match this binary's
//! effective numerics table (builtin plus `LPA_NUMERICS_BUMP`) on a
//! feature relevant to their slice, and prints a greppable
//! `stale-numerics:` summary; then artifacts older than `--max-age-secs`
//! are deleted, then the oldest survivors until the store fits
//! `--max-bytes`.
//!
//! Exit codes: 0 clean, 1 corruption found (or the operation failed),
//! 2 usage error — so CI can use `verify` as an assertion and scripts
//! can tell "store is damaged" from "I called it wrong".
//! `verify --repair` additionally moves every corrupt file into
//! `<dir>/quarantine/` and prints a greppable `repair:` summary.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use lpa_store::admin;
use lpa_store::ArtifactKind;

fn usage() -> ExitCode {
    eprintln!("usage: lpa-store <stats|verify|gc> <dir> [--json] [--repair] [--max-bytes N] [--max-age-secs S] [--stale-numerics]");
    ExitCode::from(2)
}

/// Pretty-print a counter set in the shared `lpa-obs-registry/v1` shape.
fn print_counters(counters: &[(String, u64)]) {
    let rendered = serde_json::to_string_pretty(&lpa_obs::counters_value(counters))
        .expect("registry counter values always serialize");
    println!("{rendered}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(command), Some(dir)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let root = Path::new(dir);
    if !root.is_dir() {
        eprintln!("lpa-store: {dir} is not a directory");
        return ExitCode::from(2);
    }
    match command.as_str() {
        "stats" => match args.get(3).map(String::as_str) {
            None => stats(root, false),
            Some("--json") if args.len() == 4 => stats(root, true),
            Some(other) => {
                eprintln!("lpa-store stats: unknown flag {other}");
                ExitCode::from(2)
            }
        },
        "verify" => match args.get(3).map(String::as_str) {
            None => verify(root, false),
            Some("--json") if args.len() == 4 => verify(root, true),
            Some("--repair") if args.len() == 4 => repair(root),
            Some(other) => {
                eprintln!("lpa-store verify: unknown flag {other}");
                ExitCode::from(2)
            }
        },
        "gc" => {
            let mut policy = admin::GcPolicy::default();
            let mut i = 3;
            while i < args.len() {
                let value = |slot: &mut Option<u64>| match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(n) => {
                        *slot = Some(n);
                        true
                    }
                    None => {
                        eprintln!("lpa-store gc: {} needs an integer argument", args[i]);
                        false
                    }
                };
                let mut age_secs = None;
                // `--stale-numerics` is valueless; the value-taking flags
                // consume their argument below.
                if args[i] == "--stale-numerics" {
                    policy.stale_numerics = Some(lpa_numerics::NumericsConfig::current());
                    i += 1;
                    continue;
                }
                let ok = match args[i].as_str() {
                    "--max-bytes" => value(&mut policy.max_bytes),
                    "--max-age-secs" => value(&mut age_secs),
                    other => {
                        eprintln!("lpa-store gc: unknown flag {other}");
                        false
                    }
                };
                if !ok {
                    return ExitCode::from(2);
                }
                if let Some(secs) = age_secs {
                    policy.max_age = Some(Duration::from_secs(secs));
                }
                i += 2;
            }
            if policy.is_empty() {
                eprintln!("lpa-store gc: need --max-bytes N, --max-age-secs S and/or --stale-numerics");
                return ExitCode::from(2);
            }
            gc(root, &policy)
        }
        _ => usage(),
    }
}

fn stats(root: &Path, json: bool) -> ExitCode {
    match admin::stats_report(root) {
        Ok(report) => {
            if json {
                print_counters(&report.to_counters());
                return ExitCode::SUCCESS;
            }
            println!("store: {}", root.display());
            for kind in ArtifactKind::ALL {
                let (count, bytes) = report.per_kind[kind as usize];
                println!("  {:<10} {:>8} artifacts  {:>12} bytes", kind.name(), count, bytes);
            }
            println!(
                "  {:<10} {:>8} artifacts  {:>12} bytes",
                "total",
                report.total_count(),
                report.total_bytes()
            );
            if report.invalid > 0 {
                println!("  invalid    {:>8} files (run `lpa-store verify` for details)", report.invalid);
            }
            let (q_count, q_bytes) = report.quarantine;
            println!("  {:<10} {:>8} files      {:>12} bytes", "quarantine", q_count, q_bytes);
            print_numerics_slices(&report.numerics_slices);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-store stats: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `(reference=A outcome=B unknown=C)` from a per-kind corrupt count array.
fn per_kind_summary(counts: &[usize; ArtifactKind::COUNT + 1]) -> String {
    let mut parts: Vec<String> =
        ArtifactKind::ALL.iter().map(|k| format!("{}={}", k.name(), counts[*k as usize])).collect();
    parts.push(format!("unknown={}", counts[ArtifactKind::COUNT]));
    parts.join(" ")
}

fn print_verify(report: &admin::VerifyReport) {
    println!(
        "verified {} artifacts ({} bytes): {} corrupt ({})",
        report.ok,
        report.bytes,
        report.corrupt.len(),
        per_kind_summary(&report.corrupt_per_kind),
    );
    print_numerics_slices(&report.numerics_slices);
    for (path, reason) in &report.corrupt {
        eprintln!("  CORRUPT {}: {reason}", path.display());
    }
}

/// Per-(kind, recorded numerics table) artifact counts, one line per slice.
fn print_numerics_slices(slices: &[(ArtifactKind, String, u64)]) {
    for (kind, label, count) in slices {
        println!("  numerics[{}] {label}: {count} artifacts", kind.name());
    }
}

fn verify(root: &Path, json: bool) -> ExitCode {
    match admin::verify(root) {
        Ok(report) => {
            if json {
                print_counters(&report.to_counters());
            } else {
                print_verify(&report);
            }
            if report.corrupt.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lpa-store verify: {e}");
            ExitCode::FAILURE
        }
    }
}

fn repair(root: &Path) -> ExitCode {
    match admin::repair(root) {
        Ok(report) => {
            print_verify(&report.verify);
            println!(
                "repair: quarantined {} corrupt files ({})",
                report.quarantined,
                per_kind_summary(&report.verify.corrupt_per_kind),
            );
            if report.verify.corrupt.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lpa-store verify --repair: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gc(root: &Path, policy: &admin::GcPolicy) -> ExitCode {
    match admin::gc(root, policy) {
        Ok(report) => {
            if policy.stale_numerics.is_some() {
                // Greppable even when nothing was stale: CI asserts on this
                // line's exact counts.
                println!(
                    "stale-numerics: deleted {} stale artifacts ({} bytes)",
                    report.stale, report.stale_bytes
                );
            }
            println!(
                "gc: kept {} artifacts ({} bytes), deleted {} ({} bytes), swept {} tmp files",
                report.kept, report.kept_bytes, report.deleted, report.deleted_bytes, report.tmp_removed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-store gc: {e}");
            ExitCode::FAILURE
        }
    }
}
