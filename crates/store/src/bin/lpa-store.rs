//! Store administration CLI.
//!
//! ```text
//! lpa-store stats  <dir>                 per-kind artifact counts and bytes
//! lpa-store verify <dir>                 re-hash and check every artifact
//! lpa-store gc     <dir> [--max-bytes N] [--max-age-secs S]
//! ```
//!
//! `gc` needs at least one limit; when both are given, artifacts older
//! than `--max-age-secs` are deleted first, then the oldest survivors
//! until the store fits `--max-bytes`. `verify` exits non-zero if any
//! artifact fails validation, so CI can use it as an assertion.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use lpa_store::admin;
use lpa_store::ArtifactKind;

fn usage() -> ExitCode {
    eprintln!("usage: lpa-store <stats|verify|gc> <dir> [--max-bytes N] [--max-age-secs S]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(command), Some(dir)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let root = Path::new(dir);
    if !root.is_dir() {
        eprintln!("lpa-store: {dir} is not a directory");
        return ExitCode::FAILURE;
    }
    match command.as_str() {
        "stats" => stats(root),
        "verify" => verify(root),
        "gc" => {
            let mut policy = admin::GcPolicy::default();
            let mut i = 3;
            while i < args.len() {
                let value = |slot: &mut Option<u64>| match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(n) => {
                        *slot = Some(n);
                        true
                    }
                    None => {
                        eprintln!("lpa-store gc: {} needs an integer argument", args[i]);
                        false
                    }
                };
                let mut age_secs = None;
                let ok = match args[i].as_str() {
                    "--max-bytes" => value(&mut policy.max_bytes),
                    "--max-age-secs" => value(&mut age_secs),
                    other => {
                        eprintln!("lpa-store gc: unknown flag {other}");
                        false
                    }
                };
                if !ok {
                    return ExitCode::from(2);
                }
                if let Some(secs) = age_secs {
                    policy.max_age = Some(Duration::from_secs(secs));
                }
                i += 2;
            }
            if policy.is_empty() {
                eprintln!("lpa-store gc: need --max-bytes N and/or --max-age-secs S");
                return ExitCode::from(2);
            }
            gc(root, &policy)
        }
        _ => usage(),
    }
}

fn stats(root: &Path) -> ExitCode {
    match admin::stats_report(root) {
        Ok(report) => {
            println!("store: {}", root.display());
            for kind in ArtifactKind::ALL {
                let (count, bytes) = report.per_kind[kind as usize];
                println!("  {:<10} {:>8} artifacts  {:>12} bytes", kind.name(), count, bytes);
            }
            println!(
                "  {:<10} {:>8} artifacts  {:>12} bytes",
                "total",
                report.total_count(),
                report.total_bytes()
            );
            if report.invalid > 0 {
                println!("  invalid    {:>8} files (run `lpa-store verify` for details)", report.invalid);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-store stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn verify(root: &Path) -> ExitCode {
    match admin::verify(root) {
        Ok(report) => {
            println!(
                "verified {} artifacts ({} bytes): {} corrupt",
                report.ok,
                report.bytes,
                report.corrupt.len()
            );
            for (path, reason) in &report.corrupt {
                eprintln!("  CORRUPT {}: {reason}", path.display());
            }
            if report.corrupt.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lpa-store verify: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gc(root: &Path, policy: &admin::GcPolicy) -> ExitCode {
    match admin::gc(root, policy) {
        Ok(report) => {
            println!(
                "gc: kept {} artifacts ({} bytes), deleted {} ({} bytes), swept {} tmp files",
                report.kept, report.kept_bytes, report.deleted, report.deleted_bytes, report.tmp_removed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lpa-store gc: {e}");
            ExitCode::FAILURE
        }
    }
}
