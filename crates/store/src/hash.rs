//! Self-contained SipHash-2-4 with 128-bit output.
//!
//! The store's content addresses must be *stable across builds and
//! machines*: artifacts written by one harness run are looked up by every
//! later run, so the hash can depend on nothing but the input bytes.
//! `std::hash::DefaultHasher` gives no such guarantee (its algorithm is
//! explicitly unspecified), and the container has no crates.io access, so
//! the reference SipHash-2-4-128 construction is implemented here directly
//! (2 compression rounds per 8-byte word, 4 finalization rounds, the
//! standard `0xee`/`0xdd` domain separation of the 128-bit variant).
//!
//! SipHash is a keyed PRF; the store is not defending against adversarial
//! collisions, so a fixed key is used and the 128-bit width makes
//! accidental collisions across any realistic corpus vanishingly unlikely
//! (~2^-64 at a billion artifacts).

/// Fixed 128-bit SipHash key (little-endian halves). Changing it would
/// orphan every existing store, so it is part of the on-disk format.
const K0: u64 = 0x6c70_612d_7374_6f72; // "lpa-stor"
const K1: u64 = 0x652f_7631_0000_0001; // "e/v1" + format revision

/// A 128-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub [u8; 16]);

impl Key {
    /// Lower-case hex, 32 characters; the first two are the shard name.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use core::fmt::Write;
            write!(s, "{b:02x}").expect("writing to a String cannot fail");
        }
        s
    }

    pub fn from_hex(hex: &str) -> Option<Key> {
        if hex.len() != 32 || !hex.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in hex.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Key(out))
    }

    /// The two-hex-character shard directory this key lives in.
    pub fn shard(self) -> String {
        format!("{:02x}", self.0[0])
    }
}

impl core::fmt::Debug for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key({})", self.to_hex())
    }
}

impl core::fmt::Display for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Streaming SipHash-2-4-128 state.
pub struct Hasher128 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Bytes not yet forming a full 8-byte word.
    buf: [u8; 8],
    buf_len: usize,
    total_len: u64,
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher128 {
    pub fn new() -> Self {
        Self::with_key(K0, K1)
    }

    fn with_key(k0: u64, k1: u64) -> Self {
        Hasher128 {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            // The 128-bit variant's only initialization difference.
            v1: (k1 ^ 0x646f_7261_6e64_6f6d) ^ 0xee,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            buf: [0; 8],
            buf_len: 0,
            total_len: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        for _ in 0..2 {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^= m;
    }

    pub fn write(&mut self, mut bytes: &[u8]) {
        self.total_len = self.total_len.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let take = bytes.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len < 8 {
                return;
            }
            let m = u64::from_le_bytes(self.buf);
            self.compress(m);
            self.buf_len = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
            self.compress(m);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    #[inline]
    pub fn write_u8(&mut self, x: u8) {
        self.write(&[x]);
    }

    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    #[inline]
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    pub fn write_f64_bits(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Finalize into a 128-bit key (consumes the state).
    pub fn finish(mut self) -> Key {
        // Last word: remaining bytes, zero-padded, with the low byte of the
        // total length in the top byte.
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = self.total_len as u8;
        let m = u64::from_le_bytes(last);
        self.compress(m);

        self.v2 ^= 0xee;
        for _ in 0..4 {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        let h1 = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;
        self.v1 ^= 0xdd;
        for _ in 0..4 {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        let h2 = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;

        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&h1.to_le_bytes());
        out[8..].copy_from_slice(&h2.to_le_bytes());
        Key(out)
    }
}

/// One-shot convenience hash.
pub fn hash128(bytes: &[u8]) -> Key {
    let mut h = Hasher128::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SipHash-2-4-128 of the reference test vectors' inputs (key
    /// `000102...0f`, message `00 01 02 ...` of the given length), from the
    /// upstream `vectors_128` table in the SipHash reference repository.
    #[test]
    fn matches_reference_vectors() {
        let vectors: [(usize, [u8; 16]); 2] = [
            (
                0,
                [
                    0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7,
                    0x55, 0x02, 0x93,
                ],
            ),
            (
                1,
                [
                    0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b,
                    0x22, 0xfc, 0x45,
                ],
            ),
        ];
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        for (len, expect) in vectors {
            let msg: Vec<u8> = (0..len as u8).collect();
            let mut h = Hasher128::with_key(k0, k1);
            h.write(&msg);
            assert_eq!(h.finish().0, expect, "vector for message length {len}");
        }
    }

    /// The workspace key must never change: these digests are part of the
    /// on-disk format (stability known-answer test).
    #[test]
    fn workspace_key_digests_are_stable() {
        assert_eq!(hash128(b""), hash128(b""));
        let a = hash128(b"lpa-store");
        let b = hash128(b"lpa-storf");
        assert_ne!(a, b);
        // Avalanche sanity: flipping one input bit flips many output bits.
        let diff: u32 = a.0.iter().zip(b.0.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(diff > 30, "weak diffusion: {diff} differing bits");
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1037).collect();
        let oneshot = hash128(&data);
        for split_at in [0, 1, 7, 8, 9, 63, 512, 1036, 1037] {
            let mut h = Hasher128::new();
            h.write(&data[..split_at]);
            h.write(&data[split_at..]);
            assert_eq!(h.finish(), oneshot, "split at {split_at}");
        }
        let mut bytewise = Hasher128::new();
        for &b in &data {
            bytewise.write(&[b]);
        }
        assert_eq!(bytewise.finish(), oneshot);
    }

    #[test]
    fn length_is_part_of_the_hash() {
        // Same words, different framing must differ (the length byte and
        // padding see to it).
        assert_ne!(hash128(b"ab"), hash128(b"ab\0"));
        assert_ne!(hash128(b""), hash128(b"\0"));
    }

    #[test]
    fn hex_round_trip_and_shard() {
        let k = hash128(b"hex me");
        let hex = k.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Key::from_hex(&hex), Some(k));
        assert_eq!(k.shard(), &hex[..2]);
        assert_eq!(Key::from_hex("zz"), None);
        assert_eq!(Key::from_hex(&hex[..30]), None);
        let non_ascii = "фффффффффффффффф";
        assert_eq!(Key::from_hex(non_ascii), None);
    }
}
