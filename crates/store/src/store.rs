//! The on-disk artifact store.
//!
//! Layout (content-addressed, two-level):
//!
//! ```text
//! <root>/
//!   .tmp/                 in-flight writes (unique names, renamed away)
//!   <2-hex>/              shard = first byte of the key
//!     <32-hex>.bin        one artifact: header + checksummed payload
//! ```
//!
//! Writes are tmp-file + `rename`, which is atomic on POSIX filesystems:
//! concurrent harness *processes* may both compute the same artifact, but a
//! reader only ever observes either no file or a complete one — never a
//! torn write. Both writers produce identical bytes (the key commits to all
//! compute inputs), so the race is benign.
//!
//! Artifact container format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "LPST"
//!      4     1  container/codec version (see [`crate::codec::CODEC_VERSION`])
//!      5     1  artifact kind
//!      6     2  reserved (zero)
//!      8    16  key (must match the file name)
//!     24    16  SipHash-2-4-128 checksum of the payload
//!     40     8  payload length
//!     48     …  payload
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::ShardedCache;
use crate::codec::CODEC_VERSION;
use crate::hash::{hash128, Key};
use crate::stats::StoreStats;

pub(crate) const MAGIC: [u8; 4] = *b"LPST";
pub(crate) const HEADER_LEN: usize = 48;

/// What an artifact holds; stored in the header so `lpa-store stats` can
/// break a store down without decoding payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A matrix's double-double reference solution (or its recorded failure).
    Reference = 0,
    /// One (matrix, format) outcome.
    Outcome = 1,
}

impl ArtifactKind {
    pub const COUNT: usize = 2;
    pub const ALL: [ArtifactKind; 2] = [ArtifactKind::Reference, ArtifactKind::Outcome];

    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Reference => "reference",
            ArtifactKind::Outcome => "outcome",
        }
    }

    pub fn from_u8(x: u8) -> Option<ArtifactKind> {
        match x {
            0 => Some(ArtifactKind::Reference),
            1 => Some(ArtifactKind::Outcome),
            _ => None,
        }
    }
}

/// A fully decoded artifact container.
pub struct Artifact {
    pub kind: ArtifactKind,
    pub key: Key,
    pub payload: Vec<u8>,
}

/// Serialize an artifact container (header + payload).
pub(crate) fn encode_artifact(kind: ArtifactKind, key: Key, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(CODEC_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&key.0);
    out.extend_from_slice(&hash128(payload).0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate an artifact container (magic, version, length,
/// payload checksum). The error string describes the corruption for
/// `lpa-store verify`.
pub(crate) fn decode_artifact(bytes: &[u8]) -> Result<Artifact, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("file shorter than the {HEADER_LEN}-byte header"));
    }
    if bytes[0..4] != MAGIC {
        return Err("bad magic".to_string());
    }
    if bytes[4] != CODEC_VERSION {
        return Err(format!("codec version {} (this build reads {})", bytes[4], CODEC_VERSION));
    }
    let kind = ArtifactKind::from_u8(bytes[5])
        .ok_or_else(|| format!("unknown artifact kind {}", bytes[5]))?;
    let key = Key(bytes[8..24].try_into().expect("16-byte slice"));
    let checksum = Key(bytes[24..40].try_into().expect("16-byte slice"));
    let len = u64::from_le_bytes(bytes[40..48].try_into().expect("8-byte slice"));
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(format!("payload length {} but {} bytes present", len, payload.len()));
    }
    if hash128(payload) != checksum {
        return Err("payload checksum mismatch".to_string());
    }
    Ok(Artifact { kind, key, payload: payload.to_vec() })
}

/// A content-addressed artifact store rooted at one directory.
///
/// Safe to share across threads (`&Store` is all the driver's rayon workers
/// need) and safe to open from several processes at once.
pub struct Store {
    root: PathBuf,
    cache: ShardedCache,
    stats: StoreStats,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(root.join(".tmp"))?;
        Ok(Store {
            root,
            cache: ShardedCache::new(),
            stats: StoreStats::default(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Live counters of this store handle (per artifact kind).
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Final path of an artifact.
    pub fn path_of(&self, key: Key) -> PathBuf {
        self.root.join(key.shard()).join(format!("{}.bin", key.to_hex()))
    }

    fn read_disk(&self, kind: ArtifactKind, key: Key) -> io::Result<Option<Arc<Vec<u8>>>> {
        let bytes = match std::fs::read(self.path_of(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        match decode_artifact(&bytes) {
            Ok(a) if a.kind == kind && a.key == key => Ok(Some(Arc::new(a.payload))),
            // Corrupt or mislabelled: treat as a miss; the caller recomputes
            // and the rewrite replaces the bad file.
            _ => {
                self.stats.record_corrupt();
                Ok(None)
            }
        }
    }

    fn write_disk(&self, kind: ArtifactKind, key: Key, payload: &[u8]) -> io::Result<u64> {
        let bytes = encode_artifact(kind, key, payload);
        let final_path = self.path_of(key);
        std::fs::create_dir_all(final_path.parent().expect("artifact path has a shard parent"))?;
        // Unique tmp name per (process, write) so concurrent writers of the
        // same key never share a tmp file; the rename is atomic.
        let tmp = self.root.join(".tmp").join(format!(
            "{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &final_path)?;
        Ok(bytes.len() as u64)
    }

    /// Look an artifact up (single-flight slot, then disk). `Ok(None)`
    /// means not present; corrupt on-disk artifacts also read as absent.
    pub fn get(&self, kind: ArtifactKind, key: Key) -> io::Result<Option<Arc<Vec<u8>>>> {
        let slot = self.cache.slot(key);
        let mut filled = slot.lock().expect("store slot mutex poisoned");
        if let Some(payload) = filled.as_ref() {
            self.stats.kind(kind).record_hit_mem();
            return Ok(Some(payload.clone()));
        }
        let result = self.read_disk(kind, key)?;
        if let Some(payload) = &result {
            self.stats.kind(kind).record_hit_disk(payload.len() as u64);
            *filled = Some(payload.clone());
        }
        self.cache.remove(key);
        Ok(result)
    }

    /// Insert an artifact unconditionally (atomic write, counted as a
    /// miss/recompute).
    pub fn put(&self, kind: ArtifactKind, key: Key, payload: Vec<u8>) -> io::Result<Arc<Vec<u8>>> {
        let slot = self.cache.slot(key);
        let mut filled = slot.lock().expect("store slot mutex poisoned");
        let written = self.write_disk(kind, key, &payload)?;
        self.stats.kind(kind).record_miss(written);
        let payload = Arc::new(payload);
        *filled = Some(payload.clone());
        self.cache.remove(key);
        Ok(payload)
    }

    /// The store's reason to exist: return the stored payload for `key`, or
    /// run `compute` exactly once (per process — concurrent threads block on
    /// the same key's slot and read the filled value), persist its result,
    /// and return it.
    ///
    /// The slot is dropped from the in-process map once resolved (the
    /// driver touches each key exactly once per run, so holding payloads
    /// for the store's lifetime would be pure memory overhead); a repeated
    /// lookup through the same handle is served by the checksummed disk
    /// copy, never by a recompute.
    pub fn get_or_compute(
        &self,
        kind: ArtifactKind,
        key: Key,
        compute: impl FnOnce() -> Vec<u8>,
    ) -> io::Result<Arc<Vec<u8>>> {
        let slot = self.cache.slot(key);
        let mut filled = slot.lock().expect("store slot mutex poisoned");
        if let Some(payload) = filled.as_ref() {
            self.stats.kind(kind).record_hit_mem();
            return Ok(payload.clone());
        }
        let result = (|| {
            if let Some(payload) = self.read_disk(kind, key)? {
                self.stats.kind(kind).record_hit_disk(payload.len() as u64);
                return Ok(payload);
            }
            let payload = compute();
            let written = self.write_disk(kind, key, &payload)?;
            self.stats.kind(kind).record_miss(written);
            Ok(Arc::new(payload))
        })();
        if let Ok(payload) = &result {
            *filled = Some(payload.clone());
        }
        // Resolved (or failed): either way the map entry must not linger —
        // blocked racers keep their slot Arc, later callers go to disk, and
        // an I/O failure leaves the key retryable.
        self.cache.remove(key);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash128;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lpa-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_counters() {
        let dir = scratch_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"round-trip");
        assert!(store.get(ArtifactKind::Reference, key).unwrap().is_none());

        let got = store
            .get_or_compute(ArtifactKind::Reference, key, || b"payload".to_vec())
            .unwrap();
        assert_eq!(&**got, b"payload");
        // Second lookup through the same handle: the slot was dropped after
        // resolution, so this is a (checksummed) disk read, not a recompute.
        let again = store.get_or_compute(ArtifactKind::Reference, key, || panic!("must not recompute")).unwrap();
        assert_eq!(&**again, b"payload");
        let s = store.stats().snapshot(ArtifactKind::Reference);
        assert_eq!((s.misses, s.hits_mem, s.hits_disk), (1, 0, 1));
        assert!(s.bytes_written >= b"payload".len() as u64);

        // A fresh handle (second process in spirit) reads it from disk.
        let store2 = Store::open(&dir).unwrap();
        let from_disk = store2
            .get_or_compute(ArtifactKind::Reference, key, || panic!("must not recompute"))
            .unwrap();
        assert_eq!(&**from_disk, b"payload");
        let s2 = store2.stats().snapshot(ArtifactKind::Reference);
        assert_eq!((s2.misses, s2.hits_disk), (0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifacts_read_as_absent_and_are_healed() {
        let dir = scratch_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"heal-me");
        store.put(ArtifactKind::Outcome, key, b"good".to_vec()).unwrap();

        // Flip a payload byte on disk, then look up through a fresh handle.
        let path = store.path_of(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let store2 = Store::open(&dir).unwrap();
        assert!(store2.get(ArtifactKind::Outcome, key).unwrap().is_none());
        assert_eq!(store2.stats().corrupt(), 1);
        let healed =
            store2.get_or_compute(ArtifactKind::Outcome, key, || b"good".to_vec()).unwrap();
        assert_eq!(&**healed, b"good");
        // And the disk copy is valid again.
        let store3 = Store::open(&dir).unwrap();
        assert_eq!(&**store3.get(ArtifactKind::Outcome, key).unwrap().unwrap(), b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dir = scratch_dir("kind");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"kinded");
        store.put(ArtifactKind::Reference, key, b"ref".to_vec()).unwrap();
        let store2 = Store::open(&dir).unwrap();
        assert!(store2.get(ArtifactKind::Outcome, key).unwrap().is_none());
        assert_eq!(store2.stats().corrupt(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn container_encoding_is_self_describing() {
        let key = hash128(b"container");
        let bytes = encode_artifact(ArtifactKind::Outcome, key, b"xyz");
        let a = decode_artifact(&bytes).unwrap();
        assert_eq!(a.kind, ArtifactKind::Outcome);
        assert_eq!(a.key, key);
        assert_eq!(a.payload, b"xyz");
        assert!(decode_artifact(&bytes[..HEADER_LEN - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_artifact(&bad).is_err());
        let mut wrong_version = bytes;
        wrong_version[4] = 99;
        assert!(decode_artifact(&wrong_version).is_err());
    }
}
