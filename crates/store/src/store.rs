//! The on-disk artifact store.
//!
//! Layout (content-addressed, two-level):
//!
//! ```text
//! <root>/
//!   .tmp/                 in-flight writes (unique names, renamed away)
//!   quarantine/           corrupt artifacts moved aside (never scanned)
//!   <2-hex>/              shard = first byte of the key
//!     <32-hex>.bin        one artifact: header + checksummed payload
//! ```
//!
//! Writes are tmp-file + `rename`, which is atomic on POSIX filesystems:
//! concurrent harness *processes* may both compute the same artifact, but a
//! reader only ever observes either no file or a complete one — never a
//! torn write. Both writers produce identical bytes (the key commits to all
//! compute inputs), so the race is benign.
//!
//! Artifact container format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "LPST"
//!      4     1  frame version (1 = legacy, 2 = trailer, 3 = numerics)
//!      5     1  artifact kind
//!      6     1  (v3) format id + 1; 0 = no format (reserved zero in v1/v2)
//!      7     1  reserved (zero)
//!      8    16  key (must match the file name)
//!     24    16  SipHash-2-4-128 checksum of the payload
//!     40     8  payload length
//!     48     …  payload
//!      …     2  (v3 only) numerics section length, u16
//!      …     …  (v3 only) numerics section: the producing NumericsConfig,
//!               canonically serialized (lpa-numerics `to_bytes`)
//!      …    16  (v2/v3) SipHash-2-4-128 of everything above the trailer
//! ```
//!
//! v2 frames added the whole-frame trailer so header corruption — not just
//! payload corruption — is detected. v3 frames (every new write) also
//! record the producing format id and numerics-feature table, so
//! `lpa-store stats`/`verify` can break a store down by numerics version
//! and `gc --stale-numerics` can drop exactly the slices a feature bump
//! invalidated. v1/v2 frames are still read (format/config unknown), so
//! stores written before these fields existed stay warm.
//!
//! ## Self-healing
//!
//! A corrupt or mislabelled artifact never panics a run: the decode returns
//! a typed [`StoreError`], the reader treats the key as a miss (single-flight
//! recompute rewrites it), and the bad file is moved to `quarantine/` for
//! post-mortem (`lpa-store verify --repair` does the same offline). Raw
//! I/O failures are retried with backoff ([`Store::set_io_retries`]).
//!
//! Fault points (`lpa-faults`): `store.io.transient` makes a raw read/write
//! fail retryably, `store.read.corrupt` flips a byte of the frame after the
//! read, `store.write.torn` truncates the frame before the write.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::{ShardedCache, Slot};
use crate::hash::{hash128, Key};
use crate::stats::StoreStats;

pub(crate) const MAGIC: [u8; 4] = *b"LPST";
pub(crate) const HEADER_LEN: usize = 48;
/// Length of the v2 whole-frame checksum trailer.
pub(crate) const TRAILER_LEN: usize = 16;
/// Legacy frame: no trailer.
pub(crate) const FRAME_V1: u8 = 1;
/// Legacy frame: whole-frame SipHash trailer after the payload.
pub(crate) const FRAME_V2: u8 = 2;
/// Current frame: format byte + numerics section + whole-frame trailer.
pub(crate) const FRAME_V3: u8 = 3;
/// Length prefix of the v3 numerics section.
pub(crate) const NUMERICS_LEN_LEN: usize = 2;
/// Corrupt artifacts are moved here (not a 2-hex name, so scans skip it).
pub const QUARANTINE_DIR: &str = "quarantine";

/// Default [`Store::set_io_retries`] budget.
pub const DEFAULT_IO_RETRIES: u32 = 2;

/// Typed failure of a store read/decode path. Every malformed input maps
/// to `Truncated` or `Corrupt` — never a panic — so a damaged store
/// degrades into recomputes instead of killing the harness.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed (after retries).
    Io(io::Error),
    /// Fewer bytes than the frame claims (torn write, truncated file).
    Truncated { expected: usize, got: usize },
    /// Structurally invalid bytes (bad magic/version/kind/checksum…).
    Corrupt(String),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O failed: {e}"),
            StoreError::Truncated { expected, got } => {
                write!(f, "truncated frame: {got} bytes where at least {expected} are needed")
            }
            StoreError::Corrupt(reason) => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What an artifact holds; stored in the header so `lpa-store stats` can
/// break a store down without decoding payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A matrix's double-double reference solution (or its recorded failure).
    Reference = 0,
    /// One (matrix, format) outcome.
    Outcome = 1,
}

impl ArtifactKind {
    pub const COUNT: usize = 2;
    pub const ALL: [ArtifactKind; 2] = [ArtifactKind::Reference, ArtifactKind::Outcome];

    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Reference => "reference",
            ArtifactKind::Outcome => "outcome",
        }
    }

    pub fn from_u8(x: u8) -> Option<ArtifactKind> {
        match x {
            0 => Some(ArtifactKind::Reference),
            1 => Some(ArtifactKind::Outcome),
            _ => None,
        }
    }
}

/// A fully decoded artifact container.
pub struct Artifact {
    pub kind: ArtifactKind,
    pub key: Key,
    pub payload: Vec<u8>,
    /// Stable wire format id the artifact was computed for (outcomes).
    /// `None` for references and for v1/v2 frames, which predate the field.
    pub format: Option<u8>,
    /// The producing numerics table, canonically serialized
    /// (`lpa_numerics::NumericsConfig::to_bytes`). `None` for v1/v2
    /// frames — by the byte-stability contract those were produced at the
    /// baseline table.
    pub numerics: Option<Vec<u8>>,
}

/// Serialize an artifact container (v3: header + payload + numerics
/// section + whole-frame trailer).
pub(crate) fn encode_artifact(
    kind: ArtifactKind,
    key: Key,
    payload: &[u8],
    format: Option<u8>,
    numerics: &[u8],
) -> Vec<u8> {
    assert!(numerics.len() <= u16::MAX as usize, "numerics section too large");
    let mut out = Vec::with_capacity(
        HEADER_LEN + payload.len() + NUMERICS_LEN_LEN + numerics.len() + TRAILER_LEN,
    );
    out.extend_from_slice(&MAGIC);
    out.push(FRAME_V3);
    out.push(kind as u8);
    // Format ids are stable wire values starting at 0, so the byte stores
    // id + 1 and keeps 0 as "no format" (references, pre-v3 frames).
    out.push(format.map_or(0, |id| id.checked_add(1).expect("format id below 255")));
    out.push(0);
    out.extend_from_slice(&key.0);
    out.extend_from_slice(&hash128(payload).0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&(numerics.len() as u16).to_le_bytes());
    out.extend_from_slice(numerics);
    let trailer = hash128(&out);
    out.extend_from_slice(&trailer.0);
    out
}

/// Parse and validate an artifact container (magic, version, length,
/// whole-frame trailer for v2, payload checksum). Reads both frame
/// versions; the error describes the corruption for `lpa-store verify`.
pub(crate) fn decode_artifact(bytes: &[u8]) -> Result<Artifact, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated { expected: HEADER_LEN, got: bytes.len() });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".to_string()));
    }
    let version = bytes[4];
    if version != FRAME_V1 && version != FRAME_V2 && version != FRAME_V3 {
        return Err(StoreError::Corrupt(format!(
            "frame version {version} (this build reads {FRAME_V1} through {FRAME_V3})"
        )));
    }
    let kind = ArtifactKind::from_u8(bytes[5])
        .ok_or_else(|| StoreError::Corrupt(format!("unknown artifact kind {}", bytes[5])))?;
    let key = Key(bytes[8..24].try_into().expect("16-byte slice"));
    let checksum = Key(bytes[24..40].try_into().expect("16-byte slice"));
    let len = u64::from_le_bytes(bytes[40..48].try_into().expect("8-byte slice"));
    let trailer_len = if version == FRAME_V1 { 0 } else { TRAILER_LEN };
    // Everything the frame carries beyond the payload, before the
    // variable-length v3 numerics section is known.
    let fixed_extra = trailer_len + if version == FRAME_V3 { NUMERICS_LEN_LEN } else { 0 };
    if bytes.len() < HEADER_LEN + fixed_extra {
        return Err(StoreError::Truncated { expected: HEADER_LEN + fixed_extra, got: bytes.len() });
    }
    // Cap the claimed length against what is actually present before any
    // arithmetic on it: a corrupt header must not drive allocations.
    let present = (bytes.len() - HEADER_LEN).saturating_sub(fixed_extra);
    if len > present as u64 {
        let expected = (HEADER_LEN + fixed_extra).saturating_add(len.min(usize::MAX as u64) as usize);
        return Err(StoreError::Truncated { expected, got: bytes.len() });
    }
    let len = len as usize;
    let numerics_range = if version == FRAME_V3 {
        let at = HEADER_LEN + len;
        let nlen = u16::from_le_bytes(bytes[at..at + 2].try_into().expect("2-byte slice")) as usize;
        let total = at + NUMERICS_LEN_LEN + nlen + TRAILER_LEN;
        if bytes.len() < total {
            return Err(StoreError::Truncated { expected: total, got: bytes.len() });
        }
        if bytes.len() > total {
            return Err(StoreError::Corrupt(format!(
                "frame claims {total} bytes but {} are present",
                bytes.len()
            )));
        }
        Some(at + NUMERICS_LEN_LEN..at + NUMERICS_LEN_LEN + nlen)
    } else {
        if len != present {
            return Err(StoreError::Corrupt(format!(
                "payload length {len} but {present} bytes present"
            )));
        }
        None
    };
    if trailer_len > 0 {
        let body = bytes.len() - TRAILER_LEN;
        let trailer = Key(bytes[body..].try_into().expect("16-byte slice"));
        if hash128(&bytes[..body]) != trailer {
            return Err(StoreError::Corrupt("frame checksum mismatch".to_string()));
        }
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    if hash128(payload) != checksum {
        return Err(StoreError::Corrupt("payload checksum mismatch".to_string()));
    }
    let format = match (version, bytes[6]) {
        (FRAME_V3, 0) => None,
        (FRAME_V3, b) => Some(b - 1),
        _ => None,
    };
    Ok(Artifact {
        kind,
        key,
        payload: payload.to_vec(),
        format,
        numerics: numerics_range.map(|r| bytes[r].to_vec()),
    })
}

/// A content-addressed artifact store rooted at one directory.
///
/// Safe to share across threads (`&Store` is all the driver's rayon workers
/// need) and safe to open from several processes at once.
pub struct Store {
    root: PathBuf,
    cache: ShardedCache,
    stats: StoreStats,
    tmp_counter: AtomicU64,
    io_retries: AtomicU32,
    /// Serialized numerics table stamped into every frame this handle
    /// writes ([`lpa_numerics::NumericsConfig::to_bytes`] of the effective
    /// table at open; [`Store::set_numerics`] overrides it for tests).
    numerics: std::sync::Mutex<Arc<Vec<u8>>>,
}

impl Store {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(root.join(".tmp"))?;
        Ok(Store {
            root,
            cache: ShardedCache::new(),
            stats: StoreStats::default(),
            tmp_counter: AtomicU64::new(0),
            io_retries: AtomicU32::new(DEFAULT_IO_RETRIES),
            numerics: std::sync::Mutex::new(Arc::new(
                lpa_numerics::NumericsConfig::current().to_bytes(),
            )),
        })
    }

    /// Durability barrier: fsync the store's directories so every
    /// artifact rename performed so far survives a crash of the host.
    /// Individual writes are already atomic (tmp + rename); what a
    /// rename alone does not guarantee is that the *directory entry* hit
    /// the platter. Batch callers that must not lose work on power loss
    /// — the `lpa-serve` graceful shutdown is the canonical one — call
    /// this once at the end instead of paying an fsync per artifact.
    pub fn flush(&self) -> io::Result<()> {
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.is_dir() {
                std::fs::File::open(&path)?.sync_all()?;
            }
        }
        std::fs::File::open(&self.root)?.sync_all()
    }

    /// Override the numerics table recorded in frames written through this
    /// handle (tests and migration tooling; processes normally stamp the
    /// effective table captured at [`Store::open`]).
    pub fn set_numerics(&self, config: &lpa_numerics::NumericsConfig) {
        *self.numerics.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(config.to_bytes());
    }

    fn numerics_bytes(&self) -> Arc<Vec<u8>> {
        self.numerics.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Live counters of this store handle (per artifact kind).
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Set the retry budget for raw I/O operations (reads and writes that
    /// fail with anything but `NotFound` are retried with exponential
    /// backoff up to this many times). Default [`DEFAULT_IO_RETRIES`].
    pub fn set_io_retries(&self, retries: u32) {
        self.io_retries.store(retries, Ordering::Relaxed);
    }

    /// The current raw-I/O retry budget.
    pub fn io_retries(&self) -> u32 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Final path of an artifact.
    pub fn path_of(&self, key: Key) -> PathBuf {
        self.root.join(key.shard()).join(format!("{}.bin", key.to_hex()))
    }

    /// Run a raw I/O operation with the configured retry budget. `NotFound`
    /// is never retried (absence is an answer, not a fault); everything
    /// else — including the injected `store.io.transient` error — backs
    /// off briefly and retries.
    fn with_io_retries<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let budget = self.io_retries.load(Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(e) if e.kind() != io::ErrorKind::NotFound && attempt < budget => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1u64 << attempt.min(6)));
                }
                other => return other,
            }
        }
    }

    /// Move a corrupt artifact file aside to `quarantine/` and bump the
    /// per-kind counters. Failure to move (e.g. a racing writer already
    /// replaced the file) is ignored: quarantine is best-effort forensics,
    /// the authoritative recovery is the recompute-and-rewrite.
    fn quarantine(&self, kind: ArtifactKind, path: &Path) {
        self.stats.record_corrupt(kind);
        let dir = self.root.join(QUARANTINE_DIR);
        let Some(name) = path.file_name() else { return };
        if std::fs::create_dir_all(&dir).is_ok()
            && std::fs::rename(path, quarantine_dest(&dir, name)).is_ok()
        {
            self.stats.record_quarantined(kind);
        }
    }

    fn read_disk(
        &self,
        kind: ArtifactKind,
        key: Key,
        format: Option<u8>,
    ) -> io::Result<Option<Arc<Vec<u8>>>> {
        let path = self.path_of(key);
        let mut bytes = match self.with_io_retries(|| {
            if lpa_faults::fired(lpa_faults::STORE_IO_TRANSIENT) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected fault: store.io.transient",
                ));
            }
            std::fs::read(&path)
        }) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        lpa_faults::corrupt_if(lpa_faults::STORE_READ_CORRUPT, &mut bytes);
        // A frame is mislabelled when its recorded format contradicts the
        // expected one; either side being unknown (references, v1/v2
        // frames, format-agnostic callers) is not a contradiction.
        let format_matches = |a: &Artifact| match (a.format, format) {
            (Some(got), Some(want)) => got == want,
            _ => true,
        };
        match decode_artifact(&bytes) {
            Ok(a) if a.kind == kind && a.key == key && format_matches(&a) => {
                Ok(Some(Arc::new(a.payload)))
            }
            // Corrupt or mislabelled: quarantine the bad file and treat the
            // key as a miss; the caller recomputes and the rewrite heals it.
            _ => {
                self.quarantine(kind, &path);
                Ok(None)
            }
        }
    }

    fn write_disk(
        &self,
        kind: ArtifactKind,
        key: Key,
        payload: &[u8],
        format: Option<u8>,
    ) -> io::Result<u64> {
        let mut bytes = encode_artifact(kind, key, payload, format, &self.numerics_bytes());
        if lpa_faults::fired(lpa_faults::STORE_WRITE_TORN) {
            // Simulate a torn write: the file appears, the frame is cut
            // short, and the *writer still reports success* — exactly the
            // failure the v2 trailer and quarantine path must absorb.
            bytes.truncate(HEADER_LEN + (bytes.len() - HEADER_LEN) / 2);
        }
        let final_path = self.path_of(key);
        std::fs::create_dir_all(final_path.parent().expect("artifact path has a shard parent"))?;
        // Unique tmp name per (process, write) so concurrent writers of the
        // same key never share a tmp file; the rename is atomic.
        let tmp = self.root.join(".tmp").join(format!(
            "{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        self.with_io_retries(|| {
            if lpa_faults::fired(lpa_faults::STORE_IO_TRANSIENT) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected fault: store.io.transient",
                ));
            }
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, &final_path)
        })?;
        Ok(bytes.len() as u64)
    }

    /// Look an artifact up (single-flight slot, then disk). `Ok(None)`
    /// means not present; corrupt on-disk artifacts also read as absent
    /// (and are quarantined).
    pub fn get(&self, kind: ArtifactKind, key: Key) -> io::Result<Option<Arc<Vec<u8>>>> {
        self.get_for(kind, key, None)
    }

    /// [`Store::get`] with the expected format id: a frame whose recorded
    /// format contradicts it is treated as mislabelled (quarantined, miss).
    pub fn get_for(
        &self,
        kind: ArtifactKind,
        key: Key,
        format: Option<u8>,
    ) -> io::Result<Option<Arc<Vec<u8>>>> {
        let _span = lpa_obs::span(lpa_obs::STORE_GET);
        let slot = self.cache.slot(key);
        let _cleanup = SlotCleanup { cache: &self.cache, key };
        let mut filled = lock_slot(&slot);
        if let Some(payload) = filled.as_ref() {
            self.stats.kind(kind).record_hit_mem();
            return Ok(Some(payload.clone()));
        }
        let result = self.read_disk(kind, key, format)?;
        if let Some(payload) = &result {
            self.stats.kind(kind).record_hit_disk(payload.len() as u64);
            *filled = Some(payload.clone());
        }
        Ok(result)
    }

    /// Insert an artifact unconditionally (atomic write, counted as a
    /// miss/recompute).
    pub fn put(&self, kind: ArtifactKind, key: Key, payload: Vec<u8>) -> io::Result<Arc<Vec<u8>>> {
        self.put_for(kind, key, payload, None)
    }

    /// [`Store::put`] recording the format id the artifact was computed
    /// for in the frame (outcomes; references pass `None`).
    pub fn put_for(
        &self,
        kind: ArtifactKind,
        key: Key,
        payload: Vec<u8>,
        format: Option<u8>,
    ) -> io::Result<Arc<Vec<u8>>> {
        let _span = lpa_obs::span(lpa_obs::STORE_PUT);
        let slot = self.cache.slot(key);
        let _cleanup = SlotCleanup { cache: &self.cache, key };
        let mut filled = lock_slot(&slot);
        let written = self.write_disk(kind, key, &payload, format)?;
        self.stats.kind(kind).record_miss(written);
        let payload = Arc::new(payload);
        *filled = Some(payload.clone());
        Ok(payload)
    }

    /// The store's reason to exist: return the stored payload for `key`, or
    /// run `compute` exactly once (per process — concurrent threads block on
    /// the same key's slot and read the filled value), persist its result,
    /// and return it.
    ///
    /// The slot is dropped from the in-process map once resolved (the
    /// driver touches each key exactly once per run, so holding payloads
    /// for the store's lifetime would be pure memory overhead); a repeated
    /// lookup through the same handle is served by the checksummed disk
    /// copy, never by a recompute.
    pub fn get_or_compute(
        &self,
        kind: ArtifactKind,
        key: Key,
        compute: impl FnOnce() -> Vec<u8>,
    ) -> io::Result<Arc<Vec<u8>>> {
        enum Never {}
        match self.get_or_try_compute(kind, key, || Ok::<_, Never>(compute()))? {
            Ok(payload) => Ok(payload),
            Err(never) => match never {},
        }
    }

    /// [`Store::get_or_compute`] for fallible computes: when `compute`
    /// returns `Err`, **nothing is persisted** and the error is handed
    /// back through the outer `Ok` — the key stays absent and a later call
    /// may try again. This is what keeps crashed or timed-out experiment
    /// cells out of the store (the driver's `catch_unwind` converts a
    /// panicking cell into an `Err` here).
    ///
    /// The single-flight slot is released even if `compute` unwinds, so a
    /// panicking compute cannot wedge later lookups of the same key.
    pub fn get_or_try_compute<E>(
        &self,
        kind: ArtifactKind,
        key: Key,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> io::Result<Result<Arc<Vec<u8>>, E>> {
        self.get_or_try_compute_for(kind, key, None, compute)
    }

    /// [`Store::get_or_try_compute`] with the artifact's format id: reads
    /// reject frames recorded for a different format, and a recompute
    /// stamps the format (plus this handle's numerics table) into the new
    /// frame.
    pub fn get_or_try_compute_for<E>(
        &self,
        kind: ArtifactKind,
        key: Key,
        format: Option<u8>,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> io::Result<Result<Arc<Vec<u8>>, E>> {
        let slot = self.cache.slot(key);
        // Resolved, failed or unwound: the map entry must not linger —
        // blocked racers keep their slot Arc, later callers go to disk, and
        // an I/O failure leaves the key retryable.
        let _cleanup = SlotCleanup { cache: &self.cache, key };
        let mut filled = lock_slot(&slot);
        // The `store.get` span covers only the lookup side (cache check +
        // disk read) so it never swallows the compute closure's solve time;
        // the persist side gets its own `store.put` span below.
        {
            let _span = lpa_obs::span(lpa_obs::STORE_GET);
            if let Some(payload) = filled.as_ref() {
                self.stats.kind(kind).record_hit_mem();
                return Ok(Ok(payload.clone()));
            }
            if let Some(payload) = self.read_disk(kind, key, format)? {
                self.stats.kind(kind).record_hit_disk(payload.len() as u64);
                *filled = Some(payload.clone());
                return Ok(Ok(payload));
            }
        }
        match compute() {
            Err(e) => Ok(Err(e)),
            Ok(payload) => {
                let _span = lpa_obs::span(lpa_obs::STORE_PUT);
                let written = self.write_disk(kind, key, &payload, format)?;
                self.stats.kind(kind).record_miss(written);
                let payload = Arc::new(payload);
                *filled = Some(payload.clone());
                Ok(Ok(payload))
            }
        }
    }
}

/// First free destination for quarantining `name` into `dir`: the bare
/// name if unused, else `name.1`, `name.2`, … — a repeated corruption of
/// the same key must not overwrite the earlier quarantined copy (each one
/// is distinct forensic evidence). Best-effort under races, like the
/// quarantine move itself.
pub(crate) fn quarantine_dest(dir: &Path, name: &std::ffi::OsStr) -> PathBuf {
    let bare = dir.join(name);
    if !bare.exists() {
        return bare;
    }
    let name = name.to_string_lossy();
    (1u64..)
        .map(|i| dir.join(format!("{name}.{i}")))
        .find(|p| !p.exists())
        .expect("some numbered quarantine name is free")
}

/// Lock a single-flight slot, surviving poison: the `Option` inside is
/// only ever `None` or a complete payload, so a panic elsewhere (e.g. an
/// unwound compute) never leaves it half-written.
fn lock_slot(slot: &Slot) -> std::sync::MutexGuard<'_, Option<Arc<Vec<u8>>>> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Removes a key's cache entry on scope exit — including panic unwinds —
/// so a crashed compute cannot pin a poisoned slot in the map.
struct SlotCleanup<'a> {
    cache: &'a ShardedCache,
    key: Key,
}

impl Drop for SlotCleanup<'_> {
    fn drop(&mut self) {
        self.cache.remove(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash128;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lpa-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_counters() {
        let dir = scratch_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"round-trip");
        assert!(store.get(ArtifactKind::Reference, key).unwrap().is_none());

        let got = store
            .get_or_compute(ArtifactKind::Reference, key, || b"payload".to_vec())
            .unwrap();
        assert_eq!(&**got, b"payload");
        // Second lookup through the same handle: the slot was dropped after
        // resolution, so this is a (checksummed) disk read, not a recompute.
        let again = store.get_or_compute(ArtifactKind::Reference, key, || panic!("must not recompute")).unwrap();
        assert_eq!(&**again, b"payload");
        let s = store.stats().snapshot(ArtifactKind::Reference);
        assert_eq!((s.misses, s.hits_mem, s.hits_disk), (1, 0, 1));
        assert!(s.bytes_written >= b"payload".len() as u64);

        // A fresh handle (second process in spirit) reads it from disk.
        let store2 = Store::open(&dir).unwrap();
        let from_disk = store2
            .get_or_compute(ArtifactKind::Reference, key, || panic!("must not recompute"))
            .unwrap();
        assert_eq!(&**from_disk, b"payload");
        let s2 = store2.stats().snapshot(ArtifactKind::Reference);
        assert_eq!((s2.misses, s2.hits_disk), (0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifacts_read_as_absent_and_are_quarantined_then_healed() {
        let dir = scratch_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"heal-me");
        store.put(ArtifactKind::Outcome, key, b"good".to_vec()).unwrap();

        // Flip a payload byte on disk, then look up through a fresh handle.
        let path = store.path_of(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + 1;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let store2 = Store::open(&dir).unwrap();
        assert!(store2.get(ArtifactKind::Outcome, key).unwrap().is_none());
        assert_eq!(store2.stats().corrupt(), 1);
        let snap = store2.stats().snapshot(ArtifactKind::Outcome);
        assert_eq!((snap.corrupt, snap.quarantined), (1, 1));
        // The bad file was moved aside, not deleted.
        assert!(!path.exists());
        let quarantined = dir.join(QUARANTINE_DIR).join(format!("{}.bin", key.to_hex()));
        assert!(quarantined.exists(), "bad artifact is preserved for forensics");

        let healed =
            store2.get_or_compute(ArtifactKind::Outcome, key, || b"good".to_vec()).unwrap();
        assert_eq!(&**healed, b"good");
        // And the disk copy is valid again.
        let store3 = Store::open(&dir).unwrap();
        assert_eq!(&**store3.get(ArtifactKind::Outcome, key).unwrap().unwrap(), b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dir = scratch_dir("kind");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"kinded");
        store.put(ArtifactKind::Reference, key, b"ref".to_vec()).unwrap();
        let store2 = Store::open(&dir).unwrap();
        assert!(store2.get(ArtifactKind::Outcome, key).unwrap().is_none());
        assert_eq!(store2.stats().corrupt(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn container_encoding_is_self_describing() {
        let key = hash128(b"container");
        let numerics = lpa_numerics::NumericsConfig::baseline().to_bytes();
        let bytes = encode_artifact(ArtifactKind::Outcome, key, b"xyz", Some(6), &numerics);
        assert_eq!(bytes[4], FRAME_V3);
        assert_eq!(
            bytes.len(),
            HEADER_LEN + 3 + NUMERICS_LEN_LEN + numerics.len() + TRAILER_LEN
        );
        let a = decode_artifact(&bytes).unwrap();
        assert_eq!(a.kind, ArtifactKind::Outcome);
        assert_eq!(a.key, key);
        assert_eq!(a.payload, b"xyz");
        assert_eq!(a.format, Some(6));
        assert_eq!(a.numerics.as_deref(), Some(numerics.as_slice()));
        // A reference frame records no format.
        let r = decode_artifact(&encode_artifact(ArtifactKind::Reference, key, b"r", None, &numerics)).unwrap();
        assert_eq!(r.format, None);
        assert!(matches!(
            decode_artifact(&bytes[..HEADER_LEN - 1]),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_artifact(&bad), Err(StoreError::Corrupt(_))));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(decode_artifact(&wrong_version).is_err());
        // A truncated v3 frame (lost trailer bytes) is Truncated, and a
        // header-only corruption (format byte) is caught by the trailer.
        assert!(matches!(
            decode_artifact(&bytes[..bytes.len() - 4]),
            Err(StoreError::Truncated { .. })
        ));
        let mut header_flip = bytes.clone();
        header_flip[6] ^= 0x10; // format byte: invisible to the payload checksum
        assert!(matches!(decode_artifact(&header_flip), Err(StoreError::Corrupt(_))));
        // A corrupt numerics-section length is caught (shorter claims are
        // excess bytes, longer claims are truncation).
        let nlen_at = HEADER_LEN + 3;
        let mut nlen_flip = bytes.clone();
        nlen_flip[nlen_at] = nlen_flip[nlen_at].wrapping_add(7);
        assert!(decode_artifact(&nlen_flip).is_err());
    }

    /// Hand-build a legacy frame: v1 (no trailer) or v2 (whole-frame
    /// trailer), neither carrying format or numerics fields.
    fn legacy_frame(version: u8, kind: ArtifactKind, key: Key, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC);
        f.push(version);
        f.push(kind as u8);
        f.extend_from_slice(&[0, 0]);
        f.extend_from_slice(&key.0);
        f.extend_from_slice(&hash128(payload).0);
        f.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        f.extend_from_slice(payload);
        if version == FRAME_V2 {
            let trailer = hash128(&f);
            f.extend_from_slice(&trailer.0);
        }
        f
    }

    #[test]
    fn v1_and_v2_frames_are_still_readable() {
        // Old stores must stay warm across both container upgrades.
        let key = hash128(b"legacy");
        let payload = b"old data";
        for version in [FRAME_V1, FRAME_V2] {
            let frame = legacy_frame(version, ArtifactKind::Reference, key, payload);
            let a = decode_artifact(&frame).unwrap();
            assert_eq!(a.kind, ArtifactKind::Reference);
            assert_eq!(a.key, key);
            assert_eq!(a.payload, payload);
            assert_eq!(a.format, None, "legacy frames predate the format field");
            assert_eq!(a.numerics, None, "legacy frames predate the numerics field");

            // And through a Store: plant the legacy file, read it back —
            // even through the format-checked path (None is not a
            // contradiction).
            let dir = scratch_dir(&format!("legacy-v{version}"));
            let store = Store::open(&dir).unwrap();
            let path = store.path_of(key);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &frame).unwrap();
            let got = store
                .get_for(ArtifactKind::Reference, key, Some(3))
                .unwrap()
                .expect("legacy readable");
            assert_eq!(&**got, payload);
            assert_eq!(store.stats().corrupt(), 0);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn format_mismatch_is_mislabelling() {
        let dir = scratch_dir("format-mismatch");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"formatted");
        store.put_for(ArtifactKind::Outcome, key, b"p16".to_vec(), Some(6)).unwrap();

        // The right format (or a format-agnostic read) hits.
        let store2 = Store::open(&dir).unwrap();
        assert!(store2.get_for(ArtifactKind::Outcome, key, Some(6)).unwrap().is_some());
        assert!(store2.get(ArtifactKind::Outcome, key).unwrap().is_some());

        // A contradicting format quarantines the frame as mislabelled.
        let store3 = Store::open(&dir).unwrap();
        assert!(store3.get_for(ArtifactKind::Outcome, key, Some(7)).unwrap().is_none());
        assert_eq!(store3.stats().corrupt(), 1);
        assert!(!store.path_of(key).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_corruption_preserves_every_quarantined_copy() {
        let dir = scratch_dir("requarantine");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"twice-corrupt");

        // Corrupt, read (quarantines), heal, corrupt again, read again.
        for round in 0..2u8 {
            store.put(ArtifactKind::Outcome, key, b"good".to_vec()).unwrap();
            let path = store.path_of(key);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[HEADER_LEN] ^= 0x01 << round; // distinct corruption per round
            std::fs::write(&path, &bytes).unwrap();
            let fresh = Store::open(&dir).unwrap();
            assert!(fresh.get(ArtifactKind::Outcome, key).unwrap().is_none());
        }

        // Both bad copies survive for forensics: the bare name, then `.1`.
        let qdir = dir.join(QUARANTINE_DIR);
        let name = format!("{}.bin", key.to_hex());
        assert!(qdir.join(&name).exists(), "first quarantined copy kept");
        assert!(qdir.join(format!("{name}.1")).exists(), "second copy deduped, not overwritten");
        // And the two preserved frames differ (distinct evidence).
        assert_ne!(
            std::fs::read(qdir.join(&name)).unwrap(),
            std::fs::read(qdir.join(format!("{name}.1"))).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_compute_persists_nothing_and_stays_retryable() {
        let dir = scratch_dir("trycompute");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"fallible");
        let failed = store
            .get_or_try_compute(ArtifactKind::Outcome, key, || Err::<Vec<u8>, _>("cell crashed"))
            .unwrap();
        assert_eq!(failed.unwrap_err(), "cell crashed");
        // Nothing on disk, nothing counted as a miss.
        assert!(store.get(ArtifactKind::Outcome, key).unwrap().is_none());
        assert_eq!(store.stats().snapshot(ArtifactKind::Outcome).misses, 0);
        // The key is retryable: a later successful compute persists.
        let ok = store
            .get_or_try_compute(ArtifactKind::Outcome, key, || Ok::<_, &str>(b"fine".to_vec()))
            .unwrap()
            .unwrap();
        assert_eq!(&**ok, b"fine");
        assert_eq!(&**store.get(ArtifactKind::Outcome, key).unwrap().unwrap(), b"fine");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_compute_releases_the_single_flight_slot() {
        let dir = scratch_dir("panic-slot");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"panicky");
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.get_or_compute(ArtifactKind::Outcome, key, || panic!("injected"))
        }));
        assert!(unwound.is_err());
        // The same key must still be resolvable afterwards.
        let ok = store.get_or_compute(ArtifactKind::Outcome, key, || b"recovered".to_vec()).unwrap();
        assert_eq!(&**ok, b"recovered");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_io_faults_are_retried_away() {
        let dir = scratch_dir("transient");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.io_retries(), DEFAULT_IO_RETRIES);
        let key = hash128(b"flaky-io");
        {
            let _faults = lpa_faults::FaultScope::arm("store.io.transient=once");
            // The first raw write fails, the retry succeeds.
            store.put(ArtifactKind::Reference, key, b"made it".to_vec()).unwrap();
        }
        assert_eq!(&**store.get(ArtifactKind::Reference, key).unwrap().unwrap(), b"made it");

        // With the budget at zero the same fault surfaces as an error.
        store.set_io_retries(0);
        let key2 = hash128(b"flaky-io-2");
        {
            let _faults = lpa_faults::FaultScope::arm("store.io.transient=once");
            let err = store.put(ArtifactKind::Reference, key2, b"nope".to_vec()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_are_caught_on_read_and_healed() {
        let dir = scratch_dir("torn");
        let store = Store::open(&dir).unwrap();
        let key = hash128(b"torn-victim");
        {
            let _faults = lpa_faults::FaultScope::arm("store.write.torn=once");
            // The torn write itself reports success — that is the point.
            store.put(ArtifactKind::Outcome, key, b"will be torn".to_vec()).unwrap();
        }
        // A fresh handle sees the torn frame, quarantines it, recomputes.
        let store2 = Store::open(&dir).unwrap();
        let healed = store2
            .get_or_compute(ArtifactKind::Outcome, key, || b"will be torn".to_vec())
            .unwrap();
        assert_eq!(&**healed, b"will be torn");
        assert_eq!(store2.stats().snapshot(ArtifactKind::Outcome).corrupt, 1);
        assert_eq!(&**Store::open(&dir).unwrap().get(ArtifactKind::Outcome, key).unwrap().unwrap(), b"will be torn");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
