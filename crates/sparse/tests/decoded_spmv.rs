//! Differential guard for [`lpa_sparse::CsrDecoded`]: the decode-once SpMV
//! must be bit-identical to the scalar [`lpa_sparse::CsrMatrix::spmv`] for
//! every format, including on boundary-magnitude values (saturation
//! neighbourhoods, tiny magnitudes) and repeated applications (the Arnoldi
//! pattern the cache exists for).

use lpa_arith::{BatchReal, Real};
use lpa_sparse::{CsrDecoded, CsrMatrix};

/// A deterministic pseudo-random CSR matrix with entries spanning many
/// magnitudes (including values near the 16-bit formats' range edges).
fn test_matrix<T: BatchReal>(n: usize, seed: u64, spread: f64) -> CsrMatrix<T> {
    let mut s = seed | 1;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut triplets = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if next() < 0.25 || i == j {
                let mag = 10f64.powf((next() * 2.0 - 1.0) * spread);
                let v = T::from_f64(mag * if next() < 0.5 { -1.0 } else { 1.0 });
                if !v.is_zero() {
                    triplets.push((i, j, v));
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

fn same_bits<T: Real>(a: T, b: T) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_f64() == b.to_f64()
}

fn differential<T: BatchReal>(spread: f64) {
    for seed in [3u64, 17, 91] {
        let a = test_matrix::<T>(17, seed, spread);
        let d = CsrDecoded::new(a.clone());
        let mut x: Vec<T> =
            (0..17).map(|i| T::from_f64(0.13 * i as f64 - 1.1)).collect();
        let mut y_scalar = vec![T::zero(); 17];
        let mut y_batch = vec![T::zero(); 17];
        // Repeated application (x <- normalized-ish A x) like an Arnoldi
        // expansion: divergence anywhere compounds and is caught.
        for step in 0..4 {
            a.spmv(&x, &mut y_scalar);
            d.spmv(&x, &mut y_batch);
            for (b, s) in y_batch.iter().zip(&y_scalar) {
                assert!(
                    same_bits(*b, *s),
                    "{}: spmv diverged at step {step} (seed {seed}): {} vs {}",
                    T::NAME,
                    b.to_f64(),
                    s.to_f64()
                );
            }
            // Feed back a damped copy to keep magnitudes in range.
            let damp = T::from_f64(0.25);
            for (xi, yi) in x.iter_mut().zip(&y_scalar) {
                *xi = *yi * damp;
            }
        }
    }
}

#[test]
fn decoded_spmv_matches_scalar_all_formats() {
    use lpa_arith::types::*;
    differential::<F16>(1.5);
    differential::<Bf16>(3.0);
    differential::<Posit16>(3.0);
    differential::<Takum16>(3.0);
    differential::<Posit32>(6.0);
    differential::<Takum32>(6.0);
    differential::<Posit64>(8.0);
    differential::<Takum64>(8.0);
    differential::<E4M3>(1.0);
    differential::<f32>(6.0);
    differential::<f64>(8.0);
}

#[test]
fn decoded_spmv_matches_scalar_on_saturating_magnitudes() {
    use lpa_arith::types::{Posit16, Takum16};
    // Entries pushed to the formats' saturation regions: the rounder's
    // boundary paths (maxpos/minpos clamps) must still match the scalar
    // product exactly.
    differential::<Posit16>(18.0);
    differential::<Takum16>(25.0);
}
