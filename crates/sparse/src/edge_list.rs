//! Edge-list (`.edges`) reader, mirroring the Network Repository
//! preprocessing described in Section 2.1 of the paper.
//!
//! Lines contain `src dst [weight]` with `%` or `#` comments; vertex labels
//! are arbitrary non-negative integers (they are compacted to a contiguous
//! range).  Non-square adjacency blocks are fixed by padding, and the result
//! can be symmetrized and turned into a normalized Laplacian downstream.

use std::io::BufRead;

use lpa_arith::Real;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Errors produced by the edge-list parser.
#[derive(Debug)]
pub enum EdgeListError {
    Io(std::io::Error),
    Parse(String),
}

impl core::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse(msg) => write!(f, "edge list parse error: {msg}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// A parsed edge list with compacted vertex ids.
#[derive(Clone, Debug)]
pub struct EdgeList {
    pub vertex_count: usize,
    pub edges: Vec<(usize, usize, f64)>,
}

/// Parse an edge list from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<EdgeList, EdgeListError> {
    let mut raw: Vec<(u64, u64, f64)> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        // Some Network Repository files use commas as separators.
        let cleaned = t.replace(',', " ");
        let mut it = cleaned.split_whitespace();
        let a: u64 = it
            .next()
            .ok_or_else(|| EdgeListError::Parse("missing source vertex".into()))?
            .parse()
            .map_err(|_| EdgeListError::Parse(format!("bad source vertex in '{t}'")))?;
        let b: u64 = it
            .next()
            .ok_or_else(|| EdgeListError::Parse("missing target vertex".into()))?
            .parse()
            .map_err(|_| EdgeListError::Parse(format!("bad target vertex in '{t}'")))?;
        let w: f64 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|_| EdgeListError::Parse(format!("bad edge weight in '{t}'")))?,
            None => 1.0,
        };
        raw.push((a, b, w));
    }

    // Compact the vertex labels to 0..n.
    let mut labels: Vec<u64> = raw.iter().flat_map(|&(a, b, _)| [a, b]).collect();
    labels.sort_unstable();
    labels.dedup();
    let index_of = |v: u64| labels.binary_search(&v).expect("label present");
    let edges: Vec<(usize, usize, f64)> =
        raw.iter().map(|&(a, b, w)| (index_of(a), index_of(b), w)).collect();
    Ok(EdgeList { vertex_count: labels.len(), edges })
}

/// Parse from a string.
pub fn read_edge_list_str(s: &str) -> Result<EdgeList, EdgeListError> {
    read_edge_list(s.as_bytes())
}

impl EdgeList {
    /// Build the (directed, weighted) adjacency matrix.  Self-loops are kept;
    /// duplicate edges accumulate.
    pub fn to_adjacency<T: Real>(&self) -> CsrMatrix<T> {
        let n = self.vertex_count;
        let mut coo = CooMatrix::<T>::with_capacity(n, n, self.edges.len());
        for &(a, b, w) in &self.edges {
            coo.push(a, b, T::from_f64(w));
        }
        coo.pad_square();
        coo.to_csr()
    }

    /// Adjacency → average symmetrization → symmetric normalized Laplacian,
    /// i.e. the full preprocessing pipeline of the paper's Section 2.1.
    pub fn to_normalized_laplacian<T: Real>(&self) -> CsrMatrix<T> {
        let adj = self.to_adjacency::<T>().symmetrize();
        crate::laplacian::normalized_laplacian(&adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_weights_comments_and_commas() {
        let text = "% comment\n# another\n1 2\n2 3 0.5\n7,1,2.0\n\n";
        let el = read_edge_list_str(text).unwrap();
        assert_eq!(el.vertex_count, 4); // labels 1, 2, 3, 7
        assert_eq!(el.edges.len(), 3);
        let adj: CsrMatrix<f64> = el.to_adjacency();
        assert_eq!(adj.nrows(), 4);
        assert_eq!(adj.get(0, 1), 1.0); // 1 -> 2, default weight
        assert_eq!(adj.get(1, 2), 0.5); // 2 -> 3
        assert_eq!(adj.get(3, 0), 2.0); // 7 -> 1
    }

    #[test]
    fn laplacian_pipeline_produces_unit_diagonal() {
        let text = "0 1\n1 2\n2 0\n3 0\n";
        let el = read_edge_list_str(text).unwrap();
        let l: CsrMatrix<f64> = el.to_normalized_laplacian();
        assert!(l.is_symmetric(1e-14));
        for i in 0..4 {
            assert_eq!(l.get(i, i), 1.0);
        }
        // Eigenvalues of a normalized Laplacian live in [0, 2].
        let eigs = lpa_dense::eigen_sym::symmetric_eigenvalues(&l.to_dense()).unwrap();
        for e in eigs {
            assert!(e > -1e-12 && e < 2.0 + 1e-12);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list_str("a b\n").is_err());
        assert!(read_edge_list_str("1\n").is_err());
        assert!(read_edge_list_str("1 2 x\n").is_err());
    }

    #[test]
    fn empty_graph_is_ok() {
        let el = read_edge_list_str("% nothing\n").unwrap();
        assert_eq!(el.vertex_count, 0);
        let adj: CsrMatrix<f64> = el.to_adjacency();
        assert_eq!(adj.nrows(), 0);
    }
}
