//! Coordinate-format (triplet) sparse matrix builder.

use lpa_arith::Real;

use crate::csr::CsrMatrix;

/// A sparse matrix in coordinate (triplet) form.  Duplicate entries are
/// summed when converting to CSR, matching Matrix Market semantics.
#[derive(Clone, Debug)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Real> CooMatrix<T> {
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::new() }
    }

    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Add an entry (duplicates accumulate on conversion).
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.nrows && j < self.ncols, "entry ({i},{j}) out of bounds");
        if !v.is_zero() {
            self.entries.push((i, j, v));
        }
    }

    /// Add `v` at `(i, j)` and `(j, i)`.
    pub fn push_sym(&mut self, i: usize, j: usize, v: T) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Grow the matrix to be square by appending zero rows or columns
    /// (the paper pads non-square adjacency files the same way).
    pub fn pad_square(&mut self) {
        let n = self.nrows.max(self.ncols);
        self.nrows = n;
        self.ncols = n;
    }

    /// Convert to compressed sparse row format, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        CsrMatrix::from_triplets(self.nrows, self.ncols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(1, 2, 3.0); // duplicate accumulates
        coo.push(2, 1, -1.0);
        coo.push(2, 2, 0.0); // explicit zero dropped
        assert_eq!(coo.nnz(), 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(1, 2), 5.0);
        assert_eq!(csr.get(2, 1), -1.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn pad_square_grows_dimensions() {
        let mut coo = CooMatrix::<f64>::new(2, 5);
        coo.push(1, 4, 1.0);
        coo.pad_square();
        assert_eq!(coo.nrows(), 5);
        assert_eq!(coo.ncols(), 5);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
