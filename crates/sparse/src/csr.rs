//! Compressed sparse row matrix generic over [`Real`].

use lpa_arith::Real;

/// A sparse matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Real> CsrMatrix<T> {
    /// Build from (row, col, value) triplets, summing duplicates.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, T)]) -> Self {
        let mut sorted: Vec<(usize, usize, T)> = triplets.to_vec();
        sorted.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(i, j, v) in &sorted {
            assert!(i < nrows && j < ncols, "triplet out of bounds");
            if prev == Some((i, j)) {
                let last = values.last_mut().expect("duplicate implies a previous entry");
                *last += v;
            } else {
                col_idx.push(j);
                values.push(v);
                prev = Some((i, j));
            }
            row_ptr[i + 1] = col_idx.len();
        }
        // Fill the gaps left by empty rows so row_ptr is non-decreasing.
        for i in 1..=nrows {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        CsrMatrix { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Build from a dense row-major closure (test helper).
    pub fn from_dense_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut triplets = Vec::new();
        for i in 0..nrows {
            for j in 0..ncols {
                let v = f(i, j);
                if !v.is_zero() {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(nrows, ncols, &triplets)
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// The raw row-pointer array (`nrows + 1` non-decreasing offsets).
    ///
    /// Together with [`Self::col_indices`] and [`Self::values`] this is the
    /// canonical byte-level identity of the matrix, which the experiment
    /// store hashes into content addresses.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (one entry per stored value).
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The raw value array, in row-major CSR order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row `i` as parallel slices of column indices and values.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> T {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => T::zero(),
        }
    }

    /// Iterate over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals.iter()).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// The hot loop of every Arnoldi expansion step: one flat pass over
    /// `col_idx`/`values` walking the row boundaries from `row_ptr` as a
    /// running offset, with the output row written through the same zipped
    /// iteration — no per-row `row()` call or `row_ptr` double-indexing.
    /// The accumulation order per row is unchanged, so results are
    /// bit-identical to the naive form.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let mut start = self.row_ptr[0];
        for (yi, &end) in y.iter_mut().zip(&self.row_ptr[1..]) {
            let mut acc = T::zero();
            for (&j, &v) in self.col_idx[start..end].iter().zip(&self.values[start..end]) {
                acc += v * x[j];
            }
            *yi = acc;
            start = end;
        }
    }

    /// Allocating SpMV.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let triplets: Vec<(usize, usize, T)> = self.iter().map(|(i, j, v)| (j, i, v)).collect();
        Self::from_triplets(self.ncols, self.nrows, &triplets)
    }

    /// Average symmetrization `(A + A^T) / 2` (the paper's preprocessing for
    /// directed graphs).
    pub fn symmetrize(&self) -> Self {
        assert!(self.is_square(), "symmetrization requires a square matrix");
        let half = T::half();
        let mut triplets = Vec::with_capacity(2 * self.nnz());
        for (i, j, v) in self.iter() {
            triplets.push((i, j, v * half));
            triplets.push((j, i, v * half));
        }
        Self::from_triplets(self.nrows, self.ncols, &triplets)
    }

    /// Check structural + numerical symmetry within a tolerance.
    pub fn is_symmetric(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        for (i, j, v) in self.iter() {
            if (v - self.get(j, i)).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Main diagonal.
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.nrows.min(self.ncols)).map(|i| self.get(i, i)).collect()
    }

    /// Row sums (vertex degrees when the matrix is an adjacency matrix).
    pub fn row_sums(&self) -> Vec<T> {
        (0..self.nrows)
            .map(|i| {
                let (_, vals) = self.row(i);
                let mut acc = T::zero();
                for &v in vals {
                    acc += v;
                }
                acc
            })
            .collect()
    }

    /// Largest absolute value of any stored entry.
    pub fn max_abs(&self) -> T {
        let mut m = T::zero();
        for v in &self.values {
            m = m.max(v.abs());
        }
        m
    }

    /// Smallest absolute value of any stored non-zero entry.
    pub fn min_abs_nonzero(&self) -> Option<T> {
        let mut m: Option<T> = None;
        for v in &self.values {
            if v.is_zero() {
                continue;
            }
            let a = v.abs();
            m = Some(match m {
                None => a,
                Some(cur) => cur.min(a),
            });
        }
        m
    }

    /// Convert every entry to another scalar type through `f64`, without any
    /// range checking (see [`crate::convert`] for the checked version).
    pub fn convert<U: Real>(&self) -> CsrMatrix<U> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Dense copy (for tests and small projected problems).
    pub fn to_dense(&self) -> lpa_dense::DMatrix<T> {
        let mut m = lpa_dense::DMatrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            m[(i, j)] += v;
        }
        m
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> T {
        lpa_dense::blas::nrm2(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::types::Posit16;

    fn example() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0), (2, 0, 1.0), (2, 2, 4.0)],
        )
    }

    #[test]
    fn construction_and_access() {
        let a = example();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 4.0]);
        assert_eq!(a.row(0).0, &[0, 2]);
        assert_eq!(a.row_sums(), vec![3.0, 3.0, 5.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.min_abs_nonzero(), Some(1.0));
    }

    #[test]
    fn duplicates_are_summed_and_empty_rows_ok() {
        let a = CsrMatrix::<f64>::from_triplets(
            4,
            4,
            &[(0, 1, 1.0), (0, 1, 2.0), (3, 3, 5.0), (0, 0, 1.0)],
        );
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        assert_eq!(a.get(3, 3), 5.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = example();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![5.0, 6.0, 13.0]);
        let dense = a.to_dense();
        assert_eq!(dense.matvec(&x), y);
    }

    #[test]
    fn transpose_and_symmetrize() {
        let a = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 1, 2.0)]);
        let at = a.transpose();
        assert_eq!(at.get(1, 0), 2.0);
        assert!(!a.is_symmetric(1e-12));
        let s = a.symmetrize();
        assert!(s.is_symmetric(1e-12));
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 0), 1.0);
    }

    #[test]
    fn conversion_to_other_formats() {
        let a = example();
        let p: CsrMatrix<Posit16> = a.convert();
        assert_eq!(p.get(2, 2).to_f64(), 4.0);
        assert_eq!(p.nnz(), a.nnz());
        let y = p.matvec(&[Posit16::from_f64(1.0), Posit16::from_f64(1.0), Posit16::from_f64(1.0)]);
        assert_eq!(y[2].to_f64(), 5.0);
    }
}
