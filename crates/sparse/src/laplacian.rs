//! Graph Laplacian construction.
//!
//! Implements Eq. (1) of the paper: given a (symmetrized) adjacency matrix
//! `A` with degrees `deg(i) = Σ_j A_ij`, the symmetric normalized Laplacian
//! is
//!
//! ```text
//! L_sym[i,j] = 1                              if i = j and deg(i) > 0
//!            = -1 / sqrt(deg(i) deg(j))       if i ≠ j and A[i,j] ≠ 0
//!            = 0                              otherwise
//! ```
//!
//! For the unweighted, undirected graphs the paper prepares, `A[i,j]` is 1
//! whenever it is non-zero and the formula above coincides with the standard
//! weighted normalized Laplacian `I - D^{-1/2} A D^{-1/2}`.  This module
//! implements the weighted form (off-diagonal `-A[i,j]/sqrt(deg(i) deg(j))`)
//! so that average-symmetrized directed graphs (whose entries become 1/2)
//! still yield a positive semi-definite Laplacian with spectrum in `[0, 2]`.

use lpa_arith::Real;

use crate::csr::CsrMatrix;

/// Vertex degrees of an adjacency matrix (row sums).
pub fn degrees<T: Real>(adjacency: &CsrMatrix<T>) -> Vec<T> {
    adjacency.row_sums()
}

/// Symmetric normalized Laplacian of a symmetric adjacency matrix.
///
/// The adjacency matrix is expected to be symmetric (apply
/// [`CsrMatrix::symmetrize`] first for directed graphs, as the paper's
/// preprocessing does).  Isolated vertices (zero degree) produce an all-zero
/// row/column, matching the paper's definition.
pub fn normalized_laplacian<T: Real>(adjacency: &CsrMatrix<T>) -> CsrMatrix<T> {
    assert!(adjacency.is_square(), "adjacency matrix must be square");
    let n = adjacency.nrows();
    let deg = degrees(adjacency);

    let mut triplets = Vec::with_capacity(adjacency.nnz() + n);
    for (i, d) in deg.iter().enumerate() {
        if *d > T::zero() {
            triplets.push((i, i, T::one()));
        }
    }
    for (i, j, v) in adjacency.iter() {
        if i == j || v.is_zero() {
            continue;
        }
        if deg[i] > T::zero() && deg[j] > T::zero() {
            triplets.push((i, j, -(v / (deg[i] * deg[j]).sqrt())));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Combinatorial (unnormalized) Laplacian `D - A`, kept for completeness and
/// used by some of the synthetic general matrices.
pub fn combinatorial_laplacian<T: Real>(adjacency: &CsrMatrix<T>) -> CsrMatrix<T> {
    assert!(adjacency.is_square());
    let n = adjacency.nrows();
    let deg = degrees(adjacency);
    let mut triplets = Vec::with_capacity(adjacency.nnz() + n);
    for (i, &d) in deg.iter().enumerate() {
        if !d.is_zero() {
            triplets.push((i, i, d));
        }
    }
    for (i, j, v) in adjacency.iter() {
        if i != j {
            triplets.push((i, j, -v));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unweighted triangle plus one isolated vertex.
    fn triangle_adjacency() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (0, 2, 1.0), (2, 0, 1.0)],
        )
    }

    #[test]
    fn normalized_laplacian_of_triangle() {
        let l = normalized_laplacian(&triangle_adjacency());
        // Unit diagonal on non-isolated vertices, zero row for the isolated
        // one.
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(3, 3), 0.0);
        // Off-diagonals are -1/sqrt(2*2) = -0.5.
        assert_eq!(l.get(0, 1), -0.5);
        assert_eq!(l.get(2, 0), -0.5);
        assert!(l.is_symmetric(1e-14));
        // Spectrum of the normalized Laplacian of K3 is {0, 1.5, 1.5} plus
        // the isolated vertex's 0.
        let mut eigs =
            lpa_dense::eigen_sym::symmetric_eigenvalues(&l.to_dense()).expect("eig");
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = [0.0, 0.0, 1.5, 1.5];
        for (e, x) in eigs.iter().zip(expected) {
            assert!((e - x).abs() < 1e-12, "{e} vs {x}");
        }
    }

    #[test]
    fn normalized_laplacian_eigenvalues_bounded_by_two() {
        // Path graph with weights.
        let n = 12;
        let mut trip = Vec::new();
        for i in 0..n - 1 {
            let w = 1.0 + (i as f64) * 0.3;
            trip.push((i, i + 1, w));
            trip.push((i + 1, i, w));
        }
        let a = CsrMatrix::from_triplets(n, n, &trip);
        let l = normalized_laplacian(&a);
        let eigs = lpa_dense::eigen_sym::symmetric_eigenvalues(&l.to_dense()).unwrap();
        for e in eigs {
            assert!(e > -1e-12 && e < 2.0 + 1e-12, "eigenvalue {e} outside [0,2]");
        }
    }

    #[test]
    fn combinatorial_laplacian_row_sums_are_zero() {
        let l = combinatorial_laplacian(&triangle_adjacency());
        for s in l.row_sums() {
            assert!(s.abs() < 1e-14);
        }
        assert_eq!(l.get(0, 0), 2.0);
    }
}
