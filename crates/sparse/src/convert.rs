//! Checked conversion of a matrix into a target number format.
//!
//! The paper's `∞σ` outcome marks runs where "the dynamic range of the matrix
//! entries exceeded the target number type": a non-zero finite entry that
//! converts to zero, an infinity or a NaN.  Saturating formats (posits,
//! takums) never trigger this; the narrow IEEE formats (OFP8, float16) do on
//! the general matrices, exactly as in Figure 1 of the paper.

use lpa_arith::Real;

use crate::csr::CsrMatrix;

/// Why a conversion was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum RangeViolation {
    /// A non-zero entry underflowed to zero.
    UnderflowToZero { row: usize, col: usize, value: f64 },
    /// An entry overflowed to infinity or NaN.
    Overflow { row: usize, col: usize, value: f64 },
}

/// Result of a checked conversion.
pub type ConversionResult<U> = Result<CsrMatrix<U>, RangeViolation>;

/// Convert a matrix entry-wise into format `U`, reporting the first entry
/// whose magnitude leaves the representable range of `U`.
pub fn convert_checked<T: Real, U: Real>(m: &CsrMatrix<T>) -> ConversionResult<U> {
    for (i, j, v) in m.iter() {
        if v.is_zero() {
            continue;
        }
        let f = v.to_f64();
        let converted = U::from_f64(f);
        if converted.is_zero() {
            return Err(RangeViolation::UnderflowToZero { row: i, col: j, value: f });
        }
        if converted.is_nan() || !converted.is_finite() {
            return Err(RangeViolation::Overflow { row: i, col: j, value: f });
        }
    }
    Ok(m.convert::<U>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::types::{Posit8, Takum8, E4M3, F16};

    #[test]
    fn in_range_matrices_convert() {
        let m = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -0.5)]);
        assert!(convert_checked::<f64, E4M3>(&m).is_ok());
        assert!(convert_checked::<f64, F16>(&m).is_ok());
        assert!(convert_checked::<f64, Posit8>(&m).is_ok());
    }

    #[test]
    fn overflow_is_detected_for_ieee_formats() {
        let m = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1e6)]);
        match convert_checked::<f64, E4M3>(&m) {
            Err(RangeViolation::Overflow { row: 1, col: 0, .. }) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
        // float16 overflows at 65520.
        let m = CsrMatrix::<f64>::from_triplets(1, 1, &[(0, 0, 1e5)]);
        assert!(convert_checked::<f64, F16>(&m).is_err());
    }

    #[test]
    fn underflow_is_detected_for_ieee_formats() {
        let m = CsrMatrix::<f64>::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1e-12)]);
        match convert_checked::<f64, E4M3>(&m) {
            Err(RangeViolation::UnderflowToZero { col: 1, .. }) => {}
            other => panic!("expected underflow, got {other:?}"),
        }
    }

    #[test]
    fn tapered_formats_saturate_and_pass() {
        // The same extreme matrix converts fine for posits/takums because
        // they saturate instead of flushing to zero or infinity.
        let m = CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 0, 1e30), (1, 1, 1e-30)]);
        assert!(convert_checked::<f64, Posit8>(&m).is_ok());
        assert!(convert_checked::<f64, Takum8>(&m).is_ok());
        assert!(convert_checked::<f64, E4M3>(&m).is_err());
    }
}
