//! [`CsrDecoded`]: a CSR matrix with its values pre-decoded for the batch
//! kernel engine.
//!
//! A CSR matrix's values are loop-invariant across an entire Krylov run,
//! yet the scalar SpMV re-decodes every one of them on every
//! matrix-vector product of every Arnoldi step.  `CsrDecoded` decodes the
//! value array **once** per (matrix, format) pair, into two shadows: the
//! struct-of-arrays plane store ([`PlaneStore`]) the lane-blocked
//! [`spmv_planes`](CsrDecoded::spmv_planes) hot path gathers from, and the
//! array-of-structs slice the [`spmv_decoded`](CsrDecoded::spmv_decoded)
//! reference path walks.  Both run exactly [`CsrMatrix::spmv`]'s
//! accumulation order, so all three products are bit-identical (verified
//! differentially in `tests/decoded_spmv.rs`).

use lpa_arith::{batch, BatchReal, PlaneStore};

use crate::csr::CsrMatrix;

/// A [`CsrMatrix`] alongside the decoded shadows of its value array.
#[derive(Clone, Debug)]
pub struct CsrDecoded<T: BatchReal> {
    csr: CsrMatrix<T>,
    dec: Vec<T::Dec>,
    planes: T::Planes,
}

impl<T: BatchReal> CsrDecoded<T> {
    /// Decode the matrix's values once.
    pub fn new(csr: CsrMatrix<T>) -> CsrDecoded<T> {
        let dec = batch::decode_slice(csr.values());
        let planes = T::Planes::decode(csr.values());
        CsrDecoded { csr, dec, planes }
    }

    /// The underlying encoded matrix.
    pub fn csr(&self) -> &CsrMatrix<T> {
        &self.csr
    }

    /// The decoded value shadows, in the CSR value order.
    pub fn decoded_values(&self) -> &[T::Dec] {
        &self.dec
    }

    /// The plane-store shadow of the value array, in the CSR value order.
    pub fn planes(&self) -> &T::Planes {
        &self.planes
    }

    pub fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    pub fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    pub fn is_square(&self) -> bool {
        self.csr.is_square()
    }

    /// Sparse matrix-vector product `y = A x` over pre-decoded operands:
    /// the same flat pass as [`CsrMatrix::spmv`] (same accumulation order,
    /// bit-identical results), gathering decoded shadows instead of
    /// decoding `values`/`x` per non-zero.
    pub fn spmv_decoded(&self, x: &[T::Dec], y: &mut [T::Dec]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        let row_ptr = self.csr.row_ptr();
        let col_idx = self.csr.col_indices();
        let zero = T::zero().dec();
        let mut start = row_ptr[0];
        for (yi, &end) in y.iter_mut().zip(&row_ptr[1..]) {
            let mut acc = zero;
            for (&j, &v) in col_idx[start..end].iter().zip(&self.dec[start..end]) {
                acc = T::dec_add(acc, T::dec_mul(v, x[j]));
            }
            *yi = acc;
            start = end;
        }
    }

    /// Sparse matrix-vector product `y = A x` over plane stores — the
    /// Krylov hot-loop form.  The lane-blocked kernel interleaves a block
    /// of rows while keeping every row's own ascending-index accumulation,
    /// so the result is bit-identical to [`CsrMatrix::spmv`] and
    /// [`Self::spmv_decoded`] at every lane width.
    pub fn spmv_planes(&self, x: &T::Planes, y: &mut T::Planes) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        T::Planes::spmv(&self.planes, self.csr.row_ptr(), self.csr.col_indices(), x, y);
    }

    /// Encoded-slice SpMV through the decoded values: decodes `x` once,
    /// runs [`Self::spmv_planes`], and encodes the result — the drop-in
    /// form for callers holding plain slices.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        let xp = T::Planes::decode(x);
        let mut yp = T::Planes::with_len(y.len());
        self.spmv_planes(&xp, &mut yp);
        yp.encode_into(y);
    }
}

impl<T: BatchReal> From<&CsrMatrix<T>> for CsrDecoded<T> {
    fn from(csr: &CsrMatrix<T>) -> CsrDecoded<T> {
        CsrDecoded::new(csr.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::types::{Posit32, Takum16};


    fn example<T: BatchReal>() -> CsrMatrix<T> {
        CsrMatrix::from_dense_fn(5, 5, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                T::from_f64(0.37 * (i as f64 + 1.0) - 0.61 * j as f64)
            } else {
                T::zero()
            }
        })
    }

    fn check_spmv_matches_scalar<T: BatchReal>() {
        let a = example::<T>();
        let d = CsrDecoded::new(a.clone());
        let x: Vec<T> = (0..5).map(|i| T::from_f64(0.21 * i as f64 - 0.4)).collect();
        let mut y_scalar = vec![T::zero(); 5];
        a.spmv(&x, &mut y_scalar);
        let mut y_batch = vec![T::zero(); 5];
        d.spmv(&x, &mut y_batch);
        for (b, s) in y_batch.iter().zip(&y_scalar) {
            assert_eq!(b.to_f64(), s.to_f64(), "{}", T::NAME);
        }
    }

    #[test]
    fn decoded_spmv_matches_scalar() {
        check_spmv_matches_scalar::<Posit32>();
        check_spmv_matches_scalar::<Takum16>();
        check_spmv_matches_scalar::<f64>();
    }
}
