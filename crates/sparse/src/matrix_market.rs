//! Matrix Market (`.mtx`) coordinate-format reader and writer.
//!
//! The SuiteSparse collection and about half of the Network Repository
//! distribute matrices in this format.  Only the subsets the paper needs are
//! supported: `matrix coordinate real/integer/pattern general/symmetric`.

use std::io::{BufRead, Write};

use lpa_arith::Real;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Errors produced by the Matrix Market parser.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    Parse(String),
}

impl core::fmt::Display for MmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market coordinate matrix from a buffered reader.
pub fn read_matrix_market<T: Real, R: BufRead>(reader: R) -> Result<CsrMatrix<T>, MmError> {
    let mut lines = reader.lines();

    // Header.
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(parse_err("empty file")),
        }
    };
    let header = header.to_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    if !header.contains("matrix") || !header.contains("coordinate") {
        return Err(parse_err("only coordinate matrices are supported"));
    }
    let pattern = header.contains("pattern");
    let symmetric = header.contains("symmetric") || header.contains("skew-symmetric");
    let skew = header.contains("skew-symmetric");
    if header.contains("complex") {
        return Err(parse_err("complex matrices are not supported"));
    }

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(parse_err("missing size line")),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| parse_err(format!("bad size token '{t}'"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must have three fields"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::<T>::with_capacity(nrows, ncols, nnz);
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i},{j}) out of bounds")));
        }
        let (i, j) = (i - 1, j - 1);
        coo.push(i, j, T::from_f64(v));
        if symmetric && i != j {
            coo.push(j, i, T::from_f64(if skew { -v } else { v }));
        }
        read += 1;
    }
    if read != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo.to_csr())
}

/// Read from a string (convenience for tests and embedded data).
pub fn read_matrix_market_str<T: Real>(s: &str) -> Result<CsrMatrix<T>, MmError> {
    read_matrix_market(s.as_bytes())
}

/// Write a matrix in `matrix coordinate real general` format.
pub fn write_matrix_market<T: Real, W: Write>(m: &CsrMatrix<T>, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by lpa-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(w, "{} {} {:e}", i + 1, j + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 3 -1.5\n\
                    3 1 4\n\
                    3 3 1e-2\n";
        let m: CsrMatrix<f64> = read_matrix_market_str(text).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 2), -1.5);
        assert_eq!(m.get(2, 2), 0.01);
    }

    #[test]
    fn parse_symmetric_and_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 3\n\
                    1 1\n\
                    2 1\n\
                    3 2\n";
        let m: CsrMatrix<f64> = read_matrix_market_str(text).unwrap();
        // symmetric pattern: mirrored entries added
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn roundtrip_write_read() {
        let m = CsrMatrix::<f64>::from_triplets(
            4,
            4,
            &[(0, 0, 1.5), (1, 2, -2.25), (3, 1, 0.125), (2, 3, 1e-8)],
        );
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back.nrows(), 4);
        assert_eq!(back.nnz(), 4);
        for (i, j, v) in m.iter() {
            assert_eq!(back.get(i, j), v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_matrix_market_str::<f64>("not a matrix").is_err());
        assert!(read_matrix_market_str::<f64>("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_str::<f64>(bad_count).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_str::<f64>(oob).is_err());
    }
}
