//! # lpa-sparse — sparse matrices, graph IO and Laplacians
//!
//! The sparse-matrix substrate of the low-precision Arnoldi study:
//!
//! * [`coo::CooMatrix`] / [`csr::CsrMatrix`] — triplet and compressed sparse
//!   row storage, generic over [`lpa_arith::Real`], with SpMV,
//!   transposition, average symmetrization and conversion between formats,
//! * [`matrix_market`] — Matrix Market (`.mtx`) reader/writer (the
//!   SuiteSparse interchange format),
//! * [`edge_list`] — Network-Repository-style `.edges` reader with the
//!   paper's preprocessing fixes (comment skipping, label compaction,
//!   squareness padding),
//! * [`laplacian`] — symmetric normalized Laplacian construction (Eq. (1) of
//!   the paper),
//! * [`convert`] — range-checked conversion into a target format, producing
//!   the paper's `∞σ` classification when entries leave the representable
//!   range.

pub mod convert;
pub mod coo;
pub mod csr;
pub mod decoded;
pub mod edge_list;
pub mod laplacian;
pub mod matrix_market;

pub use convert::{convert_checked, ConversionResult, RangeViolation};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use decoded::CsrDecoded;
pub use edge_list::{read_edge_list, read_edge_list_str, EdgeList};
pub use laplacian::{combinatorial_laplacian, normalized_laplacian};
pub use matrix_market::{read_matrix_market, read_matrix_market_str, write_matrix_market};
