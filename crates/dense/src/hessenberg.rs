//! Reduction of a square matrix to upper Hessenberg form.

use lpa_arith::{BatchReal, Real};

use crate::householder::Householder;
use crate::matrix::DMatrix;

/// Reduce `a` to upper Hessenberg form `H = Q^T A Q`, returning `(H, Q)`.
///
/// The Krylov–Schur restart produces projected matrices that are upper
/// triangular plus a spike row, so the Schur solver first restores Hessenberg
/// form with this routine before running the Francis iteration.
pub fn hessenberg<T: BatchReal>(a: &DMatrix<T>) -> (DMatrix<T>, DMatrix<T>) {
    assert!(a.is_square());
    let n = a.nrows();
    let mut h = a.clone();
    let mut q = DMatrix::identity(n);
    if n <= 2 {
        return (h, q);
    }
    for k in 0..n - 2 {
        let x: Vec<T> = (k + 1..n).map(|i| h[(i, k)]).collect();
        let refl = Householder::compute(&x);
        if refl.tau.is_zero() {
            continue;
        }
        // H <- P H P  (P acts on rows/columns k+1..n)
        refl.apply_left(&mut h, k + 1);
        refl.apply_right(&mut h, k + 1);
        // Q <- Q P
        refl.apply_right(&mut q, k + 1);
        // Clean the annihilated entries.
        h[(k + 1, k)] = refl.beta;
        for i in k + 2..n {
            h[(i, k)] = T::zero();
        }
    }
    (h, q)
}

/// Check that a matrix is upper Hessenberg up to the given tolerance.
pub fn is_hessenberg<T: Real>(m: &DMatrix<T>, tol: T) -> bool {
    for j in 0..m.ncols() {
        for i in (j + 2)..m.nrows() {
            if m[(i, j)].abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_and_reconstructs() {
        let a = DMatrix::<f64>::from_fn(7, 7, |i, j| ((3 * i + 5 * j + i * j) % 13) as f64 - 6.0);
        let (h, q) = hessenberg(&a);
        assert!(is_hessenberg(&h, 1e-12));
        // Q orthogonal
        let qtq = q.transpose_matmul(&q);
        assert!(qtq.diff_norm(&DMatrix::identity(7)) < 1e-12);
        // Q H Q^T == A
        let back = q.matmul(&h).matmul(&q.transpose());
        assert!(back.diff_norm(&a) < 1e-10);
    }

    #[test]
    fn hessenberg_of_symmetric_is_tridiagonal() {
        let mut a = DMatrix::<f64>::from_fn(6, 6, |i, j| ((i * j + i + j) % 7) as f64);
        // symmetrize
        for i in 0..6 {
            for j in 0..i {
                let v = (a[(i, j)] + a[(j, i)]) / 2.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (h, _q) = hessenberg(&a);
        for j in 0..6 {
            for i in 0..6 {
                if i + 1 < j || j + 1 < i {
                    assert!(h[(i, j)].abs() < 1e-12, "({i},{j}) = {}", h[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = DMatrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (h, q) = hessenberg(&a);
        assert!(h.diff_norm(&a) < 1e-15);
        assert!(q.diff_norm(&DMatrix::identity(2)) < 1e-15);
    }
}
