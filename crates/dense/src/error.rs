//! Error type for the dense eigenvalue kernels.

use core::fmt;

/// Failure modes of the dense eigen-solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DenseError {
    /// The QR iteration did not converge within its iteration budget.  In the
    /// experiment harness this surfaces as the paper's `∞ω` outcome.
    QrNoConvergence { position: usize, iterations: usize },
    /// A non-finite value (overflow or NaN/NaR) appeared during the
    /// factorization, which can happen for the narrow IEEE formats.
    NonFinite,
    /// A reordering swap was rejected because it is too ill-conditioned.
    SwapRejected { position: usize },
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::QrNoConvergence { position, iterations } => write!(
                f,
                "QR iteration failed to converge at eigenvalue position {position} after {iterations} iterations"
            ),
            DenseError::NonFinite => write!(f, "non-finite value encountered in dense kernel"),
            DenseError::SwapRejected { position } => {
                write!(f, "Schur reordering swap rejected at position {position}")
            }
        }
    }
}

impl std::error::Error for DenseError {}
