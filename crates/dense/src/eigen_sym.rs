//! Symmetric eigenvalue solver (tridiagonalization + implicit QL).
//!
//! The experiments follow the paper and use the *general* (untailored)
//! Krylov–Schur path, but a symmetric solver is useful as an independent
//! test oracle and for the `ablation_symmetric` benchmark that checks the
//! general path is not responsible for the observed format ranking.

use lpa_arith::{BatchReal, Real};

use crate::error::DenseError;
use crate::householder::Householder;
use crate::matrix::DMatrix;

/// Tridiagonalize a symmetric matrix: returns `(d, e, Q)` with diagonal `d`,
/// off-diagonal `e` (length n-1) and orthogonal `Q` such that
/// `A = Q T Q^T`.
pub fn tridiagonalize<T: BatchReal>(a: &DMatrix<T>) -> (Vec<T>, Vec<T>, DMatrix<T>) {
    assert!(a.is_square());
    let n = a.nrows();
    let mut m = a.clone();
    let mut q = DMatrix::identity(n);
    for k in 0..n.saturating_sub(2) {
        let x: Vec<T> = (k + 1..n).map(|i| m[(i, k)]).collect();
        let refl = Householder::compute(&x);
        if refl.tau.is_zero() {
            continue;
        }
        refl.apply_left(&mut m, k + 1);
        refl.apply_right(&mut m, k + 1);
        refl.apply_right(&mut q, k + 1);
        m[(k + 1, k)] = refl.beta;
        m[(k, k + 1)] = refl.beta;
        for i in k + 2..n {
            m[(i, k)] = T::zero();
            m[(k, i)] = T::zero();
        }
    }
    let d: Vec<T> = (0..n).map(|i| m[(i, i)]).collect();
    let e: Vec<T> = (0..n.saturating_sub(1)).map(|i| m[(i + 1, i)]).collect();
    (d, e, q)
}

/// Implicit QL iteration with Wilkinson shifts on a symmetric tridiagonal
/// matrix, accumulating eigenvectors into `z` (pass the tridiagonalizing `Q`
/// to get eigenvectors of the original matrix).  `d` is overwritten with the
/// eigenvalues.
pub fn tridiagonal_ql<T: Real>(
    d: &mut [T],
    e: &mut [T],
    z: &mut DMatrix<T>,
) -> Result<(), DenseError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    let eps = T::epsilon();
    // Shift the off-diagonal so e[i] couples d[i] and d[i+1]; use a trailing
    // zero slot like the classical tql2.
    let mut e: Vec<T> = e.iter().copied().chain(core::iter::once(T::zero())).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= eps * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(DenseError::QrNoConvergence { position: l, iterations: iter });
            }
            // Wilkinson shift.
            let two = T::two();
            let mut g = (d[l + 1] - d[l]) / (two * e[l]);
            if !g.is_finite() {
                return Err(DenseError::NonFinite);
            }
            let mut r = hypot(g, T::one());
            let sign_r = if g >= T::zero() { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = T::one();
            let mut c = T::one();
            let mut p = T::zero();
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r.is_zero() {
                    d[i + 1] -= p;
                    e[m] = T::zero();
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + two * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..z.nrows() {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r.is_zero() && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = T::zero();
        }
    }
    Ok(())
}

fn hypot<T: Real>(a: T, b: T) -> T {
    let (a, b) = (a.abs(), b.abs());
    let (big, small) = if a >= b { (a, b) } else { (b, a) };
    if big.is_zero() {
        return T::zero();
    }
    let r = small / big;
    big * (T::one() + r * r).sqrt()
}

/// Eigenvalues and eigenvectors of a symmetric matrix.  Returns `(values,
/// vectors)` where column `j` of `vectors` is the eigenvector for
/// `values[j]` (unordered).
pub fn symmetric_eigen<T: BatchReal>(a: &DMatrix<T>) -> Result<(Vec<T>, DMatrix<T>), DenseError> {
    let (mut d, mut e, mut q) = tridiagonalize(a);
    tridiagonal_ql(&mut d, &mut e, &mut q)?;
    Ok((d, q))
}

/// Eigenvalues only.
pub fn symmetric_eigenvalues<T: BatchReal>(a: &DMatrix<T>) -> Result<Vec<T>, DenseError> {
    symmetric_eigen(a).map(|(d, _)| d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> DMatrix<f64> {
        let mut s = seed;
        let mut rand = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DMatrix::<f64>::from_fn(n, n, |_, _| rand());
        for i in 0..n {
            for j in 0..i {
                let v = (a[(i, j)] + a[(j, i)]) / 2.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn tridiagonalization_is_similar() {
        let a = random_symmetric(8, 3);
        let (d, e, q) = tridiagonalize(&a);
        // Rebuild T and check A = Q T Q^T.
        let n = 8;
        let mut t = DMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = d[i];
        }
        for i in 0..n - 1 {
            t[(i + 1, i)] = e[i];
            t[(i, i + 1)] = e[i];
        }
        let back = q.matmul(&t).matmul(&q.transpose());
        assert!(back.diff_norm(&a) < 1e-10);
    }

    #[test]
    fn eigen_decomposition_reconstructs() {
        for n in [1usize, 2, 3, 5, 10, 20] {
            let a = random_symmetric(n, n as u64);
            let (vals, vecs) = symmetric_eigen(&a).unwrap();
            // A V = V diag(vals)
            let av = a.matmul(&vecs);
            let mut vd = vecs.clone();
            for j in 0..n {
                for i in 0..n {
                    vd[(i, j)] = vecs[(i, j)] * vals[j];
                }
            }
            assert!(av.diff_norm(&vd) < 1e-9, "n = {n}");
            // Orthonormal eigenvectors.
            let vtv = vecs.transpose_matmul(&vecs);
            assert!(vtv.diff_norm(&DMatrix::identity(n)) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn known_spectrum_of_path_laplacian() {
        // Path-graph Laplacian eigenvalues: 2 - 2 cos(k pi / n), k = 0..n-1.
        let n = 10;
        let a = DMatrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                if i == 0 || i == n - 1 {
                    1.0
                } else {
                    2.0
                }
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let mut vals = symmetric_eigenvalues(&a).unwrap();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, v) in vals.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - expected).abs() < 1e-9, "{v} vs {expected}");
        }
    }

    #[test]
    fn works_in_low_precision() {
        use lpa_arith::types::Takum16;
        let a64 = random_symmetric(6, 9);
        let a: DMatrix<Takum16> = a64.convert();
        let (vals, _vecs) = symmetric_eigen(&a).unwrap();
        let mut v: Vec<f64> = vals.iter().map(|x| x.to_f64()).collect();
        let mut r = symmetric_eigenvalues(&a64).unwrap();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in v.iter().zip(&r) {
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }
}
