//! Givens rotations.

use lpa_arith::Real;

use crate::matrix::DMatrix;

/// A plane rotation `G = [[c, s], [-s, c]]` with `c^2 + s^2 = 1`.
#[derive(Clone, Copy, Debug)]
pub struct Givens<T> {
    pub c: T,
    pub s: T,
}

impl<T: Real> Givens<T> {
    /// Rotation that maps `[a, b]` to `[r, 0]` (LAPACK `dlartg`-style,
    /// computed with scaling to avoid overflow).
    pub fn compute(a: T, b: T) -> (Self, T) {
        if b.is_zero() {
            return (Givens { c: T::one(), s: T::zero() }, a);
        }
        if a.is_zero() {
            return (Givens { c: T::zero(), s: T::one() }, b);
        }
        let (aa, ab) = (a.abs(), b.abs());
        let scale = aa.max(ab);
        let (ar, br) = (a / scale, b / scale);
        let r = (ar * ar + br * br).sqrt() * scale;
        // Keep r's sign tied to the larger component for stability.
        let r = if aa > ab {
            if a < T::zero() {
                -r
            } else {
                r
            }
        } else if b < T::zero() {
            -r
        } else {
            r
        };
        let c = a / r;
        let s = b / r;
        (Givens { c, s }, r)
    }

    /// Apply to a pair of scalars: `(x, y) -> (c*x + s*y, -s*x + c*y)`.
    #[inline]
    pub fn apply(&self, x: T, y: T) -> (T, T) {
        (self.c * x + self.s * y, self.c * y - self.s * x)
    }

    /// Apply to rows `i1`, `i2` of a matrix (left multiplication by `G`).
    pub fn apply_left(&self, m: &mut DMatrix<T>, i1: usize, i2: usize) {
        for j in 0..m.ncols() {
            let (x, y) = (m[(i1, j)], m[(i2, j)]);
            let (nx, ny) = self.apply(x, y);
            m[(i1, j)] = nx;
            m[(i2, j)] = ny;
        }
    }

    /// Apply to columns `j1`, `j2` of a matrix (right multiplication by
    /// `G^T`).
    pub fn apply_right(&self, m: &mut DMatrix<T>, j1: usize, j2: usize) {
        for i in 0..m.nrows() {
            let (x, y) = (m[(i, j1)], m[(i, j2)]);
            let (nx, ny) = self.apply(x, y);
            m[(i, j1)] = nx;
            m[(i, j2)] = ny;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroes_second_component() {
        for (a, b) in [(3.0f64, 4.0), (-2.0, 5.0), (1e-8, 1.0), (7.0, 0.0), (0.0, 2.0), (-1.0, -1.0)]
        {
            let (g, r) = Givens::compute(a, b);
            let (x, y) = g.apply(a, b);
            assert!((x - r).abs() < 1e-12, "r mismatch for ({a},{b})");
            assert!(y.abs() < 1e-12, "second component not zeroed for ({a},{b})");
            assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
            assert!((r.abs() - (a * a + b * b).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn left_right_application_preserves_product() {
        // G applied left then G^T applied right is a similarity transform:
        // the trace must be preserved.
        let mut m = DMatrix::<f64>::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, 4.0, 1.0], &[0.0, 1.0, 5.0]]);
        let trace_before = m[(0, 0)] + m[(1, 1)] + m[(2, 2)];
        let (g, _) = Givens::compute(m[(1, 0)], m[(2, 0)]);
        g.apply_left(&mut m, 1, 2);
        g.apply_right(&mut m, 1, 2);
        let trace_after = m[(0, 0)] + m[(1, 1)] + m[(2, 2)];
        assert!((trace_before - trace_after).abs() < 1e-12);
    }
}
