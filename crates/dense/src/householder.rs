//! Householder reflections and QR factorization.

use lpa_arith::BatchReal;

use crate::blas::{dot, nrm2};
use crate::matrix::DMatrix;

/// A Householder reflector `P = I - tau * v v^T` with `v[0] = 1` implied.
#[derive(Clone, Debug)]
pub struct Householder<T> {
    pub v: Vec<T>,
    pub tau: T,
    pub beta: T,
}

impl<T: BatchReal> Householder<T> {
    /// Reflector that maps `x` onto `beta * e1` (LAPACK `dlarfg`-style).
    ///
    /// The input is rescaled by its largest magnitude before squaring so that
    /// very small (or very large) vectors neither underflow nor overflow in
    /// the narrow formats — without this, bulge vectors of magnitude ~1e-4
    /// flush to zero when squared in float16 and the reflector degenerates.
    pub fn compute(x: &[T]) -> Self {
        let n = x.len();
        assert!(n >= 1);
        let mut maxabs = T::zero();
        for xi in x {
            maxabs = maxabs.max(xi.abs());
        }
        let xnorm_tail_raw = nrm2(&x[1..]);
        if xnorm_tail_raw.is_zero() || maxabs.is_zero() {
            return Householder { v: vec![T::zero(); n], tau: T::zero(), beta: x[0] };
        }
        // Divide (rather than multiply by the reciprocal): the reciprocal of
        // a subnormal scale overflows the narrow formats.
        let alpha = x[0] / maxabs;
        let xnorm = nrm2(&x[1..].iter().map(|&v| v / maxabs).collect::<Vec<_>>());
        let mut beta = -(alpha * alpha + xnorm * xnorm).sqrt();
        if alpha < T::zero() {
            beta = -beta;
        }
        let tau = (beta - alpha) / beta;
        let mut v = vec![T::zero(); n];
        v[0] = T::one();
        for i in 1..n {
            v[i] = (x[i] / maxabs) / (alpha - beta);
        }
        Householder { v, tau, beta: beta * maxabs }
    }

    /// Apply `P` to a vector in place.
    pub fn apply_vec(&self, x: &mut [T]) {
        if self.tau.is_zero() {
            return;
        }
        let s = self.tau * dot(&self.v, x);
        for (xi, vi) in x.iter_mut().zip(&self.v) {
            *xi -= s * *vi;
        }
    }

    /// Apply `P` from the left to the rows `r0..r0+len` of `m`.
    pub fn apply_left(&self, m: &mut DMatrix<T>, r0: usize) {
        if self.tau.is_zero() {
            return;
        }
        let len = self.v.len();
        for j in 0..m.ncols() {
            let mut s = T::zero();
            for k in 0..len {
                s += self.v[k] * m[(r0 + k, j)];
            }
            s *= self.tau;
            for k in 0..len {
                m[(r0 + k, j)] -= s * self.v[k];
            }
        }
    }

    /// Apply `P` from the right to the columns `c0..c0+len` of `m`.
    pub fn apply_right(&self, m: &mut DMatrix<T>, c0: usize) {
        if self.tau.is_zero() {
            return;
        }
        let len = self.v.len();
        for i in 0..m.nrows() {
            let mut s = T::zero();
            for k in 0..len {
                s += m[(i, c0 + k)] * self.v[k];
            }
            s *= self.tau;
            for k in 0..len {
                m[(i, c0 + k)] -= s * self.v[k];
            }
        }
    }
}

/// QR factorization by Householder reflections: returns `(Q, R)` with
/// `Q` orthogonal (`m x m`) and `R` upper triangular (`m x n`).
pub fn qr<T: BatchReal>(a: &DMatrix<T>) -> (DMatrix<T>, DMatrix<T>) {
    let m = a.nrows();
    let n = a.ncols();
    let mut r = a.clone();
    let mut q = DMatrix::identity(m);
    for k in 0..n.min(m.saturating_sub(1)) {
        let x: Vec<T> = (k..m).map(|i| r[(i, k)]).collect();
        let h = Householder::compute(&x);
        h.apply_left(&mut r, k);
        h.apply_right(&mut q, k);
        // Clean the explicitly zeroed column entries.
        for i in k + 1..m {
            r[(i, k)] = T::zero();
        }
        r[(k, k)] = h.beta;
    }
    (q, r)
}

/// Thin QR: orthonormalize the columns of `a`, returning `(Q_thin, R)` with
/// `Q_thin` of the same shape as `a`.
pub fn thin_qr<T: BatchReal>(a: &DMatrix<T>) -> (DMatrix<T>, DMatrix<T>) {
    let (q, r) = qr(a);
    (q.truncate_columns(a.ncols()), r.submatrix(0, 0, a.ncols(), a.ncols()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_orthogonal(q: &DMatrix<f64>, tol: f64) -> bool {
        let qtq = q.transpose_matmul(q);
        let id = DMatrix::<f64>::identity(q.ncols());
        qtq.diff_norm(&id) < tol
    }

    #[test]
    fn reflector_maps_to_e1() {
        let x = [3.0f64, 4.0, 0.0, 12.0];
        let h = Householder::compute(&x);
        let mut y = x;
        h.apply_vec(&mut y);
        assert!((y[0].abs() - 13.0).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
        assert!((h.beta - y[0]).abs() < 1e-12);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal() {
        let a = DMatrix::<f64>::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let (q, r) = qr(&a);
        assert!(is_orthogonal(&q, 1e-12));
        // R upper triangular
        for j in 0..r.ncols() {
            for i in j + 1..r.nrows() {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
        let qr_prod = q.matmul(&r);
        assert!(qr_prod.diff_norm(&a) < 1e-12);
        // Thin variant
        let (qt, rt) = thin_qr(&a);
        assert_eq!(qt.ncols(), 4);
        assert!(qt.matmul(&rt).diff_norm(&a) < 1e-12);
    }

    #[test]
    fn qr_of_square_identity_is_identity() {
        let id = DMatrix::<f64>::identity(5);
        let (q, r) = qr(&id);
        assert!(q.diff_norm(&id) < 1e-14);
        assert!(r.diff_norm(&id) < 1e-14);
    }
}
