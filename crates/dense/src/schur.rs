//! Real Schur decomposition of an upper Hessenberg matrix via the Francis
//! implicit double-shift QR iteration.
//!
//! This is the generic-scalar replacement for the LAPACK `dhseqr` routine the
//! paper's Julia stack deliberately avoids: the same code runs in every
//! format under study, including OFP8 and the tapered-precision formats.  A
//! failure to converge is reported as an error (never a panic) so the
//! experiment harness can classify it as the paper's `∞ω` outcome.

use lpa_arith::{BatchReal, Real};

use crate::complex::Complex;
use crate::error::DenseError;
use crate::givens::Givens;
use crate::hessenberg::hessenberg;
use crate::householder::Householder;
use crate::matrix::DMatrix;

/// Result of a real Schur decomposition `A = Z T Z^T`.
#[derive(Clone, Debug)]
pub struct Schur<T: Real> {
    /// Quasi-upper-triangular factor (1×1 and 2×2 diagonal blocks).
    pub t: DMatrix<T>,
    /// Orthogonal factor.
    pub z: DMatrix<T>,
}

impl<T: Real> Schur<T> {
    /// Eigenvalues read off the diagonal blocks of `T`.
    pub fn eigenvalues(&self) -> Vec<Complex<T>> {
        eigenvalues_of_quasi_triangular(&self.t)
    }
}

/// Iteration budget per eigenvalue.  The classical HQR heuristic uses 30;
/// the very low precision formats occasionally need more because the shifts
/// themselves are only accurate to a few digits, so the budget is larger
/// here (non-convergence is still reported, never looped forever).
const MAX_ITER_PER_EIGENVALUE: usize = 80;

/// Compute the real Schur form of a general square matrix: reduce to
/// Hessenberg form first, then run the Francis iteration.
pub fn schur<T: BatchReal>(a: &DMatrix<T>) -> Result<Schur<T>, DenseError> {
    let (mut h, mut q) = hessenberg(a);
    hessenberg_schur_in_place(&mut h, &mut q)?;
    Ok(Schur { t: h, z: q })
}

/// Francis double-shift QR on an upper Hessenberg matrix `h`, accumulating
/// the transformations into `z` (i.e. `z` is replaced by `z * Q` where
/// `Q^T h_in Q = h_out`).
pub fn hessenberg_schur_in_place<T: BatchReal>(
    h: &mut DMatrix<T>,
    z: &mut DMatrix<T>,
) -> Result<(), DenseError> {
    assert!(h.is_square());
    let n = h.nrows();
    if n == 0 {
        return Ok(());
    }
    let eps = T::epsilon();
    let hnorm = h.frobenius_norm();
    if !hnorm.is_finite() {
        return Err(DenseError::NonFinite);
    }

    let mut hi = n - 1; // index of the last row/column of the active block
    let mut iters_since_deflation = 0usize;

    loop {
        // Find the start `lo` of the active block by scanning for a
        // negligible subdiagonal entry.
        let mut lo = hi;
        while lo > 0 {
            let s = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            let s = if s.is_zero() { hnorm } else { s };
            if h[(lo, lo - 1)].abs() <= eps * s {
                h[(lo, lo - 1)] = T::zero();
                break;
            }
            lo -= 1;
        }

        if lo == hi {
            // A 1x1 block converged.
            if hi == 0 {
                break;
            }
            hi -= 1;
            iters_since_deflation = 0;
            continue;
        }
        if lo + 1 == hi {
            // A 2x2 block converged; bring it to standard form.
            standardize_2x2(h, z, lo);
            if hi <= 1 {
                break;
            }
            hi -= 2;
            iters_since_deflation = 0;
            continue;
        }

        iters_since_deflation += 1;
        if iters_since_deflation > MAX_ITER_PER_EIGENVALUE {
            return Err(DenseError::QrNoConvergence {
                position: hi,
                iterations: iters_since_deflation,
            });
        }
        if !h[(hi, hi)].is_finite() || !h[(lo, lo)].is_finite() {
            return Err(DenseError::NonFinite);
        }

        // Double-shift from the trailing 2x2 block (sum / product of its
        // eigenvalues); every tenth iteration use an exceptional shift.
        let (s, t) = if iters_since_deflation.is_multiple_of(10) {
            // Exceptional (ad-hoc) shift to break limit cycles.
            let x = h[(hi, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs();
            let base = h[(hi, hi)] + T::from_f64(0.75) * x;
            (base + base, base * base - T::from_f64(0.4375) * x * x)
        } else {
            let a = h[(hi - 1, hi - 1)];
            let b = h[(hi - 1, hi)];
            let c = h[(hi, hi - 1)];
            let d = h[(hi, hi)];
            (a + d, a * d - b * c)
        };

        francis_double_step(h, z, lo, hi, s, t);
    }
    Ok(())
}

/// One implicit double-shift sweep on the active block `lo..=hi`.
fn francis_double_step<T: BatchReal>(
    h: &mut DMatrix<T>,
    z: &mut DMatrix<T>,
    lo: usize,
    hi: usize,
    s: T,
    t: T,
) {
    // First column of (H - s1 I)(H - s2 I) e1 restricted to the block.
    let h11 = h[(lo, lo)];
    let h12 = h[(lo, lo + 1)];
    let h21 = h[(lo + 1, lo)];
    let h22 = h[(lo + 1, lo + 1)];
    let h32 = h[(lo + 2, lo + 1)];
    let mut p = h11 * h11 + h12 * h21 - s * h11 + t;
    let mut q = h21 * (h11 + h22 - s);
    let mut r = h21 * h32;

    for k in lo..hi {
        let last = k == hi - 1; // the final reflector is only 2 rows tall
        let len = if last { 2 } else { 3 };
        let col = if last { vec![p, q] } else { vec![p, q, r] };
        let refl = Householder::compute(&col);
        if !refl.tau.is_zero() {
            refl.apply_left(h, k);
            refl.apply_right(h, k);
            refl.apply_right(z, k);
        }
        // Restore the Hessenberg zeros introduced by the explicit bulge.
        if k > lo {
            h[(k, k - 1)] = refl.beta;
            for i in k + 1..(k + len).min(hi + 1) {
                h[(i, k - 1)] = T::zero();
            }
        }
        if !last {
            p = h[(k + 1, k)];
            q = h[(k + 2, k)];
            r = if k + 3 <= hi { h[(k + 3, k)] } else { T::zero() };
        }
    }
}

/// Bring a converged trailing 2x2 block starting at `lo` into standard form:
/// if its eigenvalues are real, rotate it to upper triangular form; if they
/// are complex, leave the block (any 2x2 block with complex eigenvalues is an
/// acceptable real Schur block).
fn standardize_2x2<T: Real>(h: &mut DMatrix<T>, z: &mut DMatrix<T>, lo: usize) {
    let a = h[(lo, lo)];
    let b = h[(lo, lo + 1)];
    let c = h[(lo + 1, lo)];
    let d = h[(lo + 1, lo + 1)];
    if c.is_zero() {
        return;
    }
    let half = T::half();
    let p = (a - d) * half;
    let disc = p * p + b * c;
    if disc < T::zero() {
        return; // complex pair, keep the block
    }
    let mean = (a + d) * half;
    let sq = disc.sqrt();
    let lambda = if p >= T::zero() { mean + sq } else { mean - sq };
    // Eigenvector of the block for `lambda`, taken from the better-scaled row.
    let x1 = [b, lambda - a];
    let x2 = [lambda - d, c];
    let n1 = x1[0].abs() + x1[1].abs();
    let n2 = x2[0].abs() + x2[1].abs();
    let x = if n1 >= n2 { x1 } else { x2 };
    if (x[0].abs() + x[1].abs()).is_zero() {
        return;
    }
    let (g, _) = Givens::compute(x[0], x[1]);
    g.apply_left(h, lo, lo + 1);
    g.apply_right(h, lo, lo + 1);
    g.apply_right(z, lo, lo + 1);
    h[(lo + 1, lo)] = T::zero();
}

/// Eigenvalues of a quasi-upper-triangular matrix (the `T` factor of a real
/// Schur decomposition).
pub fn eigenvalues_of_quasi_triangular<T: Real>(t: &DMatrix<T>) -> Vec<Complex<T>> {
    let n = t.nrows();
    let mut eig = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        if i + 1 < n && !t[(i + 1, i)].is_zero() {
            // 2x2 block.
            let a = t[(i, i)];
            let b = t[(i, i + 1)];
            let c = t[(i + 1, i)];
            let d = t[(i + 1, i + 1)];
            let half = T::half();
            let mean = (a + d) * half;
            let p = (a - d) * half;
            let disc = p * p + b * c;
            if disc >= T::zero() {
                let sq = disc.sqrt();
                eig.push(Complex::real(mean + sq));
                eig.push(Complex::real(mean - sq));
            } else {
                let sq = (-disc).sqrt();
                eig.push(Complex::new(mean, sq));
                eig.push(Complex::new(mean, -sq));
            }
            i += 2;
        } else {
            eig.push(Complex::real(t[(i, i)]));
            i += 1;
        }
    }
    eig
}

/// Positions `i` such that row `i` starts a diagonal block of `T` (1x1 or
/// 2x2), together with the block sizes.
pub fn block_structure<T: Real>(t: &DMatrix<T>) -> Vec<(usize, usize)> {
    let n = t.nrows();
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < n {
        if i + 1 < n && !t[(i + 1, i)].is_zero() {
            blocks.push((i, 2));
            i += 2;
        } else {
            blocks.push((i, 1));
            i += 1;
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_schur(a: &DMatrix<f64>, tol: f64) -> Schur<f64> {
        let s = schur(a).expect("schur converges");
        // Z orthogonal.
        let ztz = s.z.transpose_matmul(&s.z);
        assert!(ztz.diff_norm(&DMatrix::identity(a.nrows())) < tol, "Z not orthogonal");
        // A Z = Z T.
        let az = a.matmul(&s.z);
        let zt = s.z.matmul(&s.t);
        assert!(az.diff_norm(&zt) < tol * (1.0 + a.frobenius_norm()), "A Z != Z T");
        // T quasi-triangular: nothing below the first subdiagonal, and no two
        // consecutive non-zero subdiagonal entries.
        for j in 0..a.ncols() {
            for i in j + 2..a.nrows() {
                assert!(s.t[(i, j)].abs() < tol, "T not quasi-triangular at ({i},{j})");
            }
        }
        for i in 1..a.nrows() - 1 {
            assert!(
                s.t[(i, i - 1)].abs() < tol || s.t[(i + 1, i)].abs() < tol,
                "consecutive 2x2 blocks overlap at {i}"
            );
        }
        s
    }

    #[test]
    fn symmetric_matrix_has_real_diagonal_schur() {
        let n = 8;
        let mut a = DMatrix::<f64>::from_fn(n, n, |i, j| ((i * 3 + j * 7 + i * j) % 11) as f64);
        for i in 0..n {
            for j in 0..i {
                let v = (a[(i, j)] + a[(j, i)]) / 2.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let s = check_schur(&a, 1e-9);
        let mut eigs: Vec<f64> = s.eigenvalues().iter().map(|c| c.re).collect();
        assert!(s.eigenvalues().iter().all(|c| c.im == 0.0));
        // Trace is preserved.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eigs.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
        // Eigenvalues match the symmetric tridiagonal solver.
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut reference = crate::eigen_sym::symmetric_eigenvalues(&a).expect("sym eig");
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in eigs.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn rotation_like_matrix_gives_complex_pairs() {
        // Block diagonal with a rotation: eigenvalues cos±i sin and 3.
        let c = 0.6f64;
        let s = 0.8f64;
        let a = DMatrix::<f64>::from_rows(&[&[c, -s, 0.3], &[s, c, -0.1], &[0.0, 0.0, 3.0]]);
        let res = check_schur(&a, 1e-10);
        let eigs = res.eigenvalues();
        let mut complex_count = 0;
        let mut real_vals = Vec::new();
        for e in &eigs {
            if e.im != 0.0 {
                complex_count += 1;
                assert!((e.re - c).abs() < 1e-10);
                assert!((e.im.abs() - s).abs() < 1e-10);
            } else {
                real_vals.push(e.re);
            }
        }
        assert_eq!(complex_count, 2);
        assert_eq!(real_vals.len(), 1);
        assert!((real_vals[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn random_nonsymmetric_matrices_converge() {
        let mut seed = 42u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 3, 5, 10, 17, 25] {
            let a = DMatrix::<f64>::from_fn(n, n, |_, _| rand());
            let s = check_schur(&a, 1e-8);
            let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let sum: f64 = s.eigenvalues().iter().map(|c| c.re).sum();
            assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()), "n={n}");
        }
    }

    #[test]
    fn known_eigenvalues_of_tridiagonal_toeplitz() {
        // The (-1, 2, -1) tridiagonal matrix has eigenvalues
        // 2 - 2 cos(k pi / (n+1)).
        let n = 12;
        let a = DMatrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let s = check_schur(&a, 1e-9);
        let mut eigs: Vec<f64> = s.eigenvalues().iter().map(|c| c.re).collect();
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, e) in eigs.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n as f64 + 1.0)).cos();
            assert!((e - expected).abs() < 1e-9, "{e} vs {expected}");
        }
    }

    #[test]
    fn schur_works_in_low_precision() {
        // The same code runs in posit16; results are coarse but structurally
        // correct (similarity + quasi-triangular form).
        use lpa_arith::types::Posit16;
        let a64 = DMatrix::<f64>::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 2.0, 1.0],
            &[0.0, 0.0, 1.0, 1.0],
        ]);
        let a: DMatrix<Posit16> = a64.convert();
        let s = schur(&a).expect("posit16 schur");
        let az: DMatrix<f64> = a.matmul(&s.z).convert();
        let zt: DMatrix<f64> = s.z.matmul(&s.t).convert();
        assert!(az.diff_norm(&zt) < 0.05);
        let mut eigs: Vec<f64> = s.eigenvalues().iter().map(|c| c.re.to_f64()).collect();
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = crate::eigen_sym::symmetric_eigenvalues(&a64).unwrap();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (e, x) in eigs.iter().zip(&expected) {
            assert!((e - x).abs() < 0.05, "{e} vs {x}");
        }
    }

    #[test]
    fn nonfinite_input_is_reported() {
        let mut a = DMatrix::<f64>::identity(3);
        a[(1, 1)] = f64::NAN;
        assert!(matches!(schur(&a), Err(DenseError::NonFinite)));
    }
}
