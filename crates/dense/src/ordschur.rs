//! Reordering of a real Schur decomposition.
//!
//! The Krylov–Schur restart needs the "wanted" Ritz values moved to the
//! leading diagonal blocks of `T` (with `Z` updated accordingly).  Adjacent
//! diagonal blocks are swapped with orthogonal transformations: 1×1/1×1 swaps
//! use a single Givens rotation; swaps involving 2×2 blocks use the direct
//! method (solve a small Sylvester equation, orthogonalize, apply), as in
//! LAPACK's `dlaexc`.

use lpa_arith::{BatchReal, Real};

use crate::error::DenseError;
use crate::givens::Givens;
use crate::householder::qr;
use crate::matrix::DMatrix;
use crate::schur::block_structure;

/// Swap the adjacent diagonal blocks of sizes `p` and `q` starting at row
/// `j` of the quasi-triangular matrix `t`, updating `z` alongside.
fn swap_adjacent<T: BatchReal>(
    t: &mut DMatrix<T>,
    z: &mut DMatrix<T>,
    j: usize,
    p: usize,
    q: usize,
) -> Result<(), DenseError> {
    if p == 1 && q == 1 {
        let t11 = t[(j, j)];
        let t12 = t[(j, j + 1)];
        let t22 = t[(j + 1, j + 1)];
        // Eigenvector of [[t11, t12], [0, t22]] for eigenvalue t22.
        let (g, _) = Givens::compute(t12, t22 - t11);
        g.apply_left(t, j, j + 1);
        g.apply_right(t, j, j + 1);
        g.apply_right(z, j, j + 1);
        t[(j + 1, j)] = T::zero();
        return Ok(());
    }

    // General case via the direct swap: T = [[A, B], [0, C]] with A p×p and
    // C q×q.  Solve A X - X C = s*B, then the columns of [[-X], [s*I]] span
    // the invariant subspace belonging to C; a QR factorization of that block
    // gives the orthogonal transformation performing the swap.
    let n = p + q;
    let a = t.submatrix(j, j, p, p);
    let b = t.submatrix(j, j + p, p, q);
    let c = t.submatrix(j + p, j + p, q, q);
    let x = solve_sylvester(&a, &c, &b)?;

    let mut m = DMatrix::<T>::zeros(n, q);
    for jj in 0..q {
        for ii in 0..p {
            m[(ii, jj)] = -x[(ii, jj)];
        }
        m[(p + jj, jj)] = T::one();
    }
    let (qfull, _r) = qr(&m);

    // Apply the orthogonal transform to rows/columns j..j+n of the full
    // matrices: T <- Q^T T Q (restricted), Z <- Z Q.
    apply_block_orthogonal(t, z, j, &qfull);

    // Clean the (now zero) lower-left block.
    for jj in 0..q {
        for ii in q..n {
            t[(j + ii, j + jj)] = T::zero();
        }
    }
    // Re-split any swapped 2x2 blocks that actually have real eigenvalues is
    // unnecessary for our use (selection treats blocks atomically).
    Ok(())
}

/// Solve the small Sylvester equation `A X - X C = B` (sizes at most 2×2) by
/// forming the Kronecker system and using Gaussian elimination with partial
/// pivoting.
fn solve_sylvester<T: BatchReal>(
    a: &DMatrix<T>,
    c: &DMatrix<T>,
    b: &DMatrix<T>,
) -> Result<DMatrix<T>, DenseError> {
    let p = a.nrows();
    let q = c.nrows();
    let n = p * q;
    // Unknowns x_{ij} laid out column-major: k = j*p + i.
    let mut m = DMatrix::<T>::zeros(n, n);
    let mut rhs = vec![T::zero(); n];
    for j in 0..q {
        for i in 0..p {
            let row = j * p + i;
            rhs[row] = b[(i, j)];
            for k in 0..p {
                m[(row, j * p + k)] += a[(i, k)];
            }
            for k in 0..q {
                m[(row, k * p + i)] -= c[(k, j)];
            }
        }
    }
    let x = solve_linear(&mut m, &mut rhs)?;
    Ok(DMatrix::from_fn(p, q, |i, j| x[j * p + i]))
}

/// Gaussian elimination with partial pivoting for a small system (in place).
fn solve_linear<T: Real>(m: &mut DMatrix<T>, rhs: &mut [T]) -> Result<Vec<T>, DenseError> {
    let n = m.nrows();
    for k in 0..n {
        // Pivot.
        let mut piv = k;
        for i in k + 1..n {
            if m[(i, k)].abs() > m[(piv, k)].abs() {
                piv = i;
            }
        }
        if m[(piv, k)].is_zero() {
            return Err(DenseError::SwapRejected { position: k });
        }
        if piv != k {
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(piv, j)];
                m[(piv, j)] = tmp;
            }
            rhs.swap(k, piv);
        }
        for i in k + 1..n {
            let f = m[(i, k)] / m[(k, k)];
            if f.is_zero() {
                continue;
            }
            for j in k..n {
                m[(i, j)] = m[(i, j)] - f * m[(k, j)];
            }
            rhs[i] -= f * rhs[k];
        }
    }
    let mut x = vec![T::zero(); n];
    for k in (0..n).rev() {
        let mut s = rhs[k];
        for j in k + 1..n {
            s -= m[(k, j)] * x[j];
        }
        x[k] = s / m[(k, k)];
    }
    Ok(x)
}

/// Apply a small orthogonal matrix `q` (acting on rows/columns
/// `j..j+q.nrows()`) as a similarity transform of `t` and on the right of
/// `z`.
fn apply_block_orthogonal<T: BatchReal>(
    t: &mut DMatrix<T>,
    z: &mut DMatrix<T>,
    j: usize,
    q: &DMatrix<T>,
) {
    let k = q.nrows();
    let nt = t.nrows();
    // Rows: T[j..j+k, :] <- Q^T * T[j..j+k, :]
    for col in 0..nt {
        let old: Vec<T> = (0..k).map(|i| t[(j + i, col)]).collect();
        for i in 0..k {
            let mut s = T::zero();
            for l in 0..k {
                s += q[(l, i)] * old[l];
            }
            t[(j + i, col)] = s;
        }
    }
    // Columns: T[:, j..j+k] <- T[:, j..j+k] * Q
    for row in 0..nt {
        let old: Vec<T> = (0..k).map(|i| t[(row, j + i)]).collect();
        for i in 0..k {
            let mut s = T::zero();
            for l in 0..k {
                s += old[l] * q[(l, i)];
            }
            t[(row, j + i)] = s;
        }
    }
    // Z[:, j..j+k] <- Z[:, j..j+k] * Q
    for row in 0..z.nrows() {
        let old: Vec<T> = (0..k).map(|i| z[(row, j + i)]).collect();
        for i in 0..k {
            let mut s = T::zero();
            for l in 0..k {
                s += old[l] * q[(l, i)];
            }
            z[(row, j + i)] = s;
        }
    }
}

/// Reorder the Schur form so that the diagonal blocks whose indices are
/// `selected` (by block position in the current block structure) appear
/// first, preserving the relative order of the selected blocks.  Returns the
/// number of leading rows/columns occupied by the selected blocks.
pub fn reorder_schur<T: BatchReal>(
    t: &mut DMatrix<T>,
    z: &mut DMatrix<T>,
    selected: &[bool],
) -> Result<usize, DenseError> {
    let blocks = block_structure(t);
    assert_eq!(blocks.len(), selected.len(), "selection length must match block count");

    // Bubble the selected blocks upwards, preserving order.
    let mut order: Vec<(usize, bool)> = blocks.iter().map(|&(_, sz)| sz).zip(selected.iter().copied()).collect();
    let mut target = 0usize; // number of blocks already placed at the top
    let mut selected_rows = 0usize;

    for bi in 0..order.len() {
        if !order[bi].1 {
            continue;
        }
        selected_rows += order[bi].0;
        // Move block bi up to position `target` by adjacent swaps.
        let mut pos = bi;
        while pos > target {
            // Row index where the block above starts.
            let row_above: usize = order[..pos - 1].iter().map(|(sz, _)| sz).sum();
            let (psize, _) = order[pos - 1];
            let (qsize, _) = order[pos];
            swap_adjacent(t, z, row_above, psize, qsize)?;
            order.swap(pos - 1, pos);
            pos -= 1;
        }
        target += 1;
    }
    Ok(selected_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schur::{eigenvalues_of_quasi_triangular, schur};

    fn eig_residual(a: &DMatrix<f64>, t: &DMatrix<f64>, z: &DMatrix<f64>) -> f64 {
        let az = a.matmul(z);
        let zt = z.matmul(t);
        az.diff_norm(&zt)
    }

    #[test]
    fn swap_two_real_eigenvalues() {
        let a = DMatrix::<f64>::from_rows(&[&[1.0, 5.0], &[0.0, 3.0]]);
        let mut t = a.clone();
        let mut z = DMatrix::identity(2);
        swap_adjacent(&mut t, &mut z, 0, 1, 1).unwrap();
        assert!((t[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((t[(1, 1)] - 1.0).abs() < 1e-12);
        assert!(t[(1, 0)].abs() < 1e-12);
        assert!(eig_residual(&a, &t, &z) < 1e-12);
    }

    #[test]
    fn reorder_moves_largest_to_front() {
        // Symmetric matrix: all blocks are 1x1.
        let n = 9;
        let mut a = DMatrix::<f64>::from_fn(n, n, |i, j| ((i * 5 + j * 11 + i * j) % 17) as f64);
        for i in 0..n {
            for j in 0..i {
                let v = (a[(i, j)] + a[(j, i)]) / 2.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let s = schur(&a).unwrap();
        let mut t = s.t.clone();
        let mut z = s.z.clone();
        let eigs: Vec<f64> = eigenvalues_of_quasi_triangular(&t).iter().map(|c| c.re).collect();
        // Select the 3 largest by magnitude.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&i, &j| eigs[j].abs().partial_cmp(&eigs[i].abs()).unwrap());
        let mut selected = vec![false; n];
        for &i in idx.iter().take(3) {
            selected[i] = true;
        }
        let rows = reorder_schur(&mut t, &mut z, &selected).unwrap();
        assert_eq!(rows, 3);
        assert!(eig_residual(&a, &t, &z) < 1e-9);
        // The three leading diagonal entries are exactly the selected values
        // (in their original relative order).
        let expected: Vec<f64> = (0..n).filter(|&i| selected[i]).map(|i| eigs[i]).collect();
        for (k, e) in expected.iter().enumerate() {
            assert!((t[(k, k)] - e).abs() < 1e-8, "position {k}: {} vs {e}", t[(k, k)]);
        }
        // Z still orthogonal.
        let ztz = z.transpose_matmul(&z);
        assert!(ztz.diff_norm(&DMatrix::identity(n)) < 1e-10);
    }

    #[test]
    fn reorder_with_complex_blocks() {
        // Matrix with a complex pair (rotation block) and two real
        // eigenvalues; move the complex pair to the front as one block.
        let a = DMatrix::<f64>::from_rows(&[
            &[1.0, 0.2, 0.3, 0.1],
            &[0.0, 0.6, -0.8, 0.4],
            &[0.0, 0.8, 0.6, -0.2],
            &[0.0, 0.0, 0.0, 5.0],
        ]);
        let s = schur(&a).unwrap();
        let mut t = s.t.clone();
        let mut z = s.z.clone();
        let blocks = block_structure(&t);
        // Select the block(s) containing complex eigenvalues and the value 5.
        let mut selected = Vec::new();
        for &(start, size) in &blocks {
            if size == 2 {
                selected.push(true);
            } else {
                selected.push((t[(start, start)] - 5.0).abs() < 1e-8);
            }
        }
        let rows = reorder_schur(&mut t, &mut z, &selected).unwrap();
        assert_eq!(rows, 3);
        assert!(eig_residual(&a, &t, &z) < 1e-8);
        // Eigenvalues preserved overall.
        let mut before: Vec<f64> =
            eigenvalues_of_quasi_triangular(&s.t).iter().map(|c| c.re).collect();
        let mut after: Vec<f64> = eigenvalues_of_quasi_triangular(&t).iter().map(|c| c.re).collect();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn sylvester_solver_small() {
        let a = DMatrix::<f64>::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let c = DMatrix::<f64>::from_rows(&[&[1.0]]);
        let b = DMatrix::<f64>::from_rows(&[&[1.0], &[2.0]]);
        let x = solve_sylvester(&a, &c, &b).unwrap();
        // Check A X - X C = B.
        let ax = a.matmul(&x);
        let xc = x.matmul(&c);
        for i in 0..2 {
            assert!((ax[(i, 0)] - xc[(i, 0)] - b[(i, 0)]).abs() < 1e-12);
        }
    }
}
