//! # lpa-dense — generic dense linear algebra
//!
//! Dense kernels used by the Krylov–Schur implicitly restarted Arnoldi
//! method, all generic over the [`lpa_arith::Real`] scalar trait so that the
//! same untailored code runs in every number format evaluated by the paper:
//!
//! * [`matrix::DMatrix`] — column-major dense matrices,
//! * [`blas`] — dot / axpy / scaled 2-norm / normalize,
//! * [`householder`] — Householder reflectors and QR,
//! * [`hessenberg`] — reduction to upper Hessenberg form,
//! * [`schur`] — Francis double-shift real Schur decomposition,
//! * [`ordschur`] — reordering of the Schur form (adjacent block swaps),
//! * [`eigen_sym`] — symmetric tridiagonal eigensolver (test oracle and
//!   ablation path),
//! * [`complex::Complex`] — the eigenvalue type of the real Schur form.
//!
//! These modules replace the role LAPACK plays for `float32`/`float64` in
//! conventional stacks; the paper's point is precisely that such routines
//! must be format-generic to evaluate posits and takums fairly.

pub mod blas;
pub mod complex;
pub mod eigen_sym;
pub mod error;
pub mod givens;
pub mod hessenberg;
pub mod householder;
pub mod matrix;
pub mod ordschur;
pub mod schur;

pub use complex::Complex;
pub use error::DenseError;
pub use matrix::DMatrix;
pub use schur::{schur, Schur};
