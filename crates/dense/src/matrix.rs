//! Column-major dense matrix generic over [`Real`].

use core::fmt;
use core::ops::{Index, IndexMut};

use lpa_arith::Real;

/// A dense, column-major matrix.
#[derive(Clone, PartialEq)]
pub struct DMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Real> DMatrix<T> {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMatrix { nrows, ncols, data: vec![T::zero(); nrows * ncols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from a closure `f(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        DMatrix { nrows, ncols, data }
    }

    /// Build from row-major data (convenient in tests).
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|r| r.len() == ncols), "ragged rows");
        Self::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// Build from a list of column vectors.
    pub fn from_columns(cols: &[Vec<T>]) -> Self {
        let ncols = cols.len();
        let nrows = if ncols == 0 { 0 } else { cols[0].len() };
        assert!(cols.iter().all(|c| c.len() == nrows), "ragged columns");
        Self::from_fn(nrows, ncols, |i, j| cols[j][i])
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct columns as mutable slices (for rotations).
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [T], &mut [T]) {
        assert!(j1 != j2);
        let n = self.nrows;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (a, b) = self.data.split_at_mut(hi * n);
        let first = &mut a[lo * n..(lo + 1) * n];
        let second = &mut b[..n];
        if j1 < j2 {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Flat access to the underlying column-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Sub-matrix copy `rows × cols` starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        Self::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Keep only the leading `cols` columns.
    pub fn truncate_columns(&self, cols: usize) -> Self {
        self.submatrix(0, 0, self.nrows, cols)
    }

    /// Matrix product `self * other`.
    ///
    /// Column-axpy ordering (the column-major analogue of the cache-friendly
    /// row-major ikj loop): the innermost loop streams one column of `self`
    /// into one column of the output, both contiguous, with the `other`
    /// column and the output column borrowed once per `j` instead of once
    /// per scalar.  This is the shape of the `V_m · Z_k` restart product in
    /// the Krylov–Schur iteration (tall × skinny), where streaming `V`'s
    /// columns is what keeps the product memory-bound instead of
    /// latency-bound.  Accumulation order over `k` is unchanged, so results
    /// are bit-identical to the naive triple loop.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.ncols, other.nrows, "dimension mismatch in matmul");
        let mut out = Self::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            let bcol = other.col(j);
            let ocol = out.col_mut(j);
            for (k, &b) in bcol.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                for (o, &a) in ocol.iter_mut().zip(self.col(k)) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other`.
    pub fn transpose_matmul(&self, other: &Self) -> Self
    where
        T: lpa_arith::BatchReal,
    {
        assert_eq!(self.nrows, other.nrows);
        Self::from_fn(self.ncols, other.ncols, |i, j| {
            crate::blas::dot(self.col(i), other.col(j))
        })
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(self.ncols, x.len());
        let mut y = vec![T::zero(); self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj.is_zero() {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        crate::blas::nrm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> T {
        let mut m = T::zero();
        for v in &self.data {
            m = m.max(v.abs());
        }
        m
    }

    /// Element-wise conversion to another scalar type through `f64`.
    pub fn convert<U: Real>(&self) -> DMatrix<U> {
        DMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// `||self - other||_F`.
    pub fn diff_norm(&self, other: &Self) -> T {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut acc = T::zero();
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = *a - *b;
            acc += d * d;
        }
        acc.sqrt()
    }
}

impl<T: Real> Index<(usize, usize)> for DMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<T: Real> IndexMut<(usize, usize)> for DMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl<T: Real> fmt::Debug for DMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(12) {
                write!(f, "{:>12.5e} ", self[(i, j)].to_f64())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DMatrix::<f64>::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.col(1), &[2.0, 5.0]);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t[(2, 1)], 6.0);
        let id = DMatrix::<f64>::identity(3);
        assert_eq!(id.matmul(&t), t);
    }

    #[test]
    fn matmul_and_matvec() {
        let a = DMatrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let at_b = a.transpose_matmul(&b);
        assert_eq!(at_b, a.transpose().matmul(&b));
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = DMatrix::<f64>::identity(3);
        {
            let (c0, c2) = m.two_cols_mut(0, 2);
            c0[1] = 7.0;
            c2[0] = 9.0;
        }
        assert_eq!(m[(1, 0)], 7.0);
        assert_eq!(m[(0, 2)], 9.0);
        let (c2, c0) = m.two_cols_mut(2, 0);
        assert_eq!(c2[0], 9.0);
        assert_eq!(c0[1], 7.0);
    }

    #[test]
    fn norms_and_conversion() {
        let m = DMatrix::<f64>::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        let p: DMatrix<lpa_arith::Posit16> = m.convert();
        assert_eq!(p[(1, 1)].to_f64(), 4.0);
        let back: DMatrix<f64> = p.convert();
        assert_eq!(back.diff_norm(&m), 0.0);
    }
}
