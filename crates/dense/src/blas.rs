//! BLAS-1/2 style kernels generic over [`Real`].
//!
//! The 2-norm uses a scaled one-pass accumulation so that it neither
//! overflows nor underflows the narrow formats' dynamic range — the same
//! robustness the paper's Julia stack inherits from its `norm`
//! implementation.
//!
//! `dot` and `axpy` — the kernels whose operands the Krylov loops re-read
//! — route through `lpa_arith::batch`: when the batch kernel engine is
//! enabled (the default, see `LPA_KERNEL_BATCH`) the emulated formats
//! pre-decode their operands and run the decoded-domain kernels, which are
//! bit-identical to the scalar loops but skip the per-operation bit-pattern
//! round trips.  The decoded counterparts ([`dot_decoded`],
//! [`axpy_decoded`], [`scal_decoded`]) work on already-cached shadows —
//! `lpa_arnoldi`'s Gram-Schmidt passes and basis-column scaling call them
//! directly.

use lpa_arith::{batch, BatchReal, Real};

/// Dot product (batch-engine routed, see the module docs).
pub fn dot<T: BatchReal>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    batch::dot_slice(x, y)
}

/// Dot product over pre-decoded shadows; returns the decoded accumulator.
pub fn dot_decoded<T: BatchReal>(x: &[T::Dec], y: &[T::Dec]) -> T::Dec {
    batch::dot_decoded::<T>(x, y)
}

/// `y += alpha * x` (batch-engine routed, see the module docs).
pub fn axpy<T: BatchReal>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    batch::axpy_slice(alpha, x, y)
}

/// `y += alpha * x` over pre-decoded shadows.
pub fn axpy_decoded<T: BatchReal>(alpha: T::Dec, x: &[T::Dec], y: &mut [T::Dec]) {
    batch::axpy_decoded::<T>(alpha, x, y)
}

/// `x *= alpha` over pre-decoded shadows.
pub fn scal_decoded<T: BatchReal>(alpha: T::Dec, x: &mut [T::Dec]) {
    batch::scale_decoded::<T>(alpha, x)
}

/// Dot product over plane stores ([`lpa_arith::PlaneStore`]); returns the
/// decoded accumulator.  Bit-identical to [`dot`] on the encoded values.
pub fn dot_planes<T: BatchReal>(x: &T::Planes, y: &T::Planes) -> T::Dec {
    batch::dot_planes::<T>(x, y)
}

/// `y += alpha * x` over plane stores; bit-identical to [`axpy`].
pub fn axpy_planes<T: BatchReal>(alpha: T::Dec, x: &T::Planes, y: &mut T::Planes) {
    batch::axpy_planes::<T>(alpha, x, y)
}

/// `x *= alpha` over plane stores; bit-identical to [`scal`].
pub fn scal_planes<T: BatchReal>(alpha: T::Dec, x: &mut T::Planes) {
    batch::scale_planes::<T>(alpha, x)
}

/// `x *= alpha`.
pub fn scal<T: Real>(alpha: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling (LAPACK `dnrm2`-style).
pub fn nrm2<T: Real>(x: &[T]) -> T {
    let mut scale = T::zero();
    let mut ssq = T::one();
    for xi in x {
        if xi.is_zero() {
            continue;
        }
        let a = xi.abs();
        if scale < a {
            let r = scale / a;
            ssq = T::one() + ssq * r * r;
            scale = a;
        } else {
            let r = a / scale;
            ssq += r * r;
        }
    }
    if scale.is_zero() {
        T::zero()
    } else {
        scale * ssq.sqrt()
    }
}

/// Index of the entry with the largest absolute value (0 for empty input).
pub fn iamax<T: Real>(x: &[T]) -> usize {
    let mut best = 0;
    let mut best_val = T::zero();
    for (i, xi) in x.iter().enumerate() {
        let a = xi.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    best
}

/// Normalize `x` to unit 2-norm in place; returns the original norm.
pub fn normalize<T: Real>(x: &mut [T]) -> T {
    let n = nrm2(x);
    if !n.is_zero() && n.is_finite() {
        let inv = n.recip();
        scal(inv, x);
    }
    n
}

/// Dense general matrix-vector product `y = alpha * A * x + beta * y` with
/// `A` given as a closure over column slices (used by tests); the dense
/// matrix type has its own `matvec`.
pub fn gemv_cols<T: BatchReal>(cols: &[&[T]], alpha: T, x: &[T], beta: T, y: &mut [T]) {
    for yi in y.iter_mut() {
        *yi *= beta;
    }
    for (j, col) in cols.iter().enumerate() {
        let s = alpha * x[j];
        axpy(s, col, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::types::{Posit16, Takum8, E4M3};

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0f64, 2.0, 3.0];
        let y = [4.0f64, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        let mut z = y;
        axpy(2.0, &x, &mut z);
        assert_eq!(z, [6.0, 9.0, 12.0]);
        scal(0.5, &mut z);
        assert_eq!(z, [3.0, 4.5, 6.0]);
        assert_eq!(iamax(&[-3.0, 7.0, -9.5, 2.0]), 2);
    }

    #[test]
    fn nrm2_matches_naive_in_f64() {
        let x = [3.0f64, 4.0];
        assert_eq!(nrm2(&x), 5.0);
        let x: Vec<f64> = (0..100).map(|i| (i as f64) * 0.01 - 0.5).collect();
        let naive = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nrm2(&x) - naive).abs() < 1e-14);
    }

    #[test]
    fn nrm2_does_not_overflow_narrow_formats() {
        // Squaring these entries would leave the E4M3 range (max 448), but
        // the scaled accumulation keeps the norm finite and representable.
        let x: Vec<E4M3> = (0..4).map(|_| E4M3::from_f64(200.0)).collect();
        let n = nrm2(&x);
        assert!(n.is_finite());
        assert!(n.to_f64() > 200.0);
        // Same at the tiny end for takum8.
        let x: Vec<Takum8> = (0..4).map(|_| Takum8::from_f64(1e-30)).collect();
        let n = nrm2(&x);
        assert!(!n.is_zero());
    }

    #[test]
    fn normalize_gives_unit_vectors() {
        let mut x = vec![Posit16::from_f64(3.0), Posit16::from_f64(4.0)];
        let n = normalize(&mut x);
        assert_eq!(n.to_f64(), 5.0);
        let r = nrm2(&x).to_f64();
        assert!((r - 1.0).abs() < 1e-3);
        // Zero vectors are left untouched.
        let mut z = vec![Posit16::from_f64(0.0); 3];
        assert!(normalize(&mut z).is_zero());
    }

    #[test]
    fn gemv_cols_matches_manual() {
        let c0 = [1.0f64, 0.0];
        let c1 = [0.0f64, 2.0];
        let mut y = [1.0f64, 1.0];
        gemv_cols(&[&c0, &c1], 2.0, &[3.0, 4.0], 1.0, &mut y);
        assert_eq!(y, [7.0, 17.0]);
    }
}
