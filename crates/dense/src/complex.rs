//! Minimal complex number support.
//!
//! The projected eigenproblem is real, but rounding can split a nearly
//! degenerate pair of real Ritz values into a complex-conjugate pair, so the
//! Schur machinery reports eigenvalues as complex numbers generic over the
//! scalar type.

use lpa_arith::Real;

/// A complex number over a [`Real`] scalar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

impl<T: Real> Complex<T> {
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    pub fn real(re: T) -> Self {
        Complex { re, im: T::zero() }
    }

    pub fn is_real(&self) -> bool {
        self.im.is_zero()
    }

    /// Modulus, computed without overflow for widely scaled parts.
    pub fn abs(&self) -> T {
        let (a, b) = (self.re.abs(), self.im.abs());
        let (big, small) = if a >= b { (a, b) } else { (b, a) };
        if big.is_zero() {
            return T::zero();
        }
        let r = small / big;
        big * (T::one() + r * r).sqrt()
    }

    pub fn conj(&self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    pub fn to_f64_pair(&self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }

    /// Convert through `f64` to another scalar type.
    pub fn convert<U: Real>(&self) -> Complex<U> {
        Complex { re: U::from_f64(self.re.to_f64()), im: U::from_f64(self.im.to_f64()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_arith::types::Posit16;

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex::new(3.0f64, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj().im, 4.0);
        assert!(Complex::real(2.0f64).is_real());
        let w: Complex<Posit16> = z.convert();
        assert_eq!(w.abs().to_f64(), 5.0);
    }

    #[test]
    fn modulus_avoids_overflow() {
        let z = Complex::new(Posit16::from_f64(1e6), Posit16::from_f64(1e6));
        // Naive re^2 + im^2 would saturate badly; the scaled form is close.
        let m = z.abs().to_f64();
        assert!((m / 1.4142e6 - 1.0).abs() < 1e-2);
    }
}
