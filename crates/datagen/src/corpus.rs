//! Corpus assembly: the synthetic equivalents of the paper's two datasets.
//!
//! * [`general_corpus`] — symmetric "general matrices" (SuiteSparse
//!   substitute), filtered to at most `max_nnz` non-zeros exactly like the
//!   paper's ≤ 20 000 rule.
//! * [`graph_corpus`] — graphs organized in the Network Repository's 31
//!   categories and aggregated into the paper's four classes (Table 1); each
//!   graph is stored as its adjacency matrix and converted to a symmetric
//!   normalized Laplacian by [`graph_laplacian_corpus`].

use lpa_sparse::{normalized_laplacian, CsrMatrix};

use crate::general;
use crate::graphs;
use crate::testmatrix::{GraphClass, Source, TestMatrix};

/// Configuration of the synthetic corpora.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Base RNG seed; every matrix derives its own seed from it.
    pub seed: u64,
    /// Scale factor applied to the number of matrices per family/category.
    pub scale: usize,
    /// Matrix dimension range (min, max).
    pub size_range: (usize, usize),
    /// Largest admissible number of stored non-zeros (the paper uses 20 000).
    pub max_nnz: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { seed: 0x5EED, scale: 1, size_range: (48, 128), max_nnz: 20_000 }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and quick benchmark runs.
    pub fn tiny() -> Self {
        CorpusConfig { seed: 7, scale: 1, size_range: (36, 60), max_nnz: 20_000 }
    }

    fn size(&self, index: usize, total: usize) -> usize {
        let (lo, hi) = self.size_range;
        if total <= 1 {
            return lo;
        }
        lo + (hi - lo) * index / (total - 1)
    }
}

/// The Network Repository's 31 categories with the class each one is
/// aggregated into (Table 1 of the paper) and the number of graphs generated
/// per unit of `scale`.  Categories that are empty in the paper (because of
/// its 500 kB size cap) stay empty here.
pub const GRAPH_CATEGORIES: &[(&str, GraphClass, usize)] = &[
    ("bio", GraphClass::Biological, 2),
    ("eco", GraphClass::Biological, 1),
    ("protein", GraphClass::Biological, 5),
    ("bn", GraphClass::Biological, 1),
    ("inf", GraphClass::Infrastructure, 1),
    ("massive", GraphClass::Infrastructure, 0),
    ("power", GraphClass::Infrastructure, 2),
    ("road", GraphClass::Infrastructure, 2),
    ("tech", GraphClass::Infrastructure, 1),
    ("web", GraphClass::Infrastructure, 2),
    ("ca", GraphClass::Social, 1),
    ("cit", GraphClass::Social, 1),
    ("dynamic", GraphClass::Social, 2),
    ("econ", GraphClass::Social, 1),
    ("email", GraphClass::Social, 1),
    ("ia", GraphClass::Social, 1),
    ("proximity", GraphClass::Social, 1),
    ("rec", GraphClass::Social, 1),
    ("retweet_graphs", GraphClass::Social, 2),
    ("rt", GraphClass::Social, 2),
    ("soc", GraphClass::Social, 2),
    ("socfb", GraphClass::Social, 2),
    ("tscc", GraphClass::Social, 1),
    ("dimacs", GraphClass::Miscellaneous, 2),
    ("dimacs10", GraphClass::Miscellaneous, 1),
    ("graph500", GraphClass::Miscellaneous, 0),
    ("heter", GraphClass::Miscellaneous, 0),
    ("labeled", GraphClass::Miscellaneous, 2),
    ("misc", GraphClass::Miscellaneous, 5),
    ("rand", GraphClass::Miscellaneous, 3),
    ("sc", GraphClass::Miscellaneous, 0),
];

fn mix_seed(base: u64, tag: &str, k: usize) -> u64 {
    let mut h = base ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15);
    for b in tag.bytes() {
        h = h.rotate_left(7) ^ (b as u64);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Generate one adjacency matrix for a given category.
fn graph_for_category(category: &str, n: usize, seed: u64) -> CsrMatrix<f64> {
    match category {
        "bio" | "bn" => graphs::stochastic_block_model(n, 5, 0.35, 0.02, seed),
        "eco" => graphs::bipartite(n / 2, n - n / 2, 0.15, seed),
        "protein" => graphs::protein_like(n, seed),
        "inf" | "power" => graphs::ring_with_chords(n, n / 6, seed),
        "road" => graphs::grid_2d((n as f64).sqrt() as usize + 1, (n as f64).sqrt() as usize, 3, seed),
        "tech" | "web" => graphs::barabasi_albert(n, 2, seed),
        "ca" | "cit" => graphs::barabasi_albert(n, 3, seed),
        "dynamic" | "ia" | "proximity" => graphs::watts_strogatz(n, 3, 0.2, seed),
        "econ" | "rec" => graphs::bipartite(n / 3, n - n / 3, 0.12, seed),
        "email" | "soc" | "socfb" | "tscc" => graphs::stochastic_block_model(n, 4, 0.3, 0.03, seed),
        "retweet_graphs" | "rt" => graphs::hub_and_spokes(n, 1 + n / 40, seed),
        "dimacs" | "dimacs10" | "labeled" => graphs::erdos_renyi(n, 0.12, seed),
        "misc" => match seed % 4 {
            0 => graphs::erdos_renyi(n, 0.08, seed),
            1 => graphs::watts_strogatz(n, 2, 0.4, seed),
            2 => graphs::barabasi_albert(n, 2, seed),
            _ => graphs::grid_2d(n / 8 + 2, 8, 6, seed),
        },
        "rand" => graphs::erdos_renyi(n, 0.15, seed),
        _ => graphs::erdos_renyi(n, 0.1, seed),
    }
}

/// Synthetic graph corpus: adjacency matrices grouped by category and class.
pub fn graph_corpus(cfg: &CorpusConfig) -> Vec<TestMatrix> {
    let mut out = Vec::new();
    for &(category, class, per_scale) in GRAPH_CATEGORIES {
        let count = per_scale * cfg.scale;
        for k in 0..count {
            let n = cfg.size(k, count.max(2));
            let seed = mix_seed(cfg.seed, category, k);
            let adjacency = graph_for_category(category, n, seed);
            if adjacency.nnz() == 0 || adjacency.nnz() > cfg.max_nnz {
                continue;
            }
            out.push(TestMatrix::new(
                format!("{category}/{category}-{k:03}"),
                category,
                Source::Graph(class),
                adjacency,
            ));
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// The graph corpus with every adjacency matrix replaced by its symmetric
/// normalized Laplacian (the input the eigenvalue experiments actually use).
pub fn graph_laplacian_corpus(cfg: &CorpusConfig) -> Vec<TestMatrix> {
    graph_corpus(cfg)
        .into_iter()
        .map(|tm| {
            let lap = normalized_laplacian(&tm.matrix.symmetrize());
            TestMatrix::new(tm.name.clone(), tm.category.clone(), tm.source, lap)
        })
        .collect()
}

/// One generator family: label, `(size, seed) -> matrix` builder, and the
/// number of size variants drawn from it per scale unit.
type MatrixFamily = (&'static str, fn(usize, u64) -> CsrMatrix<f64>, usize);

/// Synthetic general-matrix corpus (SuiteSparse substitute).
pub fn general_corpus(cfg: &CorpusConfig) -> Vec<TestMatrix> {
    let families: &[MatrixFamily] = &[
        ("lap1d", |n, _s| general::laplacian_1d(n, 1.0), 2),
        ("lap1d-scaled", |n, _s| general::laplacian_1d(n, 1.0e4), 1),
        ("lap2d", |n, _s| general::laplacian_2d(n / 8 + 2, 8, 1.0), 2),
        ("toeplitz", |n, _s| general::banded_toeplitz(n, &[4.0, -2.0, 1.0, -0.5]), 2),
        ("randsym", |n, s| general::random_sparse_symmetric(n, 0.1, 0.0, s), 3),
        ("randsym-shifted", |n, s| general::random_sparse_symmetric(n, 0.1, 4.0, s), 2),
        ("diagdom", |n, s| general::diagonally_dominant(n, 0.15, s), 2),
        ("widerange-mild", |n, s| general::wide_dynamic_range(n, 3.0, s), 2),
        ("widerange-extreme", |n, s| general::wide_dynamic_range(n, 9.0, s), 2),
        ("spring", |n, s| general::spring_chain(n, 3.0, s), 2),
        ("spring-stiff", |n, s| general::spring_chain(n, 6.0, s), 1),
    ];
    let mut out = Vec::new();
    for &(family, gen, per_scale) in families {
        let count = per_scale * cfg.scale;
        for k in 0..count {
            let n = cfg.size(k, count.max(2));
            let seed = mix_seed(cfg.seed ^ 0xABCD, family, k);
            let m = gen(n, seed);
            if m.nnz() == 0 || m.nnz() > cfg.max_nnz {
                continue;
            }
            debug_assert!(m.is_symmetric(0.0));
            out.push(TestMatrix::new(format!("{family}-{k:03}"), family, Source::General, m));
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Per-category counts of the graph corpus, the data behind the Table 1
/// reproduction.
pub fn category_counts(corpus: &[TestMatrix]) -> Vec<(String, GraphClass, usize)> {
    GRAPH_CATEGORIES
        .iter()
        .map(|&(cat, class, _)| {
            let count = corpus.iter().filter(|t| t.category == cat).count();
            (cat.to_string(), class, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_corpus_is_deterministic_and_classified() {
        let cfg = CorpusConfig::tiny();
        let a = graph_corpus(&cfg);
        let b = graph_corpus(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
        // Every populated class is present.
        for class in GraphClass::all() {
            assert!(a.iter().any(|t| t.class() == Some(class)), "missing class {class:?}");
        }
    }

    #[test]
    fn laplacian_corpus_has_unit_diagonals_and_bounded_entries() {
        let cfg = CorpusConfig::tiny();
        let laps = graph_laplacian_corpus(&cfg);
        assert_eq!(laps.len(), graph_corpus(&cfg).len());
        for t in laps.iter().take(8) {
            assert!(t.matrix.is_symmetric(1e-12), "{}", t.name);
            assert!(t.matrix.max_abs() <= 1.0 + 1e-12, "{}", t.name);
        }
    }

    #[test]
    fn general_corpus_respects_nnz_cap_and_symmetry() {
        let cfg = CorpusConfig::tiny();
        let gen = general_corpus(&cfg);
        assert!(gen.len() >= 15);
        for t in &gen {
            assert!(t.nnz() <= cfg.max_nnz);
            assert!(t.matrix.is_symmetric(0.0), "{}", t.name);
            assert_eq!(t.class(), None);
        }
        // The wide-range family must actually span many decades.
        let wide = gen.iter().find(|t| t.category == "widerange-extreme").unwrap();
        let ratio = wide.matrix.max_abs() / wide.matrix.min_abs_nonzero().unwrap();
        assert!(ratio > 1e12);
    }

    #[test]
    fn category_counts_reflect_table_structure() {
        let cfg = CorpusConfig::tiny();
        let corpus = graph_corpus(&cfg);
        let counts = category_counts(&corpus);
        assert_eq!(counts.len(), 31);
        // Categories that are empty in the paper stay empty here.
        for empty in ["massive", "graph500", "heter", "sc"] {
            let (_, _, c) = counts.iter().find(|(n, _, _)| n == empty).unwrap();
            assert_eq!(*c, 0);
        }
        // The four classes all have at least one populated category.
        for class in GraphClass::all() {
            assert!(counts.iter().any(|(_, cl, c)| *cl == class && *c > 0));
        }
    }

    #[test]
    fn scale_increases_corpus_size() {
        let small = graph_corpus(&CorpusConfig { scale: 1, ..CorpusConfig::tiny() });
        let large = graph_corpus(&CorpusConfig { scale: 2, ..CorpusConfig::tiny() });
        assert!(large.len() > small.len());
    }
}
