//! Synthetic "general matrices": the stand-in for the paper's 302 symmetric
//! SuiteSparse matrices with at most 20 000 non-zeros (DESIGN.md, S2).
//!
//! The collection mixes discretized Laplacians, banded Toeplitz operators,
//! random sparse symmetric matrices with controlled conditioning,
//! mass/stiffness-like matrices and matrices whose entries span many orders
//! of magnitude.  The wide-range families are what triggers the paper's `∞σ`
//! outcomes for the 8-bit IEEE formats and `float16`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lpa_sparse::{CooMatrix, CsrMatrix};

/// 1D Poisson / path-graph Laplacian (tridiagonal −1, 2, −1), optionally
/// scaled by `h^-2` to mimic a discretization step.
pub fn laplacian_1d(n: usize, scale: f64) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0 * scale);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -scale);
        }
    }
    coo.to_csr()
}

/// 2D five-point Laplacian on a `rows x cols` grid.
pub fn laplacian_2d(rows: usize, cols: usize, scale: f64) -> CsrMatrix<f64> {
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, 5 * n);
    for r in 0..rows {
        for c in 0..cols {
            coo.push(idx(r, c), idx(r, c), 4.0 * scale);
            if c + 1 < cols {
                coo.push_sym(idx(r, c), idx(r, c + 1), -scale);
            }
            if r + 1 < rows {
                coo.push_sym(idx(r, c), idx(r + 1, c), -scale);
            }
        }
    }
    coo.to_csr()
}

/// Symmetric banded Toeplitz matrix with the given band values
/// (`bands[0]` is the diagonal).
pub fn banded_toeplitz(n: usize, bands: &[f64]) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, n * (2 * bands.len() - 1));
    for i in 0..n {
        coo.push(i, i, bands[0]);
        for (d, &v) in bands.iter().enumerate().skip(1) {
            if v != 0.0 && i + d < n {
                coo.push_sym(i, i + d, v);
            }
        }
    }
    coo.to_csr()
}

/// Random sparse symmetric matrix with ~`density` fraction of non-zeros and
/// entries uniform in [-1, 1], plus a diagonal shift making it comfortably
/// indefinite or definite depending on `shift`.
pub fn random_sparse_symmetric(n: usize, density: f64, shift: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        coo.push(i, i, rng.gen_range(-1.0..1.0) + shift);
        for j in i + 1..n {
            if rng.gen::<f64>() < density {
                coo.push_sym(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    coo.to_csr()
}

/// Diagonally dominant symmetric matrix (well conditioned).
pub fn diagonally_dominant(n: usize, density: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen::<f64>() < density {
                let v = rng.gen_range(-1.0..1.0);
                rows[i].push((j, v));
                rows[j].push((i, v));
            }
        }
    }
    let mut coo = CooMatrix::<f64>::new(n, n);
    for (i, row) in rows.iter().enumerate() {
        let offsum: f64 = row.iter().map(|(_, v)| v.abs()).sum();
        coo.push(i, i, offsum + 1.0);
        for &(j, v) in row {
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Symmetric matrix whose diagonal spans `10^-range_decades .. 10^+range_decades`
/// (geometrically), with a weak tridiagonal coupling.  These matrices exceed
/// the dynamic range of OFP8/float16 well before the tapered formats give up.
pub fn wide_dynamic_range(n: usize, range_decades: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        let t = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.5 };
        let exponent = -range_decades + 2.0 * range_decades * t;
        let d = 10f64.powf(exponent) * rng.gen_range(0.5..1.5);
        coo.push(i, i, d);
        if i + 1 < n {
            coo.push_sym(i, i + 1, d * 0.1);
        }
    }
    coo.to_csr()
}

/// Mass-spring chain stiffness matrix with randomly varying spring constants
/// (structural-engineering flavour).
pub fn spring_chain(n: usize, stiffness_spread: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k: Vec<f64> = (0..=n).map(|_| 10f64.powf(rng.gen_range(0.0..stiffness_spread))).collect();
    let mut coo = CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        coo.push(i, i, k[i] + k[i + 1]);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -k[i + 1]);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacians_are_symmetric_psd() {
        for m in [laplacian_1d(25, 1.0), laplacian_2d(5, 6, 2.0)] {
            assert!(m.is_symmetric(0.0));
            let eigs = lpa_dense::eigen_sym::symmetric_eigenvalues(&m.to_dense()).unwrap();
            for e in eigs {
                assert!(e > -1e-10);
            }
        }
    }

    #[test]
    fn diagonally_dominant_is_positive_definite() {
        let m = diagonally_dominant(30, 0.2, 5);
        assert!(m.is_symmetric(0.0));
        let eigs = lpa_dense::eigen_sym::symmetric_eigenvalues(&m.to_dense()).unwrap();
        for e in eigs {
            assert!(e > 0.0);
        }
    }

    #[test]
    fn wide_range_matrices_span_many_decades() {
        let m = wide_dynamic_range(40, 6.0, 7);
        assert!(m.is_symmetric(0.0));
        let max = m.max_abs();
        let min = m.min_abs_nonzero().unwrap();
        assert!(max / min > 1e9, "range {max}/{min}");
    }

    #[test]
    fn generators_are_deterministic_and_symmetric() {
        let a = random_sparse_symmetric(35, 0.15, 2.0, 42);
        let b = random_sparse_symmetric(35, 0.15, 2.0, 42);
        assert_eq!(a, b);
        assert!(a.is_symmetric(0.0));
        let s = spring_chain(20, 3.0, 1);
        assert!(s.is_symmetric(0.0));
        let t = banded_toeplitz(15, &[2.0, -1.0, 0.5]);
        assert!(t.is_symmetric(0.0));
        assert_eq!(t.get(0, 2), 0.5);
    }
}
