//! # lpa-datagen — synthetic test-matrix corpora
//!
//! The paper evaluates the implicitly restarted Arnoldi method on two
//! datasets scraped from the web: 302 symmetric SuiteSparse matrices and
//! 3 302 Network Repository graphs (31 categories aggregated into 4 classes,
//! Table 1).  Neither dataset can be redistributed or downloaded here, so
//! this crate generates deterministic synthetic corpora that exercise the
//! identical code path — symmetric sparse matrices of comparable size,
//! sparsity, spectral character and (for the general matrices) dynamic
//! range.  See DESIGN.md, substitution S2, for the rationale.
//!
//! * [`general`] / [`corpus::general_corpus`] — the SuiteSparse substitute,
//! * [`graphs`] / [`corpus::graph_corpus`] — the Network Repository
//!   substitute, organized in the original 31 categories,
//! * [`corpus::graph_laplacian_corpus`] — the same graphs as symmetric
//!   normalized Laplacians (the experiments' actual input),
//! * [`testmatrix::TestMatrix`] — matrix plus provenance metadata.

pub mod corpus;
pub mod general;
pub mod graphs;
pub mod testmatrix;

pub use corpus::{
    category_counts, general_corpus, graph_corpus, graph_laplacian_corpus, CorpusConfig,
    GRAPH_CATEGORIES,
};
pub use testmatrix::{GraphClass, Source, TestMatrix};
