//! The `TestMatrix` wrapper: a named matrix with provenance metadata,
//! mirroring MuFoLAB's `TestMatrices.jl`.

use lpa_sparse::CsrMatrix;

/// The four aggregated graph classes of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphClass {
    Biological,
    Infrastructure,
    Social,
    Miscellaneous,
}

impl GraphClass {
    pub fn name(&self) -> &'static str {
        match self {
            GraphClass::Biological => "biological",
            GraphClass::Infrastructure => "infrastructure",
            GraphClass::Social => "social",
            GraphClass::Miscellaneous => "miscellaneous",
        }
    }

    pub fn all() -> [GraphClass; 4] {
        [
            GraphClass::Biological,
            GraphClass::Infrastructure,
            GraphClass::Social,
            GraphClass::Miscellaneous,
        ]
    }
}

/// Where a test matrix came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The synthetic stand-in for the SuiteSparse general matrices.
    General,
    /// The synthetic stand-in for a Network Repository graph Laplacian.
    Graph(GraphClass),
}

/// A named symmetric test matrix.
#[derive(Clone, Debug)]
pub struct TestMatrix {
    /// Unique name ("power/grid-042", "lap2d-16", …).
    pub name: String,
    /// Original (fine-grained) category, e.g. "protein", "road", "rt".
    pub category: String,
    /// Provenance.
    pub source: Source,
    /// The symmetric matrix itself, stored in `f64`.
    pub matrix: CsrMatrix<f64>,
}

impl TestMatrix {
    pub fn new(
        name: impl Into<String>,
        category: impl Into<String>,
        source: Source,
        matrix: CsrMatrix<f64>,
    ) -> Self {
        TestMatrix { name: name.into(), category: category.into(), source, matrix }
    }

    pub fn n(&self) -> usize {
        self.matrix.nrows()
    }

    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    pub fn class(&self) -> Option<GraphClass> {
        match self.source {
            Source::General => None,
            Source::Graph(c) => Some(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_accessors() {
        let m = CsrMatrix::<f64>::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let t = TestMatrix::new("t", "rand", Source::Graph(GraphClass::Miscellaneous), m);
        assert_eq!(t.n(), 3);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.class(), Some(GraphClass::Miscellaneous));
        assert_eq!(GraphClass::Miscellaneous.name(), "miscellaneous");
        assert_eq!(GraphClass::all().len(), 4);
    }
}
