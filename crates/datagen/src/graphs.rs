//! Random graph generators used to synthesize the Network Repository
//! substitute corpus (DESIGN.md, substitution S2).
//!
//! Every generator returns a symmetric, unweighted adjacency matrix in `f64`
//! (the downstream pipeline symmetrizes again and builds the normalized
//! Laplacian, exactly as the paper's preprocessing does for the real data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lpa_sparse::{CooMatrix, CsrMatrix};

fn adjacency_from_edges(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, edges.len() * 2);
    for &(a, b) in edges {
        if a == b {
            continue;
        }
        coo.push_sym(a, b, 1.0);
    }
    // Duplicate edges accumulate; clamp back to a 0/1 adjacency matrix.
    let csr = coo.to_csr();
    let triplets: Vec<(usize, usize, f64)> =
        csr.iter().map(|(i, j, v)| (i, j, if v > 0.0 { 1.0 } else { 0.0 })).collect();
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Erdős–Rényi G(n, p).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen::<f64>() < p {
                edges.push((i, j));
            }
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment with `m` edges per new vertex.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m.max(1).min(n.saturating_sub(1)).max(1);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-endpoint list for preferential attachment.
    let mut targets: Vec<usize> = Vec::new();
    // Start from a small clique of m + 1 vertices.
    for i in 0..=m {
        for j in 0..i {
            edges.push((i, j));
            targets.push(i);
            targets.push(j);
        }
    }
    for v in m + 1..n {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            let t = if targets.is_empty() { rng.gen_range(0..v) } else { targets[rng.gen_range(0..targets.len())] };
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbours per
/// side and rewiring probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.max(1);
    let mut edges = Vec::new();
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a random vertex.
                let mut t = rng.gen_range(0..n);
                if t == i {
                    t = (t + 1) % n;
                }
                edges.push((i, t));
            } else {
                edges.push((i, j));
            }
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Stochastic block model with equally sized communities.
pub fn stochastic_block_model(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let communities = communities.max(1);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let same = (i * communities / n.max(1)) == (j * communities / n.max(1));
            let p = if same { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                edges.push((i, j));
            }
        }
    }
    adjacency_from_edges(n, &edges)
}

/// 2D grid graph (road-network-like) with optional random perturbation edges.
pub fn grid_2d(rows: usize, cols: usize, extra_edges: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b));
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Ring with random chords (power-grid-like topology).
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..chords {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b));
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Star-like graph (retweet cascades): a few hubs with many leaves.
pub fn hub_and_spokes(n: usize, hubs: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs = hubs.clamp(1, n.max(1));
    let mut edges = Vec::new();
    for v in hubs..n {
        edges.push((v, rng.gen_range(0..hubs)));
    }
    // Connect the hubs in a path so the graph is connected.
    for h in 1..hubs {
        edges.push((h - 1, h));
    }
    adjacency_from_edges(n, &edges)
}

/// Random bipartite graph folded into a square adjacency matrix
/// (recommendation / rating style data).
pub fn bipartite(left: usize, right: usize, p: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = left + right;
    let mut edges = Vec::new();
    for i in 0..left {
        for j in 0..right {
            if rng.gen::<f64>() < p {
                edges.push((i, left + j));
            }
        }
    }
    adjacency_from_edges(n, &edges)
}

/// Protein-interaction-like graph: small dense modules sparsely linked, plus
/// a handful of high-degree hub proteins.
pub fn protein_like(n: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let module_size = 8.max(n / 12);
    let mut edges = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + module_size).min(n);
        for i in start..end {
            for j in i + 1..end {
                if rng.gen::<f64>() < 0.45 {
                    edges.push((i, j));
                }
            }
        }
        if end < n {
            edges.push((end - 1, end)); // link to the next module
        }
        start = end;
    }
    // Hubs.
    let hubs = (n / 20).max(1);
    for h in 0..hubs {
        let hub = rng.gen_range(0..n);
        for _ in 0..(n / 5) {
            let t = rng.gen_range(0..n);
            if t != hub {
                edges.push((hub, t));
            }
        }
        let _ = h;
    }
    adjacency_from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_symmetric_unweighted(a: &CsrMatrix<f64>) {
        assert!(a.is_symmetric(0.0));
        for (_, _, v) in a.iter() {
            assert!(v == 0.0 || v == 1.0);
        }
        for i in 0..a.nrows() {
            assert_eq!(a.get(i, i), 0.0, "self loop at {i}");
        }
    }

    #[test]
    fn generators_produce_symmetric_adjacency() {
        check_symmetric_unweighted(&erdos_renyi(40, 0.1, 1));
        check_symmetric_unweighted(&barabasi_albert(50, 3, 2));
        check_symmetric_unweighted(&watts_strogatz(45, 2, 0.2, 3));
        check_symmetric_unweighted(&stochastic_block_model(48, 4, 0.4, 0.02, 4));
        check_symmetric_unweighted(&grid_2d(6, 7, 5, 5));
        check_symmetric_unweighted(&ring_with_chords(40, 8, 6));
        check_symmetric_unweighted(&hub_and_spokes(40, 3, 7));
        check_symmetric_unweighted(&bipartite(20, 25, 0.1, 8));
        check_symmetric_unweighted(&protein_like(60, 9));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = barabasi_albert(30, 2, 77);
        let b = barabasi_albert(30, 2, 77);
        assert_eq!(a, b);
        let c = barabasi_albert(30, 2, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn expected_edge_counts_are_reasonable() {
        let n = 60;
        let er = erdos_renyi(n, 0.2, 11);
        // ~ p * n(n-1)/2 undirected edges -> twice that many stored entries.
        let expected = 0.2 * (n * (n - 1) / 2) as f64 * 2.0;
        assert!((er.nnz() as f64) > expected * 0.5 && (er.nnz() as f64) < expected * 1.5);
        let ba = barabasi_albert(n, 3, 12);
        assert!(ba.nnz() >= 2 * 3 * (n - 4));
        let grid = grid_2d(8, 8, 0, 0);
        assert_eq!(grid.nnz(), 2 * (2 * 8 * 7));
    }

    #[test]
    fn hub_graph_has_high_degree_vertices() {
        let a = hub_and_spokes(100, 2, 3);
        let degrees = a.row_sums();
        let max_deg = degrees.iter().cloned().fold(0.0, f64::max);
        assert!(max_deg > 20.0);
    }
}
