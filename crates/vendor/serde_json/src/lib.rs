//! Offline stand-in for `serde_json`: renders the vendored `serde` crate's
//! [`Value`] tree to JSON text and parses it back.
//!
//! Output is deterministic (object keys keep insertion order) and numbers
//! round-trip exactly: floats are printed with Rust's shortest-round-trip
//! `{:?}` formatting, integers without a fractional part.  Non-finite floats
//! serialize as `null`, as upstream serde_json does.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to an indented JSON string (2-space indents).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == 0.0 && x.is_sign_negative() {
        // The integer branch would erase the sign of -0.0 (upstream
        // serde_json emits it, and exact round-trips are promised here).
        out.push_str("-0.0");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x:?}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_num(*x, out),
        // Digit-exact: `write_num` rounds through f64 and loses integer
        // precision above 2^53, which u64 counters can exceed.
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        for _ in 0..d {
            out.push_str("  ");
        }
    };
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            pad(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            pad(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.parse_value()?);
                        if !self.eat(b',') {
                            self.expect(b']')?;
                            break;
                        }
                    }
                }
                Ok(Value::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if !self.eat(b'}') {
                    loop {
                        self.skip_ws();
                        let key = self.parse_string()?;
                        self.expect(b':')?;
                        entries.push((key, self.parse_value()?));
                        if !self.eat(b',') {
                            self.expect(b'}')?;
                            break;
                        }
                    }
                }
                Ok(Value::Map(entries))
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            other => Err(Error::msg(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::msg(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            // Strings were produced from valid UTF-8; scan bytewise and
            // re-validate multi-byte runs in one chunk.
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), Some(b'"') | Some(b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::msg(format!("bad escape {other:?}"))),
                    }
                }
                None => return Err(Error::msg("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = vec![(1usize, "a\"b\\c\n".to_string()), (2, "π".to_string())];
        let s = to_string(&v).unwrap();
        let back: Vec<(usize, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let x = vec![1.5f64, -0.125, 1e300, 1.0 / 3.0, f64::NAN];
        let s = to_string(&x).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back[..4], x[..4]);
        assert!(back[4].is_nan());

        let s = to_string_pretty(&x).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back[..4], x[..4]);
    }

    #[test]
    fn negative_zero_round_trips() {
        let s = to_string(&-0.0f64).unwrap();
        assert_eq!(s, "-0.0");
        let back: f64 = from_str(&s).unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
        assert_eq!(to_string(&0.0f64).unwrap(), "0");
    }

    #[test]
    fn uint_values_render_digit_exact() {
        use serde::Value;
        // 2^53 + 1 is the first integer f64 cannot represent; u64::MAX is
        // the saturation edge. Both must print every digit.
        let v = Value::Seq(vec![
            Value::UInt(9_007_199_254_740_993),
            Value::UInt(u64::MAX),
            Value::UInt(0),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[9007199254740993,18446744073709551615,0]");
        // And the pretty writer agrees.
        assert!(to_string_pretty(&v).unwrap().contains("18446744073709551615"));
        // Round trip through the parser recovers the exact integer (the
        // parser produces Num; 2^53+1 exceeds what Num can hold exactly,
        // so exactness is asserted via the typed u64 path at the edge
        // where f64 is still exact).
        let back: Vec<u64> = from_str(&to_string(&vec![u64::MAX >> 11]).unwrap()).unwrap();
        assert_eq!(back, vec![u64::MAX >> 11]);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Vec<u32>> = from_str(" [ [1, 2] , [ ] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("[").is_err());
    }
}
