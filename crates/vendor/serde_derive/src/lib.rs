//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input at the token level (no `syn`/`quote`, which are
//! unavailable offline) and supports exactly the shapes this workspace
//! derives on: structs with named fields, and enums whose variants are unit
//! or carry a single unnamed payload.  Generated impls target the vendored
//! value-tree `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, bool)> },
}

/// Skip one attribute (`#` followed by a bracket group) if present.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    // Skip visibility (`pub`, optionally `pub(...)`).
    while let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            break;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    // Generic parameters are not supported by this stub.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type {name} is not supported");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive stub: no braced body on {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct { name, fields: parse_struct_fields(body) },
        "enum" => Shape::Enum { name, variants: parse_enum_variants(body) },
        other => panic!("serde_derive stub: cannot derive on `{other}` items"),
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after {field}, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        i += 1;
        let mut payload = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    payload = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive stub: struct-like variant {variant} is not supported")
                }
                _ => {}
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive stub: expected `,` after {variant}, got {other:?}"),
        }
        variants.push((variant, payload));
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(payload) => serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), serde::Serialize::to_value(payload))]),"
                        )
                    } else {
                        format!("{name}::{v} => serde::Value::Str(::std::string::String::from(\"{v}\")),")
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive stub: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| serde::Error::msg(\"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value(payload)?)),"
                    )
                })
                .collect();
            let str_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                         match s {{ {unit_arms} _ => {{}} }}\n\
                     }}\n"
                )
            };
            let map_block = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some(m) = v.as_map() {{\n\
                         if m.len() == 1 {{\n\
                             let (key, payload) = &m[0];\n\
                             match key.as_str() {{ {payload_arms} _ => {{}} }}\n\
                         }}\n\
                     }}\n"
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         {str_block}\
                         {map_block}\
                         ::std::result::Result::Err(serde::Error::msg(format!(\"unrecognized {name} value: {{v:?}}\")))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive stub: generated Deserialize impl must parse")
}
