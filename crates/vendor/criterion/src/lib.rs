//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the micro-benchmarks use:
//! [`Criterion`] with `sample_size` / `measurement_time` / `warm_up_time` /
//! `bench_function`, a [`Bencher`] with `iter`, the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! Measurement model: after a warm-up phase that also calibrates the
//! per-sample iteration count, each sample times a fixed batch of
//! iterations; the reported figure is the median ns/iteration across
//! samples (robust to scheduler noise, like criterion's own estimate).
//! Results are printed and also recorded in a process-global registry that
//! [`take_results`] drains, which the benchmark summary step uses to emit
//! machine-readable JSON.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub median_ns_per_iter: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain every result recorded so far (used by summary/reporting steps).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results registry poisoned"))
}

/// Benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            calibrated_iters: 0,
            sample_ns: Vec::new(),
            phase: Phase::Calibrate,
            samples_wanted: self.sample_size,
            measurement_time: self.measurement_time,
        };
        // Warm-up + calibration pass, then the measurement pass.
        f(&mut b);
        b.phase = Phase::Measure;
        f(&mut b);
        let mut ns = b.sample_ns.clone();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if ns.is_empty() { f64::NAN } else { ns[ns.len() / 2] };
        println!(
            "bench {name:<44} median {median:>12.1} ns/iter ({} samples x {} iters)",
            ns.len(),
            b.calibrated_iters.max(1)
        );
        RESULTS.lock().expect("results registry poisoned").push(BenchResult {
            name: name.to_string(),
            median_ns_per_iter: median,
            samples: ns.len(),
            iters_per_sample: b.calibrated_iters.max(1),
        });
        self
    }
}

#[derive(PartialEq)]
enum Phase {
    Calibrate,
    Measure,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    warm_up: Duration,
    calibrated_iters: u64,
    sample_ns: Vec<f64>,
    phase: Phase,
    samples_wanted: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.phase {
            Phase::Calibrate => {
                let start = Instant::now();
                let mut iters: u64 = 0;
                while start.elapsed() < self.warm_up {
                    black_box(f());
                    iters += 1;
                }
                self.calibrated_iters =
                    (iters.max(1) * self.measurement_time.as_nanos().max(1) as u64
                        / self.warm_up.as_nanos().max(1) as u64
                        / self.samples_wanted.max(1) as u64)
                        .max(1);
            }
            Phase::Measure => {
                self.sample_ns.clear();
                for _ in 0..self.samples_wanted {
                    let start = Instant::now();
                    for _ in 0..self.calibrated_iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed().as_nanos() as f64;
                    self.sample_ns.push(elapsed / self.calibrated_iters as f64);
                }
            }
        }
    }
}

/// `criterion_group!` — both the struct-ish form with `name`/`config`/
/// `targets` and the plain list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let results = take_results();
        let r = results.iter().find(|r| r.name == "noop_sum").expect("result recorded");
        assert!(r.median_ns_per_iter > 0.0);
        assert_eq!(r.samples, 5);
    }
}
