//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` / `prop_assert_eq!`,
//! range and `any::<T>()` strategies, and the `prop::num::f64` class
//! strategies combined with `|`.
//!
//! Unlike upstream proptest there is no shrinking: failures report the
//! generated inputs (via the macro's Debug formatting) and the fixed seed
//! makes every run reproducible.

/// Deterministic xoshiro256** generator used for case generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    /// A test-case failure that aborts the current case (after `?` or a
    /// `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Upstream-compatible constructor name.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value: core::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + core::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prop {
    pub mod num {
        pub mod f64 {
            //! Float-class strategies combinable with `|`, mirroring
            //! `proptest::num::f64`'s bit-flag strategies.

            use crate::{Strategy, TestRng};

            #[derive(Clone, Copy, Debug)]
            pub struct FloatClasses(pub u32);

            pub const ZERO: FloatClasses = FloatClasses(1);
            pub const SUBNORMAL: FloatClasses = FloatClasses(2);
            pub const NORMAL: FloatClasses = FloatClasses(4);
            pub const INFINITE: FloatClasses = FloatClasses(8);
            pub const QUIET_NAN: FloatClasses = FloatClasses(16);

            impl core::ops::BitOr for FloatClasses {
                type Output = FloatClasses;
                fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                    FloatClasses(self.0 | rhs.0)
                }
            }

            impl Strategy for FloatClasses {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    let classes: Vec<u32> = (0..5).filter(|b| self.0 & (1 << b) != 0).collect();
                    assert!(!classes.is_empty(), "empty float class set");
                    let pick = classes[(rng.next_u64() % classes.len() as u64) as usize];
                    let sign = rng.next_u64() & 1 == 1;
                    let sign_bit = (sign as u64) << 63;
                    match 1u32 << pick {
                        x if x == ZERO.0 => f64::from_bits(sign_bit),
                        x if x == SUBNORMAL.0 => {
                            let mantissa = rng.next_u64() % ((1 << 52) - 1) + 1;
                            f64::from_bits(sign_bit | mantissa)
                        }
                        x if x == NORMAL.0 => {
                            let exp = rng.next_u64() % 2046 + 1; // biased exponent 1..=2046
                            let mantissa = rng.next_u64() & ((1 << 52) - 1);
                            f64::from_bits(sign_bit | (exp << 52) | mantissa)
                        }
                        x if x == INFINITE.0 => {
                            if sign {
                                f64::NEG_INFINITY
                            } else {
                                f64::INFINITY
                            }
                        }
                        _ => f64::NAN,
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// The `proptest!` block macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Per-test deterministic seed derived from the test name.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = $crate::TestRng::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_range(x in -5.0f64..5.0, y in 0.0f64..1.0) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn any_generates_all_bits(a in any::<u16>(), b in any::<u32>()) {
            let widened = a as u64 + b as u64;
            prop_assert_eq!(widened, a as u64 + b as u64);
        }

        #[test]
        fn float_classes_generate_members(
            x in prop::num::f64::NORMAL | prop::num::f64::ZERO,
        ) {
            prop_assert!(x == 0.0 || x.is_normal());
        }
    }

    fn helper(ok: bool) -> Result<(), crate::test_runner::TestCaseError> {
        prop_assert!(ok, "helper told to fail");
        Ok(())
    }

    proptest! {
        #[test]
        fn question_mark_propagates(x in 0.0f64..1.0) {
            helper(x >= 0.0)?;
        }
    }
}
