//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides exactly the API surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen::<f64>()` and `Rng::gen_range` over
//! `f64` and `usize`/`u64` ranges.  The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic, high quality, and identical on every
//! platform, which is all the reproducibility the experiments need (the
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine: no test depends on upstream's exact stream).

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a type over its "natural" domain (`f64` in `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// A range that can produce a uniform sample (the subset of
/// `rand::distributions::uniform::SampleRange` this workspace needs).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u*width` can round up to exactly `end` when the ulp
        // spacing near `end` exceeds (1-u)*width; keep the range half-open.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the corpora draw from
                // small ranges, so the rejection loop almost never spins.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

/// The user-facing sampling methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded with SplitMix64 (the reference seeding scheme).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..1000 {
            let v = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = a.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn f64_range_stays_half_open_at_coarse_ulp() {
        // Near 1e16 the ulp spacing is 2.0, so `start + u*width` rounds up
        // to `end` for large u unless clamped.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1.0e16..1.0e16 + 2.0);
            assert!(v < 1.0e16 + 2.0, "sampled end of half-open range: {v}");
            assert!(v >= 1.0e16);
        }
    }
}
