//! Offline stand-in for `rayon`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides the slice of the rayon API the experiment
//! driver uses: `slice.par_iter().map(f).collect::<Vec<_>>()` with result
//! order matching input order.
//!
//! Execution model: `std::thread::scope` workers pull item indices from a
//! shared atomic counter (dynamic scheduling, since per-item cost varies by
//! orders of magnitude between an 8-bit LUT run and a double-double
//! reference solve) and stash `(index, result)` pairs locally; the caller
//! merges them back into input order, so results are deterministic
//! regardless of thread count.  `RAYON_NUM_THREADS` is honoured on every
//! call; `RAYON_NUM_THREADS=1` (or a single-item input) runs inline with no
//! threads at all, which the driver's determinism test exercises.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

thread_local! {
    /// Scoped thread-budget override installed by [`with_num_threads`];
    /// 0 means "no override". Thread-local because the thread count of a
    /// parallel call is decided on the calling thread, so two sessions
    /// running on different threads can hold different budgets.
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel call will use: a
/// [`with_num_threads`] override if one is active on this thread, else
/// `RAYON_NUM_THREADS`, else all available cores.
pub fn current_num_threads() -> usize {
    let forced = NUM_THREADS_OVERRIDE.with(Cell::get);
    if forced >= 1 {
        return forced;
    }
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Run `f` with every parallel call issued from this thread capped at `n`
/// workers (the stand-in for rayon's `ThreadPool::install`). `n = 0` clears
/// the override for the scope instead, restoring environment-based
/// selection. The previous override is restored even if `f` panics.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            NUM_THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(NUM_THREADS_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// `.par_iter()` — entry point mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f, _result: core::marker::PhantomData }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, R, F> {
    items: &'a [T],
    f: F,
    _result: core::marker::PhantomData<fn() -> R>,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, R, F> {
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_ordered_results(run_ordered(self.items, &self.f))
    }
}

/// Collection from an ordered result vector (mirrors
/// `rayon::iter::FromParallelIterator` for the shapes this workspace uses).
pub trait FromParallelIterator<R> {
    fn from_ordered_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_results(results: Vec<R>) -> Self {
        results
    }
}

fn run_ordered<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("rayon stub worker panicked"));
        }
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every index processed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_and_complete() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn with_num_threads_overrides_and_restores() {
        let ambient = crate::current_num_threads();
        let inside = crate::with_num_threads(3, crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), ambient, "override leaked out of scope");
        // Nested overrides stack; 0 clears for the inner scope.
        crate::with_num_threads(2, || {
            assert_eq!(crate::current_num_threads(), 2);
            crate::with_num_threads(0, || assert_eq!(crate::current_num_threads(), ambient));
            assert_eq!(crate::current_num_threads(), 2);
        });
        // The capped path still produces ordered, complete results.
        let input: Vec<usize> = (0..500).collect();
        let out: Vec<usize> = crate::with_num_threads(2, || input.par_iter().map(|&x| x + 1).collect());
        assert_eq!(out, (1..501).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_with_env_thread_cap() {
        let input: Vec<u64> = (0..257).collect();
        let parallel: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        let serial: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        assert_eq!(parallel, serial);
    }
}
