//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides the small serde surface the workspace uses:
//! `Serialize` / `Deserialize` traits (value-tree based rather than
//! visitor based), derive macros for plain structs and enums
//! (re-exported from the local `serde_derive`), and impls for the standard
//! types that appear in the experiment results.  `serde_json` (also
//! vendored) renders the [`Value`] tree to/from JSON text.
//!
//! Field order is preserved in [`Value::Map`], so serialization is
//! deterministic — which the experiment-driver determinism tests rely on.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    /// An exact unsigned integer. `Num` loses integer precision above
    /// 2^53; producers whose values are true u64 counters (e.g. the
    /// `lpa-obs` registry) use this variant and `serde_json` renders it
    /// digit-exact. The JSON *parser* still produces `Num` for every
    /// number, so parsed trees compare the way they always did.
    UInt(u64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            // Exact above 2^53 only through `as_u64`; this is the lossy view.
            Value::UInt(x) => Some(*x as f64),
            // Non-finite floats serialize as null (as serde_json does).
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an exact u64: `UInt` directly, or a `Num` that is a
    /// non-negative integer representable without loss.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Error type shared by serialization and deserialization.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else {
            // JSON has no NaN/Infinity literal; serde_json emits null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_num().ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

macro_rules! int_value {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(x) if x.fract() == 0.0 => Ok(*x as $t),
                    Value::UInt(x) => Ok(*x as $t),
                    other => Err(Error::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_value {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!("expected {}-tuple, got {} items", expected, seq.len())));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}

tuple_value! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, "x".to_string());
        assert_eq!(<(usize, String)>::from_value(&t.to_value()).unwrap(), t);
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn uint_preserves_u64_exactness() {
        // Above 2^53, the f64-backed Num view is lossy but the exact view
        // is not — and integer Deserialize accepts the variant.
        let v = Value::UInt(u64::MAX);
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
        assert_eq!(v.as_num(), Some(u64::MAX as f64), "lossy view stays available");
        // A small Num is promoted by as_u64; a fractional or huge one is not.
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(7.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1e300).as_u64(), None);
    }
}
