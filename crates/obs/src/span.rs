//! Tracing spans: RAII timers recording wall time + thread id into a
//! bounded ring buffer, plus always-cheap per-name aggregates.
//!
//! A [`Span`] is created with [`span`] and records on drop. The whole
//! machinery sits behind the crate's tri-state gate — when disarmed,
//! [`span`] is one relaxed atomic load and returns an inert guard; no
//! clock is read, no lock is taken. When armed, dropping the guard
//! appends a [`SpanRecord`] to a ring of [`RING_CAPACITY`] entries
//! (oldest entries are evicted, [`dropped`] counts them) and folds the
//! duration into a per-name [`SpanAggregate`] that also feeds the global
//! registry's `span.<name>.ns` histogram — so the run manifest's span
//! section is a registry view, not a parallel tally.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::registry::{global, Histogram};

/// Bounded capacity of the span ring buffer.
pub const RING_CAPACITY: usize = 4096;

/// One completed span occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (one of [`crate::SPANS`] in workspace code).
    pub name: &'static str,
    /// Wall-clock duration of the span.
    pub wall_ns: u64,
    /// Small per-process thread ordinal (not the OS thread id), stable for
    /// the lifetime of the recording thread.
    pub thread: u32,
}

/// Running per-name totals; unlike the ring these are never evicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanAggregate {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

struct Totals {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    histogram: Arc<Histogram>,
}

#[derive(Default)]
struct RingState {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
    aggregates: BTreeMap<&'static str, Totals>,
}

static RING: Mutex<RingState> = Mutex::new(RingState {
    ring: VecDeque::new(),
    dropped: 0,
    aggregates: BTreeMap::new(),
});

fn ring() -> MutexGuard<'static, RingState> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-thread small ordinal for [`SpanRecord::thread`].
fn thread_ordinal() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ORDINAL: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|&o| o)
}

/// Live half of an armed span: name + start time, captured at creation.
struct SpanLive {
    name: &'static str,
    start: Instant,
}

/// RAII span guard; records its duration on drop when armed at creation.
/// Inert (a `None`) when the gate was disarmed — the drop is free.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span(Option<SpanLive>);

/// Open a span. Disarmed cost: one relaxed atomic load and a branch.
#[inline]
pub fn span(name: &'static str) -> Span {
    if crate::enabled() {
        Span(Some(SpanLive { name, start: Instant::now() }))
    } else {
        Span(None)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.0.take() {
            record(live.name, live.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cold]
fn record(name: &'static str, wall_ns: u64) {
    let thread = thread_ordinal();
    let mut state = ring();
    if state.ring.len() == RING_CAPACITY {
        state.ring.pop_front();
        state.dropped += 1;
    }
    state.ring.push_back(SpanRecord { name, wall_ns, thread });
    let totals = state.aggregates.entry(name).or_insert_with(|| Totals {
        count: 0,
        total_ns: 0,
        max_ns: 0,
        histogram: global().histogram(&format!("span.{name}.ns")),
    });
    totals.count += 1;
    totals.total_ns += wall_ns;
    totals.max_ns = totals.max_ns.max(wall_ns);
    totals.histogram.record(wall_ns);
}

/// Take every buffered [`SpanRecord`], oldest first, emptying the ring.
/// Aggregates are NOT cleared — they outlive drains and feed the manifest.
pub fn drain() -> Vec<SpanRecord> {
    ring().ring.drain(..).collect()
}

/// Name-sorted snapshot of the per-name running totals.
pub fn aggregates() -> Vec<SpanAggregate> {
    ring()
        .aggregates
        .iter()
        .map(|(&name, t)| SpanAggregate {
            name,
            count: t.count,
            total_ns: t.total_ns,
            max_ns: t.max_ns,
        })
        .collect()
}

/// Spans evicted from the ring since the last [`reset`].
pub fn dropped() -> u64 {
    ring().dropped
}

/// Clear the ring, the eviction counter and the aggregates (the global
/// registry histograms persist; tests and `ObsScope::arm` call this so a
/// run observes only its own spans).
pub fn reset() {
    let mut state = ring();
    state.ring.clear();
    state.dropped = 0;
    state.aggregates.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsScope;

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let _scope = ObsScope::arm();
        for _ in 0..RING_CAPACITY + 5 {
            record(crate::CELL_SOLVE, 10);
        }
        assert_eq!(ring().ring.len(), RING_CAPACITY);
        assert_eq!(dropped(), 5);
        // Aggregates keep the full count despite evictions.
        let agg = aggregates();
        let cell = agg.iter().find(|a| a.name == crate::CELL_SOLVE).unwrap();
        assert_eq!(cell.count, (RING_CAPACITY + 5) as u64);
        reset();
        assert_eq!(dropped(), 0);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_record_wall_time_and_thread() {
        let _scope = ObsScope::arm();
        {
            let _s = span(crate::REFERENCE_SOLVE);
            std::hint::black_box(0u64);
        }
        let records = drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, crate::REFERENCE_SOLVE);
        assert_eq!(records[0].thread, thread_ordinal());
        let agg = aggregates();
        let r = agg.iter().find(|a| a.name == crate::REFERENCE_SOLVE).unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(r.total_ns, records[0].wall_ns);
        assert_eq!(r.max_ns, records[0].wall_ns);
    }

    #[test]
    fn aggregates_feed_the_global_registry_histograms() {
        let _scope = ObsScope::arm();
        let before = global().histogram("span.store.put.ns").count();
        {
            let _s = span(crate::STORE_PUT);
        }
        let after = global().histogram("span.store.put.ns").count();
        assert_eq!(after, before + 1);
    }
}
