//! The metrics registry: named counters, gauges and fixed-bucket latency
//! histograms with a lock-free atomic hot path.
//!
//! A [`Registry`] is instantiable — the store owns one per handle so
//! parallel tests stay isolated — and [`global`] is the process-wide
//! instance the session tallies cell outcomes on. Registration (the name →
//! handle lookup) takes a mutex once; the returned [`Counter`] /
//! [`Gauge`] / [`Histogram`] handles are plain relaxed atomics, so the
//! record path never locks.
//!
//! [`Registry::to_value`] and [`counters_value`] render the one canonical
//! JSON shape (`lpa-obs-registry/v1`, name-sorted maps) shared by the run
//! manifest, `lpa-store stats --json` / `verify --json`, and tests — one
//! schema instead of parallel ad-hoc tallies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::Value;

/// Schema tag of every registry JSON rendering.
pub const REGISTRY_SCHEMA: &str = "lpa-obs-registry/v1";

/// Number of histogram buckets: bucket `i` counts samples below
/// `256 << (2 * i)` ns (~256 ns, ~1 µs, ~4 µs, … ~4.6 s), the last bucket
/// is unbounded.
pub const HISTOGRAM_BUCKETS: usize = 12;

/// A monotone named tally.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins value.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (nanosecond samples, power-of-4
/// bucket bounds). Recording is two relaxed atomic adds; there is no
/// dynamic allocation after registration.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Upper bound (exclusive) of bucket `i`; the last bucket has none.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i + 1 < HISTOGRAM_BUCKETS).then(|| 256u64 << (2 * i))
    }

    pub fn record(&self, ns: u64) {
        let idx = (0..HISTOGRAM_BUCKETS - 1)
            .find(|&i| ns < Self::bucket_bound(i).unwrap())
            .unwrap_or(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A named-metric registry. `BTreeMap` keeps every snapshot and JSON view
/// name-sorted, so renderings are deterministic byte-for-byte.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register-or-fetch a counter handle. Callers keep the `Arc` so the
    /// hot path is a relaxed atomic add, not a map lookup.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lock(&self.counters).entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        lock(&self.gauges).entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lock(&self.histograms).entry(name.to_string()).or_default().clone()
    }

    /// Current value of a counter; 0 when it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Name-sorted point-in-time copy of every counter.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        lock(&self.counters).iter().map(|(name, c)| (name.clone(), c.get())).collect()
    }

    /// The canonical `lpa-obs-registry/v1` rendering: name-sorted maps for
    /// counters and gauges, per-histogram `{count, total_ns, buckets}`.
    pub fn to_value(&self) -> Value {
        // `Value::UInt` keeps u64 tallies digit-exact in the rendering; a
        // float Num would silently round counters above 2^53.
        let counters = lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), Value::UInt(c.get())))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), Value::UInt(g.get())))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(name, h)| {
                let buckets =
                    h.bucket_counts().iter().map(|&n| Value::UInt(n)).collect();
                (
                    name.clone(),
                    Value::Map(vec![
                        ("count".to_string(), Value::UInt(h.count())),
                        ("total_ns".to_string(), Value::UInt(h.total_ns())),
                        ("buckets".to_string(), Value::Seq(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            ("schema".to_string(), Value::Str(REGISTRY_SCHEMA.to_string())),
            ("counters".to_string(), Value::Map(counters)),
            ("gauges".to_string(), Value::Map(gauges)),
            ("histograms".to_string(), Value::Map(histograms)),
        ])
    }
}

/// The process-global registry (session cell-outcome tallies and span
/// latency histograms live here).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Render a synthesized counter set (e.g. the store CLI's on-disk stats)
/// in the same `lpa-obs-registry/v1` shape a live [`Registry`] produces:
/// name-sorted, counters only.
pub fn counters_value(pairs: &[(String, u64)]) -> Value {
    let mut sorted: Vec<(String, u64)> = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(vec![
        ("schema".to_string(), Value::Str(REGISTRY_SCHEMA.to_string())),
        (
            "counters".to_string(),
            Value::Map(sorted.into_iter().map(|(k, v)| (k, Value::UInt(v))).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter_value("x.hits"), 3);
        assert_eq!(reg.counter_value("never.registered"), 0);
        reg.gauge("x.size").set(7);
        assert_eq!(reg.gauge("x.size").get(), 7);
    }

    #[test]
    fn snapshots_are_name_sorted() {
        let reg = Registry::new();
        reg.counter("z.last").incr();
        reg.counter("a.first").add(5);
        reg.counter("m.mid").add(2);
        let snap = reg.counters_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap[0].1, 5);
    }

    #[test]
    fn histogram_buckets_cover_the_latency_range() {
        let h = Histogram::default();
        h.record(100); // < 256 ns -> bucket 0
        h.record(300); // < 1024 ns -> bucket 1
        h.record(5_000_000_000); // beyond every bound -> last bucket
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.total_ns(), 100 + 300 + 5_000_000_000);
        assert_eq!(Histogram::bucket_bound(0), Some(256));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn json_views_share_the_registry_schema() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        let live = reg.to_value();
        assert_eq!(live.get("schema").and_then(|v| v.as_str()), Some(REGISTRY_SCHEMA));
        let counters = live.get("counters").and_then(|v| v.as_map()).unwrap();
        assert_eq!(counters[0].0, "a");
        assert_eq!(counters[1].0, "b");

        let synthesized =
            counters_value(&[("b".to_string(), 2), ("a".to_string(), 1)]);
        assert_eq!(
            synthesized.get("schema").and_then(|v| v.as_str()),
            Some(REGISTRY_SCHEMA)
        );
        let counters = synthesized.get("counters").and_then(|v| v.as_map()).unwrap();
        assert_eq!(counters[0].0, "a", "synthesized views are name-sorted too");
    }

    #[test]
    fn counters_render_digit_exact_beyond_f64_range() {
        // 2^53 + 1 is the first integer f64 cannot hold; u64::MAX is the
        // saturation edge. The JSON view must carry every digit of both.
        let reg = Registry::new();
        reg.counter("sat.max").add(u64::MAX);
        reg.counter("sat.edge").add((1u64 << 53) + 1);
        reg.gauge("sat.gauge").set(u64::MAX - 1);
        let json = serde_json::to_string(&reg.to_value()).unwrap();
        assert!(json.contains("\"sat.max\":18446744073709551615"), "{json}");
        assert!(json.contains("\"sat.edge\":9007199254740993"), "{json}");
        assert!(json.contains("\"sat.gauge\":18446744073709551614"), "{json}");

        let live = reg.to_value();
        let counters = live.get("counters").unwrap();
        assert_eq!(counters.get("sat.max").and_then(|v| v.as_u64()), Some(u64::MAX));

        let synthesized = counters_value(&[("sat.max".to_string(), u64::MAX)]);
        let json = serde_json::to_string(&synthesized).unwrap();
        assert!(json.contains("18446744073709551615"), "{json}");
    }
}
