//! # lpa-obs — vendored observability layer
//!
//! The workspace's metrics/tracing substrate: a process-global (and
//! instantiable) [`Registry`] of named counters/gauges/histograms, a
//! `span`-style tracing facility with a bounded ring buffer, and a
//! canonical JSON rendering (`lpa-obs-registry/v1`) that the run manifest,
//! the `lpa-store` CLI and the figure harnesses all share. Everything is
//! dependency-free (the vendored `serde` Value is the only import), so the
//! later `lpa-serve` and sharded-store work inherit observability instead
//! of retrofitting it.
//!
//! ## Arming: the `LPA_OBS` knob
//!
//! Per the harness knob discipline the environment variable is read in
//! exactly one place — this module. `LPA_OBS=1|on|true` arms span
//! recording; `0|off|false` (or unset) leaves it disarmed; anything else
//! panics (a typo must not silently disarm an observability run, mirroring
//! `LPA_ARITH_TIER`). Programmatic arming goes through
//! `ExperimentPlan::observability(..)` (a restore guard around [`force`])
//! or, in tests, the serializing [`ObsScope`].
//!
//! ## Disarmed cost
//!
//! When disarmed (every production run), [`span`] compiles to a single
//! relaxed atomic load and a branch — the ring buffer, the clock reads and
//! the aggregate map are all behind the armed branch, following the
//! `lpa-faults` gate pattern exactly. The `micro_kernels` bench pair
//! `obs/*/dot_with_disarmed_span` vs `dot_without_span` guards this.
//!
//! **Metrics counters are always live**: they are monotone relaxed atomics
//! on paths that are already I/O- or solve-dominated (store lookups, cell
//! assembly), never in arithmetic kernels, so they need no gate.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

pub mod registry;
pub mod span;

pub use registry::{
    counters_value, global, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS,
    REGISTRY_SCHEMA,
};
pub use span::{span, Span, SpanAggregate, SpanRecord, RING_CAPACITY};

/// One double-double reference solve (a session stage-1 cell).
pub const REFERENCE_SOLVE: &str = "session.reference.solve";
/// One (matrix, format) low-precision solve (a session stage-2 cell).
pub const CELL_SOLVE: &str = "session.cell.solve";
/// A store lookup's I/O side (in-process cache check + disk read).
pub const STORE_GET: &str = "store.get";
/// A store artifact write (frame encode + atomic tmp/rename).
pub const STORE_PUT: &str = "store.put";
/// One Krylov–Schur restart iteration (expansion + projected Schur).
pub const ARNOLDI_RESTART: &str = "arnoldi.restart";
/// One admitted `lpa-serve` request, dequeue to final response.
pub const SERVE_REQUEST: &str = "serve.request";

/// Every span name the workspace instruments.
pub const SPANS: [&str; 6] =
    [REFERENCE_SOLVE, CELL_SOLVE, STORE_GET, STORE_PUT, ARNOLDI_RESTART, SERVE_REQUEST];

const UNSET: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

/// Tri-state gate, the `lpa-faults` pattern: `UNSET` until the first
/// evaluation, then `DISARMED` (one relaxed load forever) or `ARMED`.
static STATE: AtomicU8 = AtomicU8::new(UNSET);

/// Serializes tests that arm the process-global span machinery.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Is span recording armed? Disarmed cost: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        DISARMED => false,
        ARMED => true,
        _ => {
            init_from_env();
            enabled()
        }
    }
}

/// `"armed"` / `"disarmed"` — for run provenance (bench config, manifest).
pub fn state_name() -> &'static str {
    if enabled() {
        "armed"
    } else {
        "disarmed"
    }
}

/// Parse `LPA_OBS` (this crate's only `std::env` read, shared by the lazy
/// gate init and `HarnessEnv::capture`). Unset or empty is `None`; a value
/// that is neither an on- nor an off-spelling panics.
pub fn env_observability() -> Option<bool> {
    let value = std::env::var("LPA_OBS").ok()?;
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    Some(parse_switch(value).unwrap_or_else(|| panic!("LPA_OBS: unknown value {value:?} (want 1|on|true or 0|off|false)")))
}

/// The shared on/off vocabulary of `LPA_OBS` and `reproduce --obs`.
pub fn parse_switch(value: &str) -> Option<bool> {
    match value {
        "1" | "on" | "true" | "armed" => Some(true),
        "0" | "off" | "false" | "disarmed" => Some(false),
        _ => None,
    }
}

/// Force the gate and return the previous effective state — the primitive
/// behind the session's restore guard. (Overlapping guards from concurrent
/// sessions are benign: the gate only selects whether spans are recorded,
/// never what is computed.)
pub fn force(on: bool) -> bool {
    let previous = enabled();
    STATE.store(if on { ARMED } else { DISARMED }, Ordering::Relaxed);
    previous
}

/// First-evaluation path: read `LPA_OBS` once and settle the gate. Racing
/// threads both parse; the result is identical and the transition is
/// monotone `UNSET -> {DISARMED, ARMED}`.
#[cold]
fn init_from_env() {
    let armed = env_observability().unwrap_or(false);
    let target = if armed { ARMED } else { DISARMED };
    let _ = STATE.compare_exchange(UNSET, target, Ordering::Relaxed, Ordering::Relaxed);
}

/// Arm (or disarm) span recording for the lifetime of the returned guard,
/// serializing concurrent arming tests — the ring buffer and the gate are
/// process-global. Arming also resets the ring and aggregates so a test
/// observes only its own spans; the previous gate state is restored on
/// drop.
pub struct ObsScope {
    _serial: MutexGuard<'static, ()>,
    previous: bool,
}

impl ObsScope {
    pub fn arm() -> ObsScope {
        let serial = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        span::reset();
        let previous = force(true);
        ObsScope { _serial: serial, previous }
    }

    pub fn disarm() -> ObsScope {
        let serial = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = force(false);
        ObsScope { _serial: serial, previous }
    }
}

impl Drop for ObsScope {
    fn drop(&mut self) {
        force(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_spans_record_nothing() {
        let _scope = ObsScope::disarm();
        span::reset();
        {
            let _s = span(CELL_SOLVE);
        }
        assert!(span::drain().is_empty());
        assert!(span::aggregates().is_empty());
    }

    #[test]
    fn armed_spans_record_and_aggregate() {
        let _scope = ObsScope::arm();
        for _ in 0..3 {
            let _s = span(STORE_GET);
        }
        {
            let _s = span(STORE_PUT);
        }
        let records = span::drain();
        assert_eq!(records.len(), 4);
        assert!(records.iter().take(3).all(|r| r.name == STORE_GET));
        // Aggregates survive the drain (they feed the run manifest).
        let aggs = span::aggregates();
        let get = aggs.iter().find(|a| a.name == STORE_GET).unwrap();
        assert_eq!(get.count, 3);
        assert!(get.max_ns <= get.total_ns);
        // Aggregates are name-sorted, so their order is deterministic.
        let names: Vec<&str> = aggs.iter().map(|a| a.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn scope_restores_the_previous_state() {
        let outer = ObsScope::disarm();
        drop(outer);
        {
            let _inner = ObsScope::arm();
            assert!(enabled());
        }
        assert!(!enabled(), "dropping the scope must restore the previous state");
    }

    #[test]
    fn switch_vocabulary_is_strict() {
        assert_eq!(parse_switch("on"), Some(true));
        assert_eq!(parse_switch("1"), Some(true));
        assert_eq!(parse_switch("off"), Some(false));
        assert_eq!(parse_switch("0"), Some(false));
        assert_eq!(parse_switch("yes"), None);
        assert_eq!(parse_switch(""), None);
    }
}
