//! Format-independent unpacked representation of a machine number.
//!
//! Every software-emulated format in this crate decodes its bit pattern into
//! an [`Unpacked`] value, performs arithmetic on that representation through
//! the kernels in [`crate::softfloat`], and re-encodes the (possibly inexact)
//! result with format-specific rounding.  The representation is wide enough
//! (64-bit significand, 32-bit exponent) to hold any value of any format in
//! this crate exactly.

use core::cmp::Ordering;

/// Classification of an unpacked value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Exact zero (the sign is kept for IEEE formats with signed zero).
    Zero,
    /// A non-zero finite value.
    Finite,
    /// An infinity (IEEE formats only; posits and takums map it to NaR).
    Inf,
    /// Not a number / NaR.
    Nan,
}

/// A sign-magnitude, normalized, arbitrary-format scalar value.
///
/// For `class == Finite` the represented value is
/// `(-1)^sign * (sig / 2^63) * 2^exp` with bit 63 of `sig` set, i.e. the
/// significand lies in `[1, 2)`.  The `sticky` flag records whether the true
/// (infinitely precise) result of the producing operation had any non-zero
/// bits below the least significant bit of `sig`; decoders always produce
/// `sticky == false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unpacked {
    pub class: Class,
    pub sign: bool,
    pub exp: i32,
    pub sig: u64,
    pub sticky: bool,
}

impl Unpacked {
    pub const fn zero(sign: bool) -> Self {
        Unpacked { class: Class::Zero, sign, exp: 0, sig: 0, sticky: false }
    }

    pub const fn nan() -> Self {
        Unpacked { class: Class::Nan, sign: false, exp: 0, sig: 0, sticky: false }
    }

    pub const fn inf(sign: bool) -> Self {
        Unpacked { class: Class::Inf, sign, exp: 0, sig: 0, sticky: false }
    }

    /// A finite, already-normalized value (bit 63 of `sig` must be set).
    #[inline]
    pub fn finite(sign: bool, exp: i32, sig: u64) -> Self {
        debug_assert!(sig >> 63 == 1, "significand must be normalized");
        Unpacked { class: Class::Finite, sign, exp, sig, sticky: false }
    }

    #[inline]
    pub fn is_nan(&self) -> bool {
        self.class == Class::Nan
    }

    #[inline]
    pub fn is_zero(&self) -> bool {
        self.class == Class::Zero
    }

    #[inline]
    pub fn is_finite(&self) -> bool {
        matches!(self.class, Class::Zero | Class::Finite)
    }

    /// Build a normalized value from a 128-bit "frame".
    ///
    /// The frame represents the magnitude `frame * 2^(frame_exp - 126)`, i.e.
    /// a leading bit at position 126 corresponds to a significand in `[1, 2)`
    /// with binary exponent `frame_exp`.  `extra_sticky` accounts for true
    /// result bits that were already discarded below the frame (e.g. a
    /// non-zero division remainder).
    #[inline]
    pub fn from_frame(sign: bool, frame_exp: i32, frame: u128, extra_sticky: bool) -> Self {
        if frame == 0 {
            if extra_sticky {
                // The magnitude is tiny but non-zero; represent it as the
                // smallest frame value so that saturating formats round it
                // away from zero.  This only happens after extreme alignment
                // shifts and the exact magnitude no longer matters.
                return Unpacked {
                    class: Class::Finite,
                    sign,
                    exp: frame_exp - 126,
                    sig: 1 << 63,
                    sticky: true,
                };
            }
            return Unpacked::zero(sign);
        }
        let msb = 127 - frame.leading_zeros() as i32;
        let exp = frame_exp - 126 + msb;
        // Shift so the most significant bit lands on bit 127, then split into
        // a 64-bit significand and a sticky remainder.
        let shifted = frame << (127 - msb);
        let sig = (shifted >> 64) as u64;
        let sticky = (shifted as u64) != 0 || extra_sticky;
        Unpacked { class: Class::Finite, sign, exp, sig, sticky }
    }

    /// Total magnitude comparison of two finite non-zero values.
    #[inline]
    pub fn cmp_magnitude(&self, other: &Self) -> Ordering {
        debug_assert!(self.class == Class::Finite && other.class == Class::Finite);
        match self.exp.cmp(&other.exp) {
            Ordering::Equal => self.sig.cmp(&other.sig),
            o => o,
        }
    }

    /// IEEE-style comparison of the represented values.
    ///
    /// Returns `None` if either operand is NaN.  Zeros compare equal
    /// regardless of sign.
    #[inline]
    pub fn partial_cmp_value(&self, other: &Self) -> Option<Ordering> {
        use Class::*;
        match (self.class, other.class) {
            (Nan, _) | (_, Nan) => None,
            (Zero, Zero) => Some(Ordering::Equal),
            (Zero, Finite) | (Zero, Inf) => {
                Some(if other.sign { Ordering::Greater } else { Ordering::Less })
            }
            (Finite, Zero) | (Inf, Zero) => {
                Some(if self.sign { Ordering::Less } else { Ordering::Greater })
            }
            (Inf, Inf) => Some(match (self.sign, other.sign) {
                (true, true) | (false, false) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
            }),
            (Inf, Finite) => Some(if self.sign { Ordering::Less } else { Ordering::Greater }),
            (Finite, Inf) => Some(if other.sign { Ordering::Greater } else { Ordering::Less }),
            (Finite, Finite) => {
                if self.sign != other.sign {
                    return Some(if self.sign { Ordering::Less } else { Ordering::Greater });
                }
                let mag = self.cmp_magnitude(other);
                Some(if self.sign { mag.reverse() } else { mag })
            }
        }
    }
}

/// Round-to-nearest-even of `sig` (with a trailing `sticky` flag) after
/// dropping its `drop` least significant bits.
///
/// Returns the rounded value (which may have one more bit than `64 - drop`
/// when a carry propagates all the way up) and whether the operation was
/// inexact.
#[inline]
pub fn round_at(sig: u64, sticky: bool, drop: u32) -> (u64, bool) {
    if drop == 0 {
        return (sig, sticky);
    }
    if drop > 64 {
        // Everything is dropped; the value is far below one ulp.
        return (0, sig != 0 || sticky);
    }
    if drop == 64 {
        let inexact = sig != 0 || sticky;
        // Round bit is bit 63 of sig.
        let round = sig >> 63 != 0;
        let rest = (sig << 1) != 0 || sticky;
        let up = round && rest; // ties (round set, rest clear) go to even = 0
        return (up as u64, inexact);
    }
    let keep = sig >> drop;
    let rem = sig & ((1u64 << drop) - 1);
    let half = 1u64 << (drop - 1);
    let inexact = rem != 0 || sticky;
    let up = rem > half || (rem == half && (sticky || keep & 1 == 1));
    (keep + up as u64, inexact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_at_basics() {
        // 0b1011 dropping 2 bits: keep 0b10, rem 0b11 > half -> 0b11
        assert_eq!(round_at(0b1011, false, 2), (0b11, true));
        // exact halves go to even
        assert_eq!(round_at(0b1010, false, 2), (0b10, true));
        assert_eq!(round_at(0b1110, false, 2), (0b100, true));
        // sticky breaks the tie upward
        assert_eq!(round_at(0b1010, true, 2), (0b11, true));
        // exact value stays
        assert_eq!(round_at(0b1000, false, 2), (0b10, false));
        assert_eq!(round_at(0xdead_beef, false, 0), (0xdead_beef, false));
    }

    #[test]
    fn round_at_full_drop() {
        assert_eq!(round_at(1 << 63, false, 64), (0, true)); // exactly half, ties to even
        assert_eq!(round_at((1 << 63) | 1, false, 64), (1, true));
        assert_eq!(round_at(1 << 62, false, 64), (0, true));
        assert_eq!(round_at(123, false, 65), (0, true));
        assert_eq!(round_at(0, false, 65), (0, false));
    }

    #[test]
    fn from_frame_normalizes() {
        // frame with MSB at 126 and clean low bits: exact significand.
        let u = Unpacked::from_frame(false, 10, 1u128 << 126, false);
        assert_eq!(u.exp, 10);
        assert_eq!(u.sig, 1 << 63);
        assert!(!u.sticky);
        // MSB at 127: exponent goes up by one.
        let u = Unpacked::from_frame(false, 10, 1u128 << 127, false);
        assert_eq!(u.exp, 11);
        assert_eq!(u.sig, 1 << 63);
        // Low bits below the significand set the sticky flag.
        let u = Unpacked::from_frame(true, 0, (1u128 << 126) | 1, false);
        assert!(u.sticky);
        assert!(u.sign);
        assert_eq!(u.sig, 1 << 63);
    }

    #[test]
    fn value_comparison() {
        let one = Unpacked::finite(false, 0, 1 << 63);
        let two = Unpacked::finite(false, 1, 1 << 63);
        let neg_two = Unpacked::finite(true, 1, 1 << 63);
        assert_eq!(one.partial_cmp_value(&two), Some(Ordering::Less));
        assert_eq!(two.partial_cmp_value(&one), Some(Ordering::Greater));
        assert_eq!(neg_two.partial_cmp_value(&one), Some(Ordering::Less));
        assert_eq!(neg_two.partial_cmp_value(&neg_two), Some(Ordering::Equal));
        assert_eq!(Unpacked::zero(true).partial_cmp_value(&Unpacked::zero(false)), Some(Ordering::Equal));
        assert_eq!(Unpacked::nan().partial_cmp_value(&one), None);
        assert_eq!(Unpacked::inf(false).partial_cmp_value(&two), Some(Ordering::Greater));
        assert_eq!(Unpacked::inf(true).partial_cmp_value(&two), Some(Ordering::Less));
    }
}
