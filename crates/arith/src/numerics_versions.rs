//! Feature versions this arithmetic crate implements.
//!
//! Each version names the numerics contract of one differential-suite-backed
//! subsystem. A PR that changes what a subsystem *computes* (not how fast)
//! must bump its constant here and mirror the bump in
//! `lpa_numerics::NumericsConfig::builtin`; the cross-check lives in
//! `lpa_experiments::numerics` so a one-sided bump fails loudly instead of
//! silently serving stale cached artifacts.

/// The shared integer soft-float kernel (`softfloat` module) every emulated
/// format rounds through.
pub const SOFTFLOAT_KERNEL: u32 = 1;

/// The unpack-once 16-bit decode tables (`unpacked` module, Lut16 tier).
pub const DEC16_TABLES: u32 = 1;

/// The decoded-operand batch kernel engine's value-level rounder
/// (`batch` module).
pub const BATCH_ROUND: u32 = 1;

/// The 8-bit full-result lookup tables (`lut` module).
pub const LUT8_TABLES: u32 = 1;

/// The double-double reference arithmetic (`dd` module).
pub const DD_REFERENCE: u32 = 1;
