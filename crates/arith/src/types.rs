//! Concrete scalar types for every emulated format, all implementing
//! [`Real`](crate::Real).
//!
//! Each type is a thin newtype over its storage word.  Arithmetic is served
//! by one of three backends, chosen per width (see [`crate::lut`]):
//!
//! * **8-bit formats** route every operation through precomputed lookup
//!   tables ([`crate::lut::Lut8`]), generated once per format from the
//!   soft-float path — bit-identical to it by construction and several
//!   times faster.
//! * **16-bit formats** unpack once through a 64 Ki-entry table
//!   ([`crate::lut::Lut16`]): binary ops read both operands pre-decoded and
//!   only pay the soft-float core for rounding/encode, unary ops
//!   (`neg`/`abs`/`sqrt`/`recip`) are a single indexed load, and a
//!   64 Ki-entry decode table ([`crate::lut::Decode16`]) serves `to_f64`,
//!   comparisons and zero/NaN classification.  `LPA_ARITH_TIER` (see
//!   [`crate::tier`]) can force the reference path.
//! * **32/64-bit formats** use the soft-float kernel directly; their
//!   significands do not fit in `f64`, so correctly rounded emulation needs
//!   the wide integer path.
//!
//! Every type also exposes the raw reference path (`softfloat_add` & co.)
//! regardless of backend, which the exhaustive equivalence tests and the
//! backend micro-benchmarks compare against.  This keeps results bit-exact
//! and reproducible across platforms and backends.

use core::cmp::Ordering;
use core::fmt;

use crate::ieee::{self, pack_f64, unpack_f64};
use crate::posit;
use crate::real::Real;
use crate::softfloat;
use crate::takum;
use crate::unpacked::Unpacked;

/// The storage newtype plus everything that is backend-independent: bit
/// access, the unpack/pack codec bridge, the soft-float reference path,
/// formatting and the compound-assignment operators.
macro_rules! format_shell {
    (
        $(#[$meta:meta])*
        $name:ident, $storage:ty, $fmtname:expr, $codec:ident, $spec:expr
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy)]
        pub struct $name($storage);

        impl $name {
            /// Construct directly from the raw bit pattern.
            #[inline]
            pub fn from_bits(bits: $storage) -> Self {
                $name(bits)
            }

            /// The raw bit pattern.
            #[inline]
            pub fn to_bits(self) -> $storage {
                self.0
            }

            #[inline]
            fn unpack(self) -> Unpacked {
                $codec::decode(self.0 as u64, &$spec)
            }

            #[inline]
            fn pack(u: &Unpacked) -> Self {
                $name($codec::encode(u, &$spec) as $storage)
            }

            /// Reference addition through the decode → kernel → round path,
            /// independent of the active backend.
            #[inline]
            pub fn softfloat_add(self, o: Self) -> Self {
                Self::pack(&softfloat::add(&self.unpack(), &o.unpack()))
            }

            /// Reference subtraction (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_sub(self, o: Self) -> Self {
                Self::pack(&softfloat::sub(&self.unpack(), &o.unpack()))
            }

            /// Reference multiplication (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_mul(self, o: Self) -> Self {
                Self::pack(&softfloat::mul(&self.unpack(), &o.unpack()))
            }

            /// Reference division (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_div(self, o: Self) -> Self {
                Self::pack(&softfloat::div(&self.unpack(), &o.unpack()))
            }

            /// Reference square root (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_sqrt(self) -> Self {
                Self::pack(&softfloat::sqrt(&self.unpack()))
            }

            /// Reference decode to `f64` (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_to_f64(self) -> f64 {
                pack_f64(&self.unpack())
            }

            /// Reference negation (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_neg(self) -> Self {
                let mut u = self.unpack();
                if !u.is_nan() {
                    u.sign = !u.sign;
                }
                Self::pack(&u)
            }

            /// Reference absolute value (see [`Self::softfloat_add`]).
            #[inline]
            pub fn softfloat_abs(self) -> Self {
                let mut u = self.unpack();
                u.sign = false;
                Self::pack(&u)
            }

            /// Reference comparison through the unpacked representation
            /// (`Unpacked::partial_cmp_value`), independent of the active
            /// backend's comparison path.
            #[inline]
            pub fn softfloat_partial_cmp(self, o: Self) -> Option<Ordering> {
                self.unpack().partial_cmp_value(&o.unpack())
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl core::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
        impl core::ops::DivAssign for $name {
            #[inline]
            fn div_assign(&mut self, o: Self) {
                *self = *self / o;
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }
        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x} ≈ {})", $fmtname, self.0, self.to_f64())
            }
        }
    };
}

/// The five arithmetic operator impls delegating to the soft-float
/// reference path, shared by [`soft_backend!`] and [`dec16_backend!`].
macro_rules! softfloat_ops {
    ($name:ident) => {
        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                self.softfloat_add(o)
            }
        }
        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                self.softfloat_sub(o)
            }
        }
        impl core::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, o: Self) -> Self {
                self.softfloat_mul(o)
            }
        }
        impl core::ops::Div for $name {
            type Output = Self;
            #[inline]
            fn div(self, o: Self) -> Self {
                self.softfloat_div(o)
            }
        }
        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self.softfloat_neg()
            }
        }
    };
}

/// `Real` items identical across all three backends (expands inside an
/// `impl Real` block): constants, constructors and the storage-pattern
/// constants.
macro_rules! real_storage_core {
    ($name:ident, $storage:ty, $fmtname:expr, $bits:expr, $max_pat:expr, $min_pat:expr) => {
        const NAME: &'static str = $fmtname;
        const BITS: u32 = $bits;

        #[inline]
        fn zero() -> Self {
            $name(0)
        }
        #[inline]
        fn one() -> Self {
            Self::from_f64(1.0)
        }
        #[inline]
        fn from_f64(x: f64) -> Self {
            Self::pack(&unpack_f64(x))
        }
        fn epsilon() -> Self {
            let one = Self::one();
            let next = $name(one.0 + 1);
            next - one
        }
        fn max_finite() -> Self {
            $name($max_pat as $storage)
        }
        fn min_positive() -> Self {
            $name($min_pat as $storage)
        }
    };
}

/// The [`crate::batch::BatchReal`] implementation shared by every format
/// whose pre-decoded operand form is the [`Unpacked`] representation (the
/// 16-bit and the soft-float 32/64-bit backends): the decoded-domain ops
/// run the shared kernel on the cached operands and round back onto the
/// format's grid via the codec's value-level rounder
/// (`crate::batch::round::$codec`), skipping both operand decodes and the
/// bit-pattern round trip — bit-identical to the scalar operators by the
/// rounder's contract (verified in `tests/batch_differential.rs`).
macro_rules! unpacked_batch {
    ($name:ident, $codec:ident, $spec:expr, $dec:expr) => {
        impl crate::batch::BatchReal for $name {
            type Dec = Unpacked;
            type Planes = crate::batch::planes::UnpackedPlanes;
            const DECODED: bool = true;
            const ROUND: crate::batch::round::RoundPlan =
                crate::batch::round::plan::$codec(&$spec);

            #[inline]
            fn dec(self) -> Unpacked {
                let decode: fn($name) -> Unpacked = $dec;
                decode(self)
            }
            #[inline]
            fn undec(d: Unpacked) -> Self {
                Self::pack(&d)
            }
            #[inline]
            fn dec_add(a: Unpacked, b: Unpacked) -> Unpacked {
                crate::batch::dec_add_via(&a, &b, |u| crate::batch::round::$codec(u, &$spec))
            }
            #[inline]
            fn dec_mul(a: Unpacked, b: Unpacked) -> Unpacked {
                crate::batch::dec_mul_via(&a, &b, |u| crate::batch::round::$codec(u, &$spec))
            }
            #[inline]
            fn dec_neg(a: Unpacked) -> Unpacked {
                crate::batch::dec_neg_via(&a, |u| crate::batch::round::$codec(u, &$spec))
            }
            #[inline]
            fn dec_is_zero(a: Unpacked) -> bool {
                a.is_zero()
            }
        }
    };
}

/// Soft-float backend: operators and `Real` through the decode → kernel →
/// round path (the 32- and 64-bit formats, whose significands exceed `f64`).
macro_rules! soft_backend {
    ($name:ident, $storage:ty, $fmtname:expr, $bits:expr, $max_pat:expr, $min_pat:expr,
     $codec:ident, $spec:expr) => {
        softfloat_ops!($name);
        unpacked_batch!($name, $codec, $spec, |x: $name| x.unpack());

        impl PartialEq for $name {
            #[inline]
            fn eq(&self, o: &Self) -> bool {
                self.unpack().partial_cmp_value(&o.unpack()) == Some(Ordering::Equal)
            }
        }
        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                self.unpack().partial_cmp_value(&o.unpack())
            }
        }

        impl Real for $name {
            real_storage_core!($name, $storage, $fmtname, $bits, $max_pat, $min_pat);

            #[inline]
            fn to_f64(self) -> f64 {
                self.softfloat_to_f64()
            }
            #[inline]
            fn abs(self) -> Self {
                self.softfloat_abs()
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.softfloat_sqrt()
            }
            #[inline]
            fn is_nan(self) -> bool {
                self.unpack().is_nan()
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.unpack().is_finite()
            }
            #[inline]
            fn is_zero(self) -> bool {
                self.unpack().is_zero()
            }
        }
    };
}

/// Comparison operators through the decoded `f64` value, shared by both
/// table-served backends.  Every 8/16-bit value decodes exactly into `f64`,
/// and `f64` comparison semantics coincide with
/// `Unpacked::partial_cmp_value` (NaN/NaR unordered, zeros equal regardless
/// of sign) — verified per format in `tests/lut_exhaustive.rs`.
macro_rules! decoded_cmp_backend {
    ($name:ident) => {
        impl PartialEq for $name {
            #[inline]
            fn eq(&self, o: &Self) -> bool {
                self.to_f64() == o.to_f64()
            }
        }
        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                self.to_f64().partial_cmp(&o.to_f64())
            }
        }
    };
}

/// Zero/NaN/finite classification through the decoded `f64` value, shared
/// by both table-served backends (expands inside their `impl Real` blocks).
macro_rules! decoded_class_core {
    () => {
        #[inline]
        fn is_nan(self) -> bool {
            self.to_f64().is_nan()
        }
        #[inline]
        fn is_finite(self) -> bool {
            self.to_f64().is_finite()
        }
        #[inline]
        fn is_zero(self) -> bool {
            self.to_f64() == 0.0
        }
    };
}

/// Lookup-table backend for the 8-bit formats: every operation is one or
/// two table loads.  The tables are built from the soft-float path on first
/// use, so results are bit-identical to [`soft_backend!`]'s.
macro_rules! lut8_backend {
    ($name:ident, $fmtname:expr, $max_pat:expr, $min_pat:expr, $codec:ident, $spec:expr) => {
        impl $name {
            /// This format's operation tables (built on first use).
            #[inline]
            fn lut() -> &'static crate::lut::Lut8 {
                crate::lut::format_table!(crate::lut::Lut8, || {
                    crate::lut::Lut8::build(
                        |bits| $codec::decode(bits as u64, &$spec),
                        |u| $codec::encode(u, &$spec) as u8,
                    )
                })
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                $name(Self::lut().add(self.0, o.0))
            }
        }
        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                $name(Self::lut().sub(self.0, o.0))
            }
        }
        impl core::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, o: Self) -> Self {
                $name(Self::lut().mul(self.0, o.0))
            }
        }
        impl core::ops::Div for $name {
            type Output = Self;
            #[inline]
            fn div(self, o: Self) -> Self {
                $name(Self::lut().div(self.0, o.0))
            }
        }
        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                $name(Self::lut().neg(self.0))
            }
        }

        decoded_cmp_backend!($name);

        impl Real for $name {
            real_storage_core!($name, u8, $fmtname, 8, $max_pat, $min_pat);
            decoded_class_core!();

            #[inline]
            fn to_f64(self) -> f64 {
                Self::lut().decode(self.0)
            }
            #[inline]
            fn abs(self) -> Self {
                $name(Self::lut().abs(self.0))
            }
            #[inline]
            fn sqrt(self) -> Self {
                $name(Self::lut().sqrt(self.0))
            }
            #[inline]
            fn recip(self) -> Self {
                // Table built as `one / x` through the kernel, matching the
                // `Real::recip` default exactly.
                $name(Self::lut().recip(self.0))
            }
        }
    };
}

/// One binary operator of the unpack-once 16-bit backend: both operands
/// come pre-decoded from the [`crate::lut::Lut16`] table (exactly what the
/// codec's `decode` returns, so the result is bit-identical to the
/// reference path), and only the kernel combine + round/encode still runs.
/// `LPA_ARITH_TIER` / [`crate::tier::force_dec16_tier`] fall back to the
/// full reference path.
macro_rules! dec16_binop {
    ($name:ident, $op_trait:ident, $op_fn:ident, $kernel:ident, $reference:ident) => {
        impl core::ops::$op_trait for $name {
            type Output = Self;
            #[inline]
            fn $op_fn(self, o: Self) -> Self {
                if crate::tier::dec16_unpack_enabled() {
                    let lut = Self::lut16();
                    Self::pack(&softfloat::$kernel(lut.unpack(self.0), lut.unpack(o.0)))
                } else {
                    self.$reference(o)
                }
            }
        }
    };
}

/// Unpack-once backend for the 16-bit formats: binary ops read both
/// operands pre-decoded from a 64 Ki-entry table and only pay the
/// soft-float core for the combine/round/encode step, unary ops are a
/// single indexed load from full result tables, and `to_f64`, comparisons
/// and classification skip the unpack via the `f64` decode table (every
/// 16-bit value is exact in `f64`).  Bit-identical to the soft-float
/// reference path by construction; [`crate::tier`] can force the reference
/// path at runtime.
macro_rules! dec16_backend {
    ($name:ident, $fmtname:expr, $max_pat:expr, $min_pat:expr, $codec:ident, $spec:expr) => {
        impl $name {
            /// This format's `bits → f64` decode table (built on first use).
            #[inline]
            fn decode_table() -> &'static crate::lut::Decode16 {
                crate::lut::format_table!(crate::lut::Decode16, || {
                    crate::lut::Decode16::build(|bits| $codec::decode(bits as u64, &$spec))
                })
            }

            /// This format's unpack-once tables (built on first use).
            #[inline]
            fn lut16() -> &'static crate::lut::Lut16 {
                crate::lut::format_table!(crate::lut::Lut16, || {
                    crate::lut::Lut16::build(
                        |bits| $codec::decode(bits as u64, &$spec),
                        |u| $codec::encode(u, &$spec) as u16,
                    )
                })
            }
        }

        dec16_binop!($name, Add, add, add, softfloat_add);
        dec16_binop!($name, Sub, sub, sub, softfloat_sub);
        dec16_binop!($name, Mul, mul, mul, softfloat_mul);
        dec16_binop!($name, Div, div, div, softfloat_div);
        // Pre-decoding reads the unpack-once table: a 16-bit shadow fill is
        // one indexed load per element.
        unpacked_batch!($name, $codec, $spec, |x: $name| *Self::lut16().unpack(x.0));
        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                if crate::tier::dec16_unpack_enabled() {
                    $name(Self::lut16().neg(self.0))
                } else {
                    self.softfloat_neg()
                }
            }
        }

        decoded_cmp_backend!($name);

        impl Real for $name {
            real_storage_core!($name, u16, $fmtname, 16, $max_pat, $min_pat);
            decoded_class_core!();

            #[inline]
            fn to_f64(self) -> f64 {
                Self::decode_table().decode(self.0)
            }
            #[inline]
            fn abs(self) -> Self {
                if crate::tier::dec16_unpack_enabled() {
                    $name(Self::lut16().abs(self.0))
                } else {
                    self.softfloat_abs()
                }
            }
            #[inline]
            fn sqrt(self) -> Self {
                if crate::tier::dec16_unpack_enabled() {
                    $name(Self::lut16().sqrt(self.0))
                } else {
                    self.softfloat_sqrt()
                }
            }
            #[inline]
            fn recip(self) -> Self {
                // Table built as `one / x` through the kernel, matching the
                // `Real::recip` default exactly (as does the fallback).
                if crate::tier::dec16_unpack_enabled() {
                    $name(Self::lut16().recip(self.0))
                } else {
                    Self::one() / self
                }
            }
        }
    };
}

macro_rules! lut8_format {
    (
        $(#[$meta:meta])*
        $name:ident, $fmtname:expr, $codec:ident, $spec:expr, $max_pat:expr, $min_pat:expr
    ) => {
        format_shell!($(#[$meta])* $name, u8, $fmtname, $codec, $spec);
        lut8_backend!($name, $fmtname, $max_pat, $min_pat, $codec, $spec);
    };
}

macro_rules! dec16_format {
    (
        $(#[$meta:meta])*
        $name:ident, $fmtname:expr, $codec:ident, $spec:expr, $max_pat:expr, $min_pat:expr
    ) => {
        format_shell!($(#[$meta])* $name, u16, $fmtname, $codec, $spec);
        dec16_backend!($name, $fmtname, $max_pat, $min_pat, $codec, $spec);
    };
}

macro_rules! soft_format {
    (
        $(#[$meta:meta])*
        $name:ident, $storage:ty, $fmtname:expr, $bits:expr,
        $codec:ident, $spec:expr, $max_pat:expr, $min_pat:expr
    ) => {
        format_shell!($(#[$meta])* $name, $storage, $fmtname, $codec, $spec);
        soft_backend!($name, $storage, $fmtname, $bits, $max_pat, $min_pat, $codec, $spec);
    };
}

dec16_format!(
    /// IEEE 754 binary16 (`float16`).
    F16, "float16", ieee, ieee::BINARY16,
    ieee::BINARY16.max_finite_bits(), ieee::BINARY16.min_positive_bits()
);
dec16_format!(
    /// Google Brain `bfloat16` (8 exponent bits, 7 fraction bits).
    Bf16, "bfloat16", ieee, ieee::BFLOAT16,
    ieee::BFLOAT16.max_finite_bits(), ieee::BFLOAT16.min_positive_bits()
);
lut8_format!(
    /// OCP OFP8 E4M3 (no infinities, single NaN mantissa, max finite 448).
    E4M3, "OFP8 E4M3", ieee, ieee::OFP8_E4M3,
    ieee::OFP8_E4M3.max_finite_bits(), ieee::OFP8_E4M3.min_positive_bits()
);
lut8_format!(
    /// OCP OFP8 E5M2 (IEEE-like specials, max finite 57344).
    E5M2, "OFP8 E5M2", ieee, ieee::OFP8_E5M2,
    ieee::OFP8_E5M2.max_finite_bits(), ieee::OFP8_E5M2.min_positive_bits()
);

lut8_format!(
    /// 8-bit posit, 2022 standard (es = 2).
    Posit8, "posit8", posit, posit::POSIT8,
    posit::POSIT8.maxpos_pattern(), posit::POSIT8.minpos_pattern()
);
dec16_format!(
    /// 16-bit posit, 2022 standard (es = 2).
    Posit16, "posit16", posit, posit::POSIT16,
    posit::POSIT16.maxpos_pattern(), posit::POSIT16.minpos_pattern()
);
soft_format!(
    /// 32-bit posit, 2022 standard (es = 2).
    Posit32, u32, "posit32", 32, posit, posit::POSIT32,
    posit::POSIT32.maxpos_pattern(), posit::POSIT32.minpos_pattern()
);
soft_format!(
    /// 64-bit posit, 2022 standard (es = 2).
    Posit64, u64, "posit64", 64, posit, posit::POSIT64,
    posit::POSIT64.maxpos_pattern(), posit::POSIT64.minpos_pattern()
);
lut8_format!(
    /// Legacy 8-bit posit with es = 0 (pre-2022 draft), used by the ablation
    /// study only.
    Posit8Es0, "posit8(es=0)", posit, posit::POSIT8_ES0,
    posit::POSIT8_ES0.maxpos_pattern(), posit::POSIT8_ES0.minpos_pattern()
);
dec16_format!(
    /// Legacy 16-bit posit with es = 1 (pre-2022 draft), used by the ablation
    /// study only.
    Posit16Es1, "posit16(es=1)", posit, posit::POSIT16_ES1,
    posit::POSIT16_ES1.maxpos_pattern(), posit::POSIT16_ES1.minpos_pattern()
);

lut8_format!(
    /// 8-bit linear takum.
    Takum8, "takum8", takum, takum::TAKUM8,
    takum::TAKUM8.max_pattern(), takum::TAKUM8.min_pattern()
);
dec16_format!(
    /// 16-bit linear takum.
    Takum16, "takum16", takum, takum::TAKUM16,
    takum::TAKUM16.max_pattern(), takum::TAKUM16.min_pattern()
);
soft_format!(
    /// 32-bit linear takum.
    Takum32, u32, "takum32", 32, takum, takum::TAKUM32,
    takum::TAKUM32.max_pattern(), takum::TAKUM32.min_pattern()
);
soft_format!(
    /// 64-bit linear takum.
    Takum64, u64, "takum64", 64, takum, takum::TAKUM64,
    takum::TAKUM64.max_pattern(), takum::TAKUM64.min_pattern()
);

#[cfg(test)]
mod tests {
    use super::*;

    /// For formats whose precision p satisfies 2p + 2 <= 53, performing the
    /// operation in f64 and rounding to the format is exactly the correctly
    /// rounded format operation, so f64 serves as an oracle.
    fn check_against_f64_oracle<T: Real>(values: &[f64]) {
        for &a in values {
            for &b in values {
                // NaN results (e.g. overflow in E4M3) compare unequal in f64,
                // so compare through bit patterns of the canonicalized value.
                fn same(a: f64, b: f64) -> bool {
                    (a.is_nan() && b.is_nan()) || a == b
                }
                let ta = T::from_f64(a);
                let tb = T::from_f64(b);
                let (fa, fb) = (ta.to_f64(), tb.to_f64());
                assert!(
                    same((ta + tb).to_f64(), T::from_f64(fa + fb).to_f64()),
                    "{} + {} in {}",
                    fa,
                    fb,
                    T::NAME
                );
                assert!(
                    same((ta - tb).to_f64(), T::from_f64(fa - fb).to_f64()),
                    "{} - {} in {}",
                    fa,
                    fb,
                    T::NAME
                );
                assert!(
                    same((ta * tb).to_f64(), T::from_f64(fa * fb).to_f64()),
                    "{} * {} in {}",
                    fa,
                    fb,
                    T::NAME
                );
                if !tb.is_zero() {
                    assert!(
                        same((ta / tb).to_f64(), T::from_f64(fa / fb).to_f64()),
                        "{} / {} in {}",
                        fa,
                        fb,
                        T::NAME
                    );
                }
            }
            let ta = T::from_f64(a.abs());
            assert_eq!(ta.sqrt().to_f64(), T::from_f64(ta.to_f64().sqrt()).to_f64());
        }
    }

    #[test]
    fn narrow_formats_match_f64_oracle() {
        let vals = [
            0.0, 1.0, -1.0, 0.5, 2.0, 3.0, -3.5, 7.0, 0.125, 100.0, -250.0, 0.013, 1.0e-3, 96.0,
            1.0 / 3.0, 0.0625, -17.25,
        ];
        check_against_f64_oracle::<F16>(&vals);
        check_against_f64_oracle::<Bf16>(&vals);
        check_against_f64_oracle::<E4M3>(&vals);
        check_against_f64_oracle::<E5M2>(&vals);
        check_against_f64_oracle::<Posit8>(&vals);
        check_against_f64_oracle::<Posit16>(&vals);
        check_against_f64_oracle::<Takum8>(&vals);
        check_against_f64_oracle::<Takum16>(&vals);
    }

    #[test]
    fn wide_formats_exact_on_integers() {
        // Keep the products below 2^18 so that they are exactly representable
        // in posit32/takum32 even with their tapered fraction fields.
        fn exact_int_ops<T: Real>() {
            for a in [-37i64, -4, -1, 0, 1, 2, 3, 12, 100, 511] {
                for b in [-11i64, -2, 1, 5, 64, 300] {
                    let ta = T::from_f64(a as f64);
                    let tb = T::from_f64(b as f64);
                    assert_eq!((ta + tb).to_f64(), (a + b) as f64, "{}", T::NAME);
                    assert_eq!((ta - tb).to_f64(), (a - b) as f64, "{}", T::NAME);
                    assert_eq!((ta * tb).to_f64(), (a * b) as f64, "{}", T::NAME);
                }
            }
        }
        exact_int_ops::<Posit32>();
        exact_int_ops::<Posit64>();
        exact_int_ops::<Takum32>();
        exact_int_ops::<Takum64>();
    }

    #[test]
    fn epsilon_ordering_matches_the_paper_narrative() {
        // Precision near 1: takums trade a little precision near one for
        // dynamic range; bfloat16 is the coarsest 16-bit format.
        let eps_f16 = F16::epsilon().to_f64();
        let eps_bf16 = Bf16::epsilon().to_f64();
        let eps_p16 = Posit16::epsilon().to_f64();
        let eps_t16 = Takum16::epsilon().to_f64();
        assert_eq!(eps_f16, 2f64.powi(-10));
        assert_eq!(eps_bf16, 2f64.powi(-7));
        // With es = 2 both tapered 16-bit formats carry 11 fraction bits at 1.
        assert_eq!(eps_p16, 2f64.powi(-11));
        assert_eq!(eps_t16, 2f64.powi(-11));
        assert!(eps_p16 < eps_f16 && eps_t16 < eps_f16 && eps_f16 < eps_bf16);
        // 64-bit: posit64 and takum64 both carry 59 fraction bits near one,
        // float64 has 52.
        assert_eq!(Posit64::epsilon().to_f64(), 2f64.powi(-59));
        assert_eq!(Takum64::epsilon().to_f64(), 2f64.powi(-59));
        assert_eq!(f64::EPSILON, 2f64.powi(-52));
    }

    #[test]
    fn max_and_min_values() {
        assert_eq!(E4M3::max_finite().to_f64(), 448.0);
        assert_eq!(E5M2::max_finite().to_f64(), 57344.0);
        assert_eq!(F16::max_finite().to_f64(), 65504.0);
        assert_eq!(Bf16::max_finite().to_f64(), 3.3895313892515355e38);
        assert_eq!(Posit16::max_finite().to_f64(), 2f64.powi(56));
        assert_eq!(Posit8::max_finite().to_f64(), 2f64.powi(24));
        assert!(Takum16::max_finite().to_f64() > 1e75);
        assert_eq!(E4M3::min_positive().to_f64(), 2f64.powi(-9));
        assert_eq!(E5M2::min_positive().to_f64(), 2f64.powi(-16));
        assert_eq!(Posit16::min_positive().to_f64(), 2f64.powi(-56));
    }

    #[test]
    fn nan_and_comparison_semantics() {
        // The negated comparisons are the point: NaN must be unordered.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn check<T: Real>() {
            let nan = T::from_f64(f64::NAN);
            assert!(nan.is_nan(), "{}", T::NAME);
            assert!(nan != nan, "{}", T::NAME);
            assert!(!(nan < T::one()) && !(nan > T::one()), "{}", T::NAME);
            assert!((T::one() / T::zero()).is_nan() || !(T::one() / T::zero()).is_finite());
            assert!(T::from_f64(-2.0) < T::from_f64(-1.0));
            assert!(T::from_f64(-1.0) < T::zero());
            assert!(T::zero() < T::min_positive());
            assert_eq!(T::from_f64(2.5).max(T::from_f64(-3.0)).to_f64(), 2.5);
        }
        check::<F16>();
        check::<Bf16>();
        check::<E4M3>();
        check::<E5M2>();
        check::<Posit8>();
        check::<Posit16>();
        check::<Posit32>();
        check::<Posit64>();
        check::<Takum8>();
        check::<Takum16>();
        check::<Takum32>();
        check::<Takum64>();
    }

    #[test]
    fn posit_and_takum_saturate_instead_of_overflowing() {
        let big = Posit8::from_f64(1e6);
        assert_eq!((big * big).to_f64(), Posit8::max_finite().to_f64());
        let tiny = Posit8::from_f64(1e-6);
        assert_eq!((tiny * tiny).to_f64(), Posit8::min_positive().to_f64());
        let big = Takum8::from_f64(1e40);
        assert_eq!((big * big).to_f64(), Takum8::max_finite().to_f64());
        // IEEE-style formats do overflow.
        let big = E5M2::from_f64(3e4);
        assert!(!(big * big).is_finite());
        let big = Bf16::from_f64(1e30);
        assert!(!(big * big).is_finite());
    }

    #[test]
    fn display_and_debug() {
        let x = Posit16::from_f64(1.5);
        assert_eq!(format!("{x}"), "1.5");
        assert!(format!("{x:?}").contains("posit16"));
        let y = Takum8::from_f64(-2.0);
        assert_eq!(format!("{y}"), "-2");
    }

    #[test]
    fn backends_match_reference_on_samples() {
        // Spot check that the table-served operators agree with the public
        // soft-float reference methods (the exhaustive sweep lives in
        // tests/lut_exhaustive.rs).
        for a in 0..=255u8 {
            let (x8, y8) = (Takum8::from_bits(a), Takum8::from_bits(a.wrapping_mul(37)));
            assert_eq!((x8 + y8).to_bits(), x8.softfloat_add(y8).to_bits());
            assert_eq!((x8 * y8).to_bits(), x8.softfloat_mul(y8).to_bits());
            let x16 = Posit16::from_bits((a as u16) << 7 | 0x1d);
            assert_eq!(x16.to_f64(), x16.softfloat_to_f64());
        }
    }
}
