//! Format-independent arithmetic kernels.
//!
//! The four basic operations and the square root are computed on
//! [`Unpacked`] values with 128-bit intermediates, producing a normalized
//! 64-bit significand plus a sticky flag.  A format codec then performs the
//! final rounding, so every emulated format — including 64-bit posits and
//! takums whose significands exceed what `f64` can carry — obtains correctly
//! rounded results from a single kernel.

use crate::unpacked::{Class, Unpacked};

/// Right shift of a 128-bit quantity that "jams" all shifted-out bits into
/// the least significant retained bit (Berkeley SoftFloat's `shiftRightJam`).
/// This keeps rounding decisions correct after alignment shifts.
#[inline]
fn shift_right_jam_128(x: u128, shift: u32) -> u128 {
    if shift == 0 {
        x
    } else if shift < 128 {
        let dropped = x & ((1u128 << shift) - 1);
        (x >> shift) | (dropped != 0) as u128
    } else {
        (x != 0) as u128
    }
}

/// Addition of two values (signs included).
#[inline]
pub fn add(a: &Unpacked, b: &Unpacked) -> Unpacked {
    use Class::*;
    match (a.class, b.class) {
        (Nan, _) | (_, Nan) => Unpacked::nan(),
        (Inf, Inf) => {
            if a.sign == b.sign {
                Unpacked::inf(a.sign)
            } else {
                Unpacked::nan()
            }
        }
        (Inf, _) => Unpacked::inf(a.sign),
        (_, Inf) => Unpacked::inf(b.sign),
        (Zero, Zero) => Unpacked::zero(a.sign && b.sign),
        (Zero, _) => *b,
        (_, Zero) => *a,
        (Finite, Finite) => add_finite(a, b),
    }
}

#[inline]
fn add_finite(a: &Unpacked, b: &Unpacked) -> Unpacked {
    // Order so `hi` has the larger magnitude.
    let (hi, lo) = if a.cmp_magnitude(b) == core::cmp::Ordering::Less { (b, a) } else { (a, b) };
    let d = (hi.exp - lo.exp) as u32;
    // Place the leading bit of `hi` at frame position 126 so that an addition
    // carry still fits in the 128-bit frame.
    let hi_frame = (hi.sig as u128) << 63;
    let lo_frame = shift_right_jam_128((lo.sig as u128) << 63, d.min(127));
    if hi.sign == lo.sign {
        let sum = hi_frame + lo_frame;
        Unpacked::from_frame(hi.sign, hi.exp, sum, false)
    } else {
        let diff = hi_frame - lo_frame;
        if diff == 0 {
            // Exact cancellation; IEEE round-to-nearest produces +0.
            return Unpacked::zero(false);
        }
        Unpacked::from_frame(hi.sign, hi.exp, diff, false)
    }
}

/// Subtraction `a - b`.
#[inline]
pub fn sub(a: &Unpacked, b: &Unpacked) -> Unpacked {
    let mut nb = *b;
    if nb.class != Class::Nan {
        nb.sign = !nb.sign;
    }
    add(a, &nb)
}

/// Multiplication.
#[inline]
pub fn mul(a: &Unpacked, b: &Unpacked) -> Unpacked {
    use Class::*;
    let sign = a.sign ^ b.sign;
    match (a.class, b.class) {
        (Nan, _) | (_, Nan) => Unpacked::nan(),
        (Inf, Zero) | (Zero, Inf) => Unpacked::nan(),
        (Inf, _) | (_, Inf) => Unpacked::inf(sign),
        (Zero, _) | (_, Zero) => Unpacked::zero(sign),
        (Finite, Finite) => {
            let prod = (a.sig as u128) * (b.sig as u128);
            // prod in [2^126, 2^128); its leading bit at 126 corresponds to
            // exponent a.exp + b.exp.
            Unpacked::from_frame(sign, a.exp + b.exp, prod, false)
        }
    }
}

/// Division `a / b`.
#[inline]
pub fn div(a: &Unpacked, b: &Unpacked) -> Unpacked {
    use Class::*;
    let sign = a.sign ^ b.sign;
    match (a.class, b.class) {
        (Nan, _) | (_, Nan) => Unpacked::nan(),
        (Inf, Inf) | (Zero, Zero) => Unpacked::nan(),
        (Inf, _) => Unpacked::inf(sign),
        (_, Inf) => Unpacked::zero(sign),
        (Zero, _) => Unpacked::zero(sign),
        (_, Zero) => Unpacked::inf(sign),
        (Finite, Finite) => {
            let num = (a.sig as u128) << 64;
            let den = b.sig as u128;
            let q = num / den;
            let rem = num % den;
            // value = q * 2^(a.exp - b.exp - 64); leading bit at 126 would
            // correspond to frame_exp = a.exp - b.exp + 62.
            Unpacked::from_frame(sign, a.exp - b.exp + 62, q, rem != 0)
        }
    }
}

/// Integer square root of a 128-bit radicand (returns floor(sqrt(x))).
fn isqrt_u128(x: u128) -> u128 {
    if x == 0 {
        return 0;
    }
    // Initial estimate from floating point, then Newton iterations on
    // integers.  The estimate is within a few ulps, so four iterations are
    // ample for full convergence; the final adjustment loop guarantees the
    // floor property exactly.
    let mut r = (x as f64).sqrt() as u128 + 1;
    for _ in 0..6 {
        let next = (r + x / r) >> 1;
        if next >= r {
            break;
        }
        r = next;
    }
    while r.checked_mul(r).is_none_or(|rr| rr > x) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|rr| rr <= x) {
        r += 1;
    }
    r
}

/// Square root.
pub fn sqrt(a: &Unpacked) -> Unpacked {
    use Class::*;
    match a.class {
        Nan => Unpacked::nan(),
        Zero => Unpacked::zero(a.sign),
        Inf => {
            if a.sign {
                Unpacked::nan()
            } else {
                Unpacked::inf(false)
            }
        }
        Finite => {
            if a.sign {
                return Unpacked::nan();
            }
            // value = sig * 2^(exp - 63).  Write it as m * 2^(2k) with
            // m in [1, 4): for even exponents m = sig/2^63, for odd ones
            // m = sig/2^62.
            let (radicand, k) = if a.exp % 2 == 0 {
                ((a.sig as u128) << 63, a.exp / 2)
            } else {
                // Works for negative odd exponents too: (exp - 1) is even.
                ((a.sig as u128) << 64, (a.exp - 1) / 2)
            };
            let r = isqrt_u128(radicand); // in [2^63, 2^64)
            let rem = radicand - r * r;
            // value = r * 2^(k - 63); frame_exp = k + 63.
            Unpacked::from_frame(false, k + 63, r, rem != 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::{self, BINARY64};

    fn up(x: f64) -> Unpacked {
        ieee::decode(x.to_bits(), &BINARY64)
    }

    fn down(u: &Unpacked) -> f64 {
        f64::from_bits(ieee::encode(u, &BINARY64))
    }

    /// Check a binary op against native f64 on operands that make the f64
    /// result exact (small integers), so the comparison is exact.
    #[test]
    fn exact_small_integer_arithmetic() {
        for a in [-7.0f64, -3.0, -1.0, 0.0, 1.0, 2.0, 5.0, 12.0, 100.0] {
            for b in [-9.0f64, -2.0, -1.0, 0.5, 1.0, 3.0, 8.0, 64.0] {
                assert_eq!(down(&add(&up(a), &up(b))), a + b, "{a} + {b}");
                assert_eq!(down(&sub(&up(a), &up(b))), a - b, "{a} - {b}");
                assert_eq!(down(&mul(&up(a), &up(b))), a * b, "{a} * {b}");
                if b != 0.0 {
                    assert_eq!(down(&div(&up(a), &up(b))), a / b, "{a} / {b}");
                }
            }
        }
    }

    #[test]
    fn sqrt_matches_f64() {
        for x in [0.0f64, 1.0, 2.0, 4.0, 0.25, 9.0, 1e10, 1e-12, 3.5, 7.1] {
            assert_eq!(down(&sqrt(&up(x))), x.sqrt(), "sqrt({x})");
        }
        assert!(down(&sqrt(&up(-1.0))).is_nan());
    }

    #[test]
    fn special_values() {
        let inf = Unpacked::inf(false);
        let ninf = Unpacked::inf(true);
        let nan = Unpacked::nan();
        let one = up(1.0);
        assert!(add(&inf, &ninf).is_nan());
        assert_eq!(add(&inf, &one).class, Class::Inf);
        assert!(mul(&inf, &Unpacked::zero(false)).is_nan());
        assert!(div(&Unpacked::zero(false), &Unpacked::zero(false)).is_nan());
        assert_eq!(div(&one, &Unpacked::zero(false)).class, Class::Inf);
        assert_eq!(div(&one, &inf).class, Class::Zero);
        assert!(add(&nan, &one).is_nan());
        assert!(sqrt(&ninf).is_nan());
    }

    #[test]
    fn cancellation_is_exact() {
        let a = up(1.0 + 2f64.powi(-40));
        let b = up(1.0);
        let d = sub(&a, &b);
        assert_eq!(down(&d), 2f64.powi(-40));
        let z = sub(&b, &b);
        assert_eq!(z.class, Class::Zero);
    }

    #[test]
    fn isqrt_exactness() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(15), 3);
        assert_eq!(isqrt_u128(16), 4);
        assert_eq!(isqrt_u128(u128::MAX), (1u128 << 64) - 1);
        let v = (1u128 << 100) + 12345;
        let r = isqrt_u128(v);
        assert!(r * r <= v && (r + 1) * (r + 1) > v);
    }
}
