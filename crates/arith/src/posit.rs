//! Posit codec (Posit Standard 2022 parameterisation, generic in width and
//! exponent-field size).
//!
//! A posit bit pattern is sign, regime (a run of identical bits plus a
//! terminator), `es` exponent bits and fraction bits.  Negative values are
//! the two's complement of their magnitude's pattern; `0` and NaR
//! (`1000...0`) are the only special values.  Rounding is round-to-nearest,
//! ties to even, with saturation: a non-zero real value never rounds to zero
//! or NaR, values of magnitude above `maxpos` round to `maxpos` and below
//! `minpos` to `minpos`.

use crate::tapered::{compose_and_round, twos_complement, BitReader, Field};
use crate::unpacked::{Class, Unpacked};

/// Static description of a posit format.
#[derive(Clone, Copy, Debug)]
pub struct PositSpec {
    pub name: &'static str,
    pub bits: u32,
    pub es: u32,
}

impl PositSpec {
    pub const fn mask(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    pub const fn nar_pattern(&self) -> u64 {
        1u64 << (self.bits - 1)
    }

    pub const fn maxpos_pattern(&self) -> u64 {
        self.nar_pattern() - 1
    }

    pub const fn minpos_pattern(&self) -> u64 {
        1
    }

    /// Largest binary exponent: `maxpos = 2^max_exp`.
    pub const fn max_exp(&self) -> i32 {
        ((self.bits - 2) << self.es) as i32
    }
}

pub const POSIT8: PositSpec = PositSpec { name: "posit8", bits: 8, es: 2 };
pub const POSIT16: PositSpec = PositSpec { name: "posit16", bits: 16, es: 2 };
pub const POSIT32: PositSpec = PositSpec { name: "posit32", bits: 32, es: 2 };
pub const POSIT64: PositSpec = PositSpec { name: "posit64", bits: 64, es: 2 };

/// Legacy (pre-2022 draft) parameterisations, kept for the ablation study.
pub const POSIT8_ES0: PositSpec = PositSpec { name: "posit8(es=0)", bits: 8, es: 0 };
pub const POSIT16_ES1: PositSpec = PositSpec { name: "posit16(es=1)", bits: 16, es: 1 };

/// Decode a posit bit pattern (always exact).
#[inline]
pub fn decode(bits: u64, spec: &PositSpec) -> Unpacked {
    let bits = bits & spec.mask();
    if bits == 0 {
        return Unpacked::zero(false);
    }
    if bits == spec.nar_pattern() {
        return Unpacked::nan();
    }
    let sign = bits & spec.nar_pattern() != 0;
    let mag = if sign { twos_complement(bits, spec.bits) } else { bits };
    let body_len = spec.bits - 1;
    let body = mag & (spec.mask() >> 1);
    let mut r = BitReader::new(body, body_len);

    let first = (body >> (body_len - 1)) & 1;
    let run = r.run_length(first);
    let regime: i32 = if first == 1 { run as i32 - 1 } else { -(run as i32) };
    r.skip(run + 1); // the run plus its terminating bit (possibly past the end)

    let e = r.read_bits(spec.es) as i32;
    let frac_len = r.remaining();
    let frac = r.read_bits(frac_len);

    let exp = (regime << spec.es) + e;
    let sig = (1u64 << 63) | if frac_len > 0 { frac << (63 - frac_len) } else { 0 };
    Unpacked::finite(sign, exp, sig)
}

/// Encode an unpacked value as a posit with correct rounding and saturation.
#[inline]
pub fn encode(u: &Unpacked, spec: &PositSpec) -> u64 {
    match u.class {
        Class::Nan | Class::Inf => return spec.nar_pattern(),
        Class::Zero => return 0,
        Class::Finite => {}
    }
    let emax = spec.max_exp();
    // Saturation: |x| >= maxpos rounds to maxpos, |x| < minpos rounds to
    // minpos (never to zero or NaR).
    let body = if u.exp >= emax {
        spec.maxpos_pattern()
    } else if u.exp < -emax {
        spec.minpos_pattern()
    } else {
        let step = 1i32 << spec.es;
        let regime = u.exp.div_euclid(step);
        let e = u.exp.rem_euclid(step) as u64;

        let regime_field = if regime >= 0 {
            // (regime + 1) ones followed by a zero.
            let len = regime as u32 + 2;
            Field::new(len, ((1u64 << (regime as u32 + 1)) - 1) << 1)
        } else {
            // (-regime) zeros followed by a one.
            Field::new((-regime) as u32 + 1, 1)
        };
        let exp_field = Field::new(spec.es, e);
        let frac_field = Field::new(63, u.sig & ((1u64 << 63) - 1));

        let word = compose_and_round(
            &[regime_field, exp_field, frac_field],
            u.sticky,
            spec.bits - 1,
        );
        word.clamp(spec.minpos_pattern(), spec.maxpos_pattern())
    };
    if u.sign {
        twos_complement(body, spec.bits)
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::{pack_f64, unpack_f64};

    fn to_f64(bits: u64, spec: &PositSpec) -> f64 {
        pack_f64(&decode(bits, spec))
    }

    fn from_f64(x: f64, spec: &PositSpec) -> u64 {
        encode(&unpack_f64(x), spec)
    }

    #[test]
    fn known_posit8_values() {
        // Standard posit with es = 2: 0x40 is 1.0, 0x01 is minpos = 2^-24,
        // 0x7F is maxpos = 2^24.
        assert_eq!(to_f64(0x40, &POSIT8), 1.0);
        assert_eq!(to_f64(0x01, &POSIT8), 2f64.powi(-24));
        assert_eq!(to_f64(0x7F, &POSIT8), 2f64.powi(24));
        assert_eq!(to_f64(0xC0, &POSIT8), -1.0);
        assert!(to_f64(0x80, &POSIT8).is_nan());
        assert_eq!(to_f64(0x00, &POSIT8), 0.0);
        // 0x48: sign 0, regime "10" (r=0), exp 01, frac 000 -> 2^1 = 2.
        assert_eq!(to_f64(0x48, &POSIT8), 2.0);
        // 0x44: exp bits 00, frac 100 -> 1.5
        assert_eq!(to_f64(0x44, &POSIT8), 1.5);
    }

    #[test]
    fn known_posit16_values() {
        assert_eq!(to_f64(0x4000, &POSIT16), 1.0);
        assert_eq!(to_f64(0x0001, &POSIT16), 2f64.powi(-56));
        assert_eq!(to_f64(0x7FFF, &POSIT16), 2f64.powi(56));
        assert_eq!(from_f64(1.0, &POSIT16), 0x4000);
        assert_eq!(from_f64(-1.0, &POSIT16), 0xC000);
        // 3.0 = 1.1b * 2^1: regime "10", exp "01", frac "1" -> 0x4C00.
        assert_eq!(from_f64(3.0, &POSIT16), 0x4C00);
        assert_eq!(to_f64(0x4C00, &POSIT16), 3.0);
    }

    #[test]
    fn saturation_rules() {
        // Values beyond maxpos saturate to maxpos, never NaR.
        assert_eq!(from_f64(1e30, &POSIT8), 0x7F);
        assert_eq!(from_f64(-1e30, &POSIT8), 0x81);
        // Values below minpos round to minpos, never zero.
        assert_eq!(from_f64(1e-30, &POSIT8), 0x01);
        assert_eq!(from_f64(-1e-30, &POSIT8), 0xFF);
        // Infinity maps to NaR.
        assert_eq!(from_f64(f64::INFINITY, &POSIT16), POSIT16.nar_pattern());
        assert_eq!(from_f64(f64::NAN, &POSIT16), POSIT16.nar_pattern());
    }

    #[test]
    fn roundtrip_all_posit8_and_16_patterns() {
        for spec in [&POSIT8, &POSIT16, &POSIT8_ES0, &POSIT16_ES1] {
            for bits in 0..(1u64 << spec.bits) {
                let u = decode(bits, spec);
                if u.is_nan() {
                    continue;
                }
                assert_eq!(encode(&u, spec), bits, "{} pattern {bits:#x}", spec.name);
            }
        }
    }

    #[test]
    fn roundtrip_sampled_posit32_and_64_patterns() {
        for spec in [&POSIT32, &POSIT64] {
            let step = if spec.bits == 32 { 655_357 } else { 0x123_4567_89AB_CD41 };
            let mut bits: u64 = 1;
            for _ in 0..20_000 {
                bits = (bits.wrapping_mul(6364136223846793005).wrapping_add(step)) & spec.mask();
                let u = decode(bits, spec);
                if u.is_nan() || u.is_zero() {
                    continue;
                }
                assert_eq!(encode(&u, spec), bits, "{} pattern {bits:#x}", spec.name);
            }
        }
    }

    #[test]
    fn monotone_in_pattern() {
        // Posit values are monotone in the signed integer interpretation of
        // their pattern; check the positive half of posit16 exhaustively.
        let mut prev = to_f64(1, &POSIT16);
        for bits in 2..0x8000u64 {
            let v = to_f64(bits, &POSIT16);
            assert!(v > prev, "pattern {bits:#x}: {v} <= {prev}");
            prev = v;
        }
    }

    #[test]
    fn negation_is_twos_complement() {
        for bits in 1..0x8000u64 {
            let v = to_f64(bits, &POSIT16);
            let n = to_f64(twos_complement(bits, 16), &POSIT16);
            assert_eq!(v, -n, "pattern {bits:#x}");
        }
    }

    #[test]
    fn legacy_es_parameterisation() {
        // posit8 with es = 0: useed = 2, maxpos = 2^6 = 64, 1.0 = 0x40.
        assert_eq!(to_f64(0x40, &POSIT8_ES0), 1.0);
        assert_eq!(to_f64(0x7F, &POSIT8_ES0), 64.0);
        assert_eq!(to_f64(0x01, &POSIT8_ES0), 1.0 / 64.0);
        // posit16 with es = 1: maxpos = 2^28.
        assert_eq!(to_f64(0x7FFF, &POSIT16_ES1), 2f64.powi(28));
    }
}
