//! Double-double ("float128 substitute") reference arithmetic.
//!
//! The paper computes its reference eigenpairs in IEEE binary128.  This crate
//! substitutes a classical double-double type: an unevaluated sum of two
//! `f64` values giving ~106 significand bits (eps ≈ 2.5e-33), implemented
//! with the error-free transformations of Dekker and Knuth.  That is far more
//! precision than needed to serve as a reference for the 64-bit formats under
//! study (whose best relative errors are ≈ 1e-17); see DESIGN.md, S1.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Double-double value: `hi + lo` with `|lo| <= ulp(hi)/2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dd {
    pub hi: f64,
    pub lo: f64,
}

/// Error-free transformation: `a + b = s + e` exactly (Knuth two-sum).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free transformation for `|a| >= |b|` (Dekker quick-two-sum).
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free transformation: `a * b = p + e` exactly (via fused multiply-add).
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

impl Dd {
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// Machine epsilon of the double-double representation (2^-105).
    pub const EPSILON: Dd = Dd { hi: 2.465190328815662e-32, lo: 0.0 };

    #[inline]
    pub fn new(hi: f64, lo: f64) -> Self {
        let (s, e) = quick_two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Exact sum of two `f64` values as a double-double.
    #[inline]
    pub fn from_sum(a: f64, b: f64) -> Self {
        let (s, e) = two_sum(a, b);
        Dd { hi: s, lo: e }
    }

    /// Exact product of two `f64` values as a double-double.
    #[inline]
    pub fn from_prod(a: f64, b: f64) -> Self {
        let (p, e) = two_prod(a, b);
        Dd { hi: p, lo: e }
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi
    }

    pub fn abs(self) -> Self {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    pub fn is_nan(self) -> bool {
        self.hi.is_nan() || self.lo.is_nan()
    }

    pub fn is_finite(self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }

    pub fn is_zero(self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }

    pub fn sqrt(self) -> Self {
        if self.is_zero() {
            return Dd::ZERO;
        }
        if self.hi < 0.0 {
            return Dd { hi: f64::NAN, lo: f64::NAN };
        }
        // One Newton step on x = sqrt(a) starting from the f64 estimate:
        // x' = (x + a/x) / 2, carried out in double-double, is accurate to
        // full double-double precision.
        let x = Dd::from_f64(self.hi.sqrt());
        let x = (x + self / x) * Dd::from_f64(0.5);
        (x + self / x) * Dd::from_f64(0.5)
    }

    /// Multiply by a power of two (exact).
    pub fn scale2(self, e: i32) -> Self {
        let f = 2f64.powi(e);
        Dd { hi: self.hi * f, lo: self.lo * f }
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }
}

impl Add for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, o: Dd) -> Dd {
        // Accurate (IEEE-style) double-double addition.
        let (s1, s2) = two_sum(self.hi, o.hi);
        let (t1, t2) = two_sum(self.lo, o.lo);
        let (s1, s2) = quick_two_sum(s1, s2 + t1);
        let (s1, s2) = quick_two_sum(s1, s2 + t2);
        Dd { hi: s1, lo: s2 }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, o: Dd) -> Dd {
        self + (-o)
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, o: Dd) -> Dd {
        let (p1, p2) = two_prod(self.hi, o.hi);
        let p2 = p2 + self.hi * o.lo + self.lo * o.hi;
        let (s, e) = quick_two_sum(p1, p2);
        Dd { hi: s, lo: e }
    }
}

impl Div for Dd {
    type Output = Dd;
    fn div(self, o: Dd) -> Dd {
        // Long division with three correction terms (Bailey's accurate
        // double-double division).
        let q1 = self.hi / o.hi;
        if !q1.is_finite() {
            return Dd { hi: q1, lo: 0.0 };
        }
        let r = self - o * Dd::from_f64(q1);
        let q2 = r.hi / o.hi;
        let r = r - o * Dd::from_f64(q2);
        let q3 = r.hi / o.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd::new(s, e + q3)
    }
}

impl AddAssign for Dd {
    fn add_assign(&mut self, o: Dd) {
        *self = *self + o;
    }
}
impl SubAssign for Dd {
    fn sub_assign(&mut self, o: Dd) {
        *self = *self - o;
    }
}
impl MulAssign for Dd {
    fn mul_assign(&mut self, o: Dd) {
        *self = *self * o;
    }
}
impl DivAssign for Dd {
    fn div_assign(&mut self, o: Dd) {
        *self = *self / o;
    }
}

impl PartialEq for Dd {
    fn eq(&self, o: &Dd) -> bool {
        if self.is_nan() || o.is_nan() {
            return false;
        }
        self.hi == o.hi && self.lo == o.lo
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, o: &Dd) -> Option<Ordering> {
        if self.is_nan() || o.is_nan() {
            return None;
        }
        match self.hi.partial_cmp(&o.hi)? {
            Ordering::Equal => self.lo.partial_cmp(&o.lo),
            ord => Some(ord),
        }
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displaying the leading component is enough for diagnostics.
        write!(f, "{:e}", self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eft_identities() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16 + 1.0);
        assert_eq!(s + e, 1e16 + 1.0); // representable exactly here
        // The error term recovers what f64 addition loses.
        let (s, e) = two_sum(1.0, 1e-20);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-20);
        let (p, e) = two_prod(1e8 + 1.0, 1e8 + 1.0);
        // (1e8+1)^2 = 1e16 + 2e8 + 1; the +1 is lost in f64.
        assert_eq!(p + e, (1e8 + 1.0) * (1e8 + 1.0));
        assert_eq!(e, 1.0);
    }

    #[test]
    fn addition_keeps_small_terms() {
        let a = Dd::from_f64(1.0);
        let b = Dd::from_f64(1e-25);
        let c = a + b;
        assert_eq!(c.hi, 1.0);
        assert_eq!(c.lo, 1e-25);
        let d = c - a;
        assert_eq!(d.hi, 1e-25);
    }

    #[test]
    fn division_is_accurate() {
        let x = Dd::from_f64(1.0) / Dd::from_f64(3.0);
        let back = x * Dd::from_f64(3.0);
        let err = (back - Dd::ONE).abs();
        assert!(err.hi < 1e-31, "1/3*3 error {}", err.hi);
    }

    #[test]
    fn sqrt_is_accurate() {
        let two = Dd::from_f64(2.0);
        let r = two.sqrt();
        let err = (r * r - two).abs();
        assert!(err.hi < 1e-31, "sqrt(2)^2 error {}", err.hi);
        assert!(Dd::from_f64(-1.0).sqrt().is_nan());
        assert!(Dd::ZERO.sqrt().is_zero());
    }

    #[test]
    fn comparisons() {
        let a = Dd::from_f64(1.0) + Dd::from_f64(1e-30);
        let b = Dd::from_f64(1.0);
        assert!(a > b);
        assert!(b < a);
        assert_ne!(a, b);
        assert_eq!(b, Dd::ONE);
        assert!(!(Dd { hi: f64::NAN, lo: 0.0 } == Dd::ONE));
    }

    #[test]
    fn pi_to_double_double() {
        // pi as hi+lo, check that (pi_dd - pi_hi) recovers the low part.
        let pi = Dd::new(core::f64::consts::PI, 1.2246467991473532e-16);
        let lo = pi - Dd::from_f64(core::f64::consts::PI);
        assert!((lo.hi - 1.2246467991473532e-16).abs() < 1e-32);
    }
}
