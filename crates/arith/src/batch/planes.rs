//! Struct-of-arrays plane stores and the lane-blocked kernels over them.
//!
//! [`super::DecodedSlice`] keeps decoded shadows as an array of 24-byte
//! [`Unpacked`] structs; every kernel element load then shuffles five
//! fields through memory.  The planes layout splits the decoded form into
//! separate arrays — one `u8` class/sign tag, one `i32` exponent, one `u64`
//! significand per element (13 B instead of 24, and every plane a dense
//! stream) — and the kernels walk them in fixed-width lane blocks
//! ([`Lanes`]) of plain unrolled integer arithmetic.
//!
//! ## Fused combine-and-round
//!
//! The decoded-domain ops (`dec_add`/`dec_mul`) compute a 128-bit kernel
//! frame, truncate-and-jam it into a canonical 64-bit significand plus a
//! sticky flag ([`Unpacked::from_frame`]), and round that to the format's
//! fraction length (`super::round`).  The planes kernels for the tapered
//! formats fuse the two steps, rounding the frame **directly** at the
//! target fraction position.  This is exactly equal, not approximately:
//! `from_frame` performs no rounding, so with `drop >= 1` bits falling
//! below the fraction, the two-step round bit is a frame bit above the
//! 64-bit truncation boundary, and the two-step sticky (low frame bits
//! OR-ed together) contributes to the fused comparison `rem > half` /
//! `rem == half` in precisely the same way: writing the dropped frame bits
//! as `rem = rem64 * 2^k + low`, `rem > half  <=>  rem64 > half64 ||
//! (rem64 == half64 && low != 0)`, which is the two-step's
//! `rem64 > half64 || (rem64 == half64 && sticky)` tie path.  The
//! differential suites assert the equality over every corpus, and
//! `LPA_KERNEL_BATCH=scalar` keeps the reference path runnable end to end.
//!
//! Which fused rounder applies is the format's [`RoundPlan`]
//! ([`super::BatchReal::ROUND`]); formats without one (`RoundPlan::Generic`)
//! route each element through `dec_add`/`dec_mul`, so every `BatchReal`
//! format has a correct planes path.

// The lane-blocked kernels index several planes jointly by one lane/element
// counter; rewriting them as zipped iterators would obscure the accumulation
// order the bit-identity contract is defined over.
#![allow(clippy::needless_range_loop)]

use crate::unpacked::{Class, Unpacked};

use super::lanes::{kernel_lanes, KernelLanes, Lanes};
use super::round::RoundPlan;
use super::{BatchReal, DecodedSlice};

const CLASS_MASK: u8 = 0b011;
/// Set in the tag exactly for the Inf and NaN classes — `tag & 0b010 == 0`
/// means "zero or finite", the classes the fast paths handle inline.
const CLASS_SPECIAL_BIT: u8 = 0b010;
const SIGN_BIT: u8 = 0b100;
const TAG_ZERO: u8 = 0;
const TAG_FINITE: u8 = 1;
const TAG_INF: u8 = 2;
const TAG_NAN: u8 = 3;

/// One decoded element in plane (tag/exp/sig) form — the register-level
/// currency of the kernels.  Always canonical: `sticky` is structurally
/// absent because decoders and rounders never produce it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Elt {
    tag: u8,
    exp: i32,
    sig: u64,
}

impl Elt {
    /// The formats' unsigned zero.
    pub(crate) const ZERO: Elt = Elt { tag: TAG_ZERO, exp: 0, sig: 0 };

    #[inline(always)]
    fn finite(sign: bool, exp: i32, sig: u64) -> Elt {
        debug_assert!(sig >> 63 == 1, "significand must be normalized");
        Elt { tag: TAG_FINITE | ((sign as u8) << 2), exp, sig }
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        self.tag & CLASS_MASK == TAG_FINITE
    }

    #[inline(always)]
    fn sign(self) -> bool {
        self.tag & SIGN_BIT != 0
    }

    #[inline(always)]
    pub(crate) fn from_unpacked(u: &Unpacked) -> Elt {
        debug_assert!(!u.sticky, "plane stores hold canonical (sticky-free) values");
        let class = match u.class {
            Class::Zero => TAG_ZERO,
            Class::Finite => TAG_FINITE,
            Class::Inf => TAG_INF,
            Class::Nan => TAG_NAN,
        };
        Elt { tag: class | ((u.sign as u8) << 2), exp: u.exp, sig: u.sig }
    }

    #[inline(always)]
    pub(crate) fn to_unpacked(self) -> Unpacked {
        let class = match self.tag & CLASS_MASK {
            TAG_ZERO => Class::Zero,
            TAG_FINITE => Class::Finite,
            TAG_INF => Class::Inf,
            _ => Class::Nan,
        };
        Unpacked { class, sign: self.sign(), exp: self.exp, sig: self.sig, sticky: false }
    }
}

/// The normalized result of a combine stage before rounding: `sig` with
/// its leading bit at 63 (or zero for an exact cancellation), plus the
/// sticky OR of every true result bit below it.  Equivalent to
/// [`Unpacked::from_frame`]'s output, computed without touching `u128`
/// outside the multiply itself: because canonical significands carry at
/// least four zero low bits and the round position always sits above the
/// 64-bit window when anything was shifted out (see the module docs), the
/// below-window bits only ever matter as the sticky flag.
struct Parts {
    sign: bool,
    exp: i32,
    sig: u64,
    sticky: bool,
}

/// `a * b` of two finite elements, unrounded.
#[inline(always)]
fn mul_parts(a: Elt, b: Elt) -> Parts {
    let prod = (a.sig as u128) * (b.sig as u128);
    let hi = (prod >> 64) as u64;
    let lo = prod as u64;
    // The product of two [1, 2) significands is in [1, 4): one
    // normalization case, selected branch-free.
    let c = (hi >> 63) as u32;
    let sig = if c == 1 { hi } else { (hi << 1) | (lo >> 63) };
    let sticky = (lo << (1 - c)) != 0;
    Parts {
        sign: (a.tag ^ b.tag) & SIGN_BIT != 0,
        exp: a.exp + b.exp + c as i32,
        sig,
        sticky,
    }
}

/// `a + b` of two finite elements, unrounded (`sig == 0` ⇔ exact
/// cancellation).  Branch-free on the data-dependent decisions: the
/// operand swap and the sign mix flip ~randomly in real dot products, and
/// a mispredict costs more than the whole aligned add — both are computed
/// as selects instead.
#[inline(always)]
fn add_parts(a: Elt, b: Elt) -> Parts {
    // Order so `hi` has the larger magnitude.  The (exp, sig) lexicographic
    // compare (exactly `Unpacked::cmp_magnitude`) is one i128 key compare:
    // `exp * 2^64 + sig` is monotone in (exp, sig) for negative exponents
    // too.  Per-field selects keep the swap a cmov, not a branch.
    let ka = ((a.exp as i128) << 64) | a.sig as i128;
    let kb = ((b.exp as i128) << 64) | b.sig as i128;
    let swap = kb > ka;
    let hi_tag = if swap { b.tag } else { a.tag };
    let hi_exp = if swap { b.exp } else { a.exp };
    let hi_sig = if swap { b.sig } else { a.sig };
    let lo_exp = if swap { a.exp } else { b.exp };
    let lo_sig = if swap { a.sig } else { b.sig };
    let lo_tag = if swap { a.tag } else { b.tag };

    let d = ((hi_exp - lo_exp) as u32).min(63);
    // One guard position: the pre-shift by 1 is exact (canonical sigs have
    // zero low bits) and leaves room for the same-sign carry.
    let h = hi_sig >> 1;
    let ls = (lo_sig >> 1) >> d;
    // The bits of `lo_sig` dropped by the total shift `d + 1`, jammed.
    let dropped = lo_sig << (63 - d);
    let sticky = dropped != 0;
    // Conditional two's-complement negate folds the same-sign /
    // opposite-sign split into one add (`(t ^ m) - m = -t` with `m`
    // all-ones); the dropped bits borrow out of the visible window on a
    // subtraction, never carry into it on an addition.  The difference
    // never wraps because `hi` has the larger magnitude.
    let differ = (hi_tag ^ lo_tag) & SIGN_BIT != 0;
    let m = (differ as u64).wrapping_neg();
    let t = ls + (sticky && differ) as u64;
    let sum = h.wrapping_add((t ^ m).wrapping_sub(m));
    if sum == 0 {
        // Exact cancellation (`sticky` is provably clear here: bits are
        // only ever dropped when the magnitudes differ by ≥ 2^4).
        return Parts { sign: false, exp: 0, sig: 0, sticky: false };
    }
    let lz = sum.leading_zeros();
    Parts {
        sign: hi_tag & SIGN_BIT != 0,
        exp: hi_exp + 1 - lz as i32,
        sig: sum << lz,
        sticky,
    }
}

/// Fused posit round of an unrounded combine result — `round::posit`
/// applied to the parts directly, branch for branch.
#[inline(always)]
fn round_parts_posit(p: Parts, spec: &crate::posit::PositSpec) -> Elt {
    debug_assert!(p.sig != 0);
    let emax = spec.max_exp();
    if p.exp >= emax {
        return Elt::finite(p.sign, emax, 1 << 63);
    }
    if p.exp < -emax {
        return Elt::finite(p.sign, -emax, 1 << 63);
    }
    let regime = p.exp >> spec.es;
    let regime_len = ((regime ^ (regime >> 31)) + 2) as u32;
    let avail = (spec.bits - 1).saturating_sub(regime_len);
    if avail <= spec.es {
        return posit_round_defer(p, spec);
    }
    let frac_len = avail - spec.es;
    let (exp, sig) = super::round::round_finite_at(p.exp, p.sig, p.sticky, frac_len);
    Elt::finite(p.sign, exp, sig)
}

/// Truncated exponent field: defer to the reference composition, exactly
/// as `round::posit` does.  Outlined so the range extremes (and their
/// by-reference argument traffic) stay out of the hot loop body.
#[cold]
#[inline(never)]
fn posit_round_defer(p: Parts, spec: &crate::posit::PositSpec) -> Elt {
    let u = Unpacked {
        class: Class::Finite,
        sign: p.sign,
        exp: p.exp,
        sig: p.sig,
        sticky: p.sticky,
    };
    Elt::from_unpacked(&crate::posit::decode(crate::posit::encode(&u, spec), spec))
}

/// `(spec.bits - 1).saturating_sub(4 + r(c))` — the fraction length a
/// takum's characteristic prefix leaves — for every in-range
/// characteristic, indexed by `c + 256`.  The exponent-to-shift-amount
/// arithmetic sits on the loop-carried dependency chain of every
/// accumulation (the rounded exponent feeds the next add's magnitude
/// compare), so one L1 load beats recomputing the `leading_zeros` tower
/// each round.
const fn takum_avail_table(bits: u32) -> [u8; 512] {
    let mut t = [0u8; 512];
    let mut i = 0usize;
    while i < 512 {
        let c = i as i32 - 256;
        if c >= crate::takum::TakumSpec::MIN_CHARACTERISTIC
            && c <= crate::takum::TakumSpec::MAX_CHARACTERISTIC
        {
            let a = (if c >= 0 { c + 1 } else { -c }) as u32;
            let r = 31 - a.leading_zeros();
            t[i] = (bits - 1).saturating_sub(4 + r) as u8;
        }
        i += 1;
    }
    t
}

/// One [`takum_avail_table`] per takum width, ordered by `bits.ilog2() - 3`.
static TAKUM_AVAIL: [[u8; 512]; 4] =
    [takum_avail_table(8), takum_avail_table(16), takum_avail_table(32), takum_avail_table(64)];

/// Fused takum round of an unrounded combine result — `round::takum`
/// applied to the parts directly, branch for branch.
#[inline(always)]
fn round_parts_takum(p: Parts, spec: &crate::takum::TakumSpec) -> Elt {
    use crate::takum::TakumSpec;
    debug_assert!(p.sig != 0);
    if p.exp > TakumSpec::MAX_CHARACTERISTIC {
        return takum_saturated(spec, spec.max_pattern(), p.sign);
    }
    if p.exp < TakumSpec::MIN_CHARACTERISTIC {
        return takum_saturated(spec, spec.min_pattern(), p.sign);
    }
    let c = p.exp;
    // `spec` is always one of the four promoted spec consts here, so the
    // width match folds away after monomorphization; the arm recomputing
    // `r = floor(log2(c >= 0 ? c + 1 : -c))` inline keeps hypothetical
    // other widths correct.
    let avail = match spec.bits {
        8 => TAKUM_AVAIL[0][(c + 256) as usize] as u32,
        16 => TAKUM_AVAIL[1][(c + 256) as usize] as u32,
        32 => TAKUM_AVAIL[2][(c + 256) as usize] as u32,
        64 => TAKUM_AVAIL[3][(c + 256) as usize] as u32,
        bits => {
            let m = c >> 31;
            let a = ((c ^ m) - m) + (m + 1);
            let r = 31 - (a as u32).leading_zeros();
            (bits - 1).saturating_sub(4 + r)
        }
    };
    if avail == 0 {
        return takum_round_defer(p, spec);
    }
    let (exp, sig) = super::round::round_finite_at(p.exp, p.sig, p.sticky, avail);
    if exp > TakumSpec::MAX_CHARACTERISTIC {
        return takum_saturated(spec, spec.max_pattern(), p.sign);
    }
    if exp == TakumSpec::MIN_CHARACTERISTIC && sig == 1 << 63 {
        // c = -255 with a zero fraction composes to the all-zeros word,
        // which the encoder clamps to the smallest pattern: takums never
        // represent 2^-255 exactly.
        return takum_saturated(spec, spec.min_pattern(), p.sign);
    }
    Elt::finite(p.sign, exp, sig)
}

/// Zero-length fraction (range edge): defer to the reference composition,
/// exactly as `round::takum` does.  Outlined for the same reason as
/// [`posit_round_defer`].
#[cold]
#[inline(never)]
fn takum_round_defer(p: Parts, spec: &crate::takum::TakumSpec) -> Elt {
    let u = Unpacked {
        class: Class::Finite,
        sign: p.sign,
        exp: p.exp,
        sig: p.sig,
        sticky: p.sticky,
    };
    Elt::from_unpacked(&crate::takum::decode(crate::takum::encode(&u, spec), spec))
}

#[cold]
#[inline(never)]
fn takum_saturated(spec: &crate::takum::TakumSpec, pattern: u64, sign: bool) -> Elt {
    Elt::from_unpacked(&super::round::saturated(spec, pattern, sign))
}

/// Reference multiply-and-round through the format's own decoded op —
/// the non-finite classes and the `Generic` plan.
#[inline]
fn mul_round_ref<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    Elt::from_unpacked(&T::dec_mul(a.to_unpacked(), b.to_unpacked()))
}

#[inline]
fn add_round_ref<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    Elt::from_unpacked(&T::dec_add(a.to_unpacked(), b.to_unpacked()))
}

/// Outlined copies of the reference ops for the tapered fast paths' rare
/// branch (a non-finite operand).  `#[cold]` keeps the call — and the
/// by-reference argument spills its indirect ABI forces — in a block the
/// hot loop jumps over, so the loop body itself stays in registers.
#[cold]
#[inline(never)]
fn mul_round_slow<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    mul_round_ref::<T>(a, b)
}

#[cold]
#[inline(never)]
fn add_round_slow<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    add_round_ref::<T>(a, b)
}

/// `round(a * b)` in plane registers; bit-identical to `T::dec_mul`.
#[inline(always)]
fn mul_round<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    match T::ROUND {
        RoundPlan::Generic => mul_round_ref::<T>(a, b),
        RoundPlan::Posit(spec) => {
            if a.is_finite() && b.is_finite() {
                round_parts_posit(mul_parts(a, b), spec)
            } else if (a.tag | b.tag) & CLASS_SPECIAL_BIT == 0 {
                // No Inf/NaN, so at least one operand is zero — and so is
                // the product (the tapered formats' zero is unsigned).
                Elt::ZERO
            } else {
                mul_round_slow::<T>(a, b)
            }
        }
        RoundPlan::Takum(spec) => {
            if a.is_finite() && b.is_finite() {
                round_parts_takum(mul_parts(a, b), spec)
            } else if (a.tag | b.tag) & CLASS_SPECIAL_BIT == 0 {
                Elt::ZERO
            } else {
                mul_round_slow::<T>(a, b)
            }
        }
    }
}

/// `a + b` where at least one operand is zero and neither is Inf/NaN:
/// the finite operand unchanged, or the formats' unsigned zero.
#[inline(always)]
fn add_zero(a: Elt, b: Elt) -> Elt {
    if a.is_finite() {
        a
    } else if b.is_finite() {
        b
    } else {
        Elt::ZERO
    }
}

/// `round(zero + x)` — the accumulator-seeding step of a reduction chain.
/// For the tapered plans this is the identity for every class their plane
/// elements can hold (Zero, Finite, NaN — canonical tapered values are
/// never Inf, since both decoders map NaR to NaN and the rounders saturate),
/// so the first product seeds the chain with no add at all.  `Generic`
/// formats keep the literal reference step: IEEE signed zeros make
/// `(+0) + (-0) = +0` different from the identity.
#[inline(always)]
fn seed_zero_add<T: BatchReal<Dec = Unpacked>>(x: Elt) -> Elt {
    match T::ROUND {
        RoundPlan::Generic => add_round_ref::<T>(Elt::ZERO, x),
        RoundPlan::Posit(_) | RoundPlan::Takum(_) => x,
    }
}

/// `round(a + b)` in plane registers; bit-identical to `T::dec_add`.
#[inline(always)]
fn add_round<T: BatchReal<Dec = Unpacked>>(a: Elt, b: Elt) -> Elt {
    match T::ROUND {
        RoundPlan::Generic => add_round_ref::<T>(a, b),
        RoundPlan::Posit(spec) => {
            if a.is_finite() && b.is_finite() {
                let p = add_parts(a, b);
                if p.sig == 0 {
                    // Exact cancellation rounds to the unsigned zero.
                    Elt::ZERO
                } else {
                    round_parts_posit(p, spec)
                }
            } else if (a.tag | b.tag) & CLASS_SPECIAL_BIT == 0 {
                // No Inf/NaN, so at least one operand is zero: the sum is
                // the other operand — plane elements are already in-format,
                // and rounding an in-format value is the identity — or the
                // single unsigned zero.  Accumulators start at zero, so
                // this is the hot first step of every reduction chain.
                add_zero(a, b)
            } else {
                add_round_slow::<T>(a, b)
            }
        }
        RoundPlan::Takum(spec) => {
            if a.is_finite() && b.is_finite() {
                let p = add_parts(a, b);
                if p.sig == 0 {
                    Elt::ZERO
                } else {
                    round_parts_takum(p, spec)
                }
            } else if (a.tag | b.tag) & CLASS_SPECIAL_BIT == 0 {
                add_zero(a, b)
            } else {
                add_round_slow::<T>(a, b)
            }
        }
    }
}

impl<const W: usize> Lanes<W> {
    #[inline(always)]
    pub(crate) fn elt(&self, l: usize) -> Elt {
        Elt { tag: self.tag[l], exp: self.exp[l], sig: self.sig[l] }
    }

    #[inline(always)]
    pub(crate) fn set_elt(&mut self, l: usize, e: Elt) {
        self.tag[l] = e.tag;
        self.exp[l] = e.exp;
        self.sig[l] = e.sig;
    }

    /// Load `W` consecutive elements starting at `i`.
    #[inline(always)]
    fn load(v: View<'_>, i: usize) -> Self {
        let mut b = Lanes::ZERO;
        for l in 0..W {
            b.set_elt(l, v.elt(i + l));
        }
        b
    }

    /// Gather `W` elements by index (the SpMV column gather).
    #[inline(always)]
    fn gather(v: View<'_>, idx: &[usize]) -> Self {
        let mut b = Lanes::ZERO;
        for l in 0..W {
            b.set_elt(l, v.elt(idx[l]));
        }
        b
    }

    /// Store `W` consecutive elements starting at `i`.
    #[inline(always)]
    fn store(&self, v: &mut ViewMut<'_>, i: usize) {
        for l in 0..W {
            v.set_elt(i + l, self.elt(l));
        }
    }
}

/// A borrowed plane triple with all three slices cut to one common length,
/// so the optimizer sees a single bound per element index instead of three
/// independent `Vec` lengths (the per-plane bounds checks fold away inside
/// the lane-blocked loops).
#[derive(Clone, Copy)]
struct View<'a> {
    tag: &'a [u8],
    exp: &'a [i32],
    sig: &'a [u64],
}

impl View<'_> {
    #[inline(always)]
    fn elt(self, i: usize) -> Elt {
        Elt { tag: self.tag[i], exp: self.exp[i], sig: self.sig[i] }
    }
}

/// The mutable counterpart of [`View`].
struct ViewMut<'a> {
    tag: &'a mut [u8],
    exp: &'a mut [i32],
    sig: &'a mut [u64],
}

impl ViewMut<'_> {
    #[inline(always)]
    fn elt(&self, i: usize) -> Elt {
        Elt { tag: self.tag[i], exp: self.exp[i], sig: self.sig[i] }
    }

    #[inline(always)]
    fn set_elt(&mut self, i: usize, e: Elt) {
        self.tag[i] = e.tag;
        self.exp[i] = e.exp;
        self.sig[i] = e.sig;
    }
}

/// The storage and kernel interface a format's plane store provides — the
/// decoded-domain working set of the bulk linear-algebra layers.  Every
/// kernel preserves the exact accumulation order of its scalar counterpart,
/// so all of them are bit-identical to the encoded scalar loops (and to the
/// [`super::dot_decoded`]-family reference kernels) for every lane width.
pub trait PlaneStore<T: BatchReal>: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// A store of `n` decoded zeros.
    fn with_len(n: usize) -> Self;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one element back in decoded form.
    fn get(&self, i: usize) -> T::Dec;

    /// Overwrite one element with a (canonical) decoded value.
    fn set(&mut self, i: usize, d: T::Dec);

    /// Decode a full slice into this store (resizing to match).
    fn decode_from(&mut self, bits: &[T]);

    /// Decode a slice into a fresh store.
    fn decode(bits: &[T]) -> Self {
        let mut s = Self::with_len(bits.len());
        s.decode_from(bits);
        s
    }

    /// Encode every element into a bit-pattern slice of the same length.
    fn encode_into(&self, bits: &mut [T]);

    /// Reset every element to the decoded zero.
    fn fill_zero(&mut self);

    /// Dot product; bit-identical to the scalar loop and [`super::dot_decoded`].
    fn dot(x: &Self, y: &Self) -> T::Dec;

    /// `y += alpha * x`; bit-identical to [`super::axpy_decoded`] (the
    /// `alpha == 0` early-out lives in the [`super::axpy_planes`] wrapper).
    fn axpy(alpha: T::Dec, x: &Self, y: &mut Self);

    /// `x *= alpha`; bit-identical to [`super::scale_decoded`].
    fn scale(alpha: T::Dec, x: &mut Self);

    /// `acc[i] = acc[i] + x[i] * s` — the `DMatrix::matmul` inner update
    /// (`*o += a * b`), operand order included.
    fn gaxpy(x: &Self, s: T::Dec, acc: &mut Self);

    /// Gathered dot product `sum_l vals[lo + l] * x[idx[l]]` — one CSR row
    /// of an SpMV, in `CsrMatrix::spmv`'s accumulation order.
    fn dot_gather(vals: &Self, lo: usize, idx: &[usize], x: &Self) -> T::Dec;

    /// Full CSR SpMV: `y[r] = sum_{p in row r} vals[p] * x[col_idx[p]]`,
    /// each row in ascending-`p` order (bit-identical to `CsrMatrix::spmv`).
    /// Rows are independent serial chains, so the planes implementation
    /// interleaves a lane block of rows to hide the per-add latency —
    /// per-row order is untouched, so the result is still bit-identical.
    fn spmv(vals: &Self, row_ptr: &[usize], col_idx: &[usize], x: &Self, y: &mut Self);

    /// Streaming dot over encoded slices (decode on the fly, no allocation);
    /// bit-identical to the scalar loop.
    fn dot_bits(x: &[T], y: &[T]) -> T::Dec;

    /// Streaming `y += alpha * x` over encoded slices.
    fn axpy_bits(alpha: T, x: &[T], y: &mut [T]);
}

/// The plane store of every format whose decoded form is [`Unpacked`]:
/// one tag, exponent, and significand plane ("struct of arrays").
#[derive(Clone, Debug, Default)]
pub struct UnpackedPlanes {
    tag: Vec<u8>,
    exp: Vec<i32>,
    sig: Vec<u64>,
}

impl UnpackedPlanes {
    #[inline(always)]
    fn len(&self) -> usize {
        self.tag.len()
    }

    #[inline(always)]
    fn elt(&self, i: usize) -> Elt {
        Elt { tag: self.tag[i], exp: self.exp[i], sig: self.sig[i] }
    }

    #[inline(always)]
    fn set_elt(&mut self, i: usize, e: Elt) {
        self.tag[i] = e.tag;
        self.exp[i] = e.exp;
        self.sig[i] = e.sig;
    }

    /// Borrow the first `n` elements of every plane at one common length
    /// (panics if any plane is shorter — the stores keep them equal).
    #[inline(always)]
    fn view(&self, n: usize) -> View<'_> {
        View { tag: &self.tag[..n], exp: &self.exp[..n], sig: &self.sig[..n] }
    }

    /// Mutable [`Self::view`].
    #[inline(always)]
    fn view_mut(&mut self, n: usize) -> ViewMut<'_> {
        ViewMut { tag: &mut self.tag[..n], exp: &mut self.exp[..n], sig: &mut self.sig[..n] }
    }
}

/// Dispatch a lane-blocked kernel body over the active [`KernelLanes`]
/// width.  `$w` becomes the const generic argument.
macro_rules! with_lanes {
    ($w:ident => $body:expr) => {
        match kernel_lanes() {
            KernelLanes::W1 => {
                const $w: usize = 1;
                $body
            }
            KernelLanes::W4 => {
                const $w: usize = 4;
                $body
            }
            KernelLanes::W8 => {
                const $w: usize = 8;
                $body
            }
        }
    };
}

fn dot_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    x: &UnpackedPlanes,
    y: &UnpackedPlanes,
) -> Unpacked {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let (x, y) = (x.view(n), y.view(n));
    let mut acc = Elt::ZERO;
    let mut i = 0;
    // The W products of a block are independent and round in parallel; the
    // accumulator chain then consumes them strictly in ascending index
    // order, so the result is the scalar loop's, bit for bit, at every W.
    while i + W <= n {
        let xa = Lanes::<W>::load(x, i);
        let ya = Lanes::<W>::load(y, i);
        let mut prod = Lanes::<W>::ZERO;
        for l in 0..W {
            prod.set_elt(l, mul_round::<T>(xa.elt(l), ya.elt(l)));
        }
        for l in 0..W {
            acc = add_round::<T>(acc, prod.elt(l));
        }
        i += W;
    }
    while i < n {
        acc = add_round::<T>(acc, mul_round::<T>(x.elt(i), y.elt(i)));
        i += 1;
    }
    acc.to_unpacked()
}

fn axpy_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    alpha: Elt,
    x: &UnpackedPlanes,
    y: &mut UnpackedPlanes,
) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let x = x.view(n);
    let mut y = y.view_mut(n);
    let mut i = 0;
    while i + W <= n {
        let xa = Lanes::<W>::load(x, i);
        let mut out = Lanes::<W>::ZERO;
        for l in 0..W {
            out.set_elt(l, add_round::<T>(y.elt(i + l), mul_round::<T>(alpha, xa.elt(l))));
        }
        out.store(&mut y, i);
        i += W;
    }
    while i < n {
        let o = add_round::<T>(y.elt(i), mul_round::<T>(alpha, x.elt(i)));
        y.set_elt(i, o);
        i += 1;
    }
}

fn scale_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(alpha: Elt, x: &mut UnpackedPlanes) {
    let n = x.len();
    let mut x = x.view_mut(n);
    let mut i = 0;
    while i + W <= n {
        let mut out = Lanes::<W>::ZERO;
        for l in 0..W {
            out.set_elt(l, mul_round::<T>(x.elt(i + l), alpha));
        }
        out.store(&mut x, i);
        i += W;
    }
    while i < n {
        let o = mul_round::<T>(x.elt(i), alpha);
        x.set_elt(i, o);
        i += 1;
    }
}

fn gaxpy_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    x: &UnpackedPlanes,
    s: Elt,
    acc: &mut UnpackedPlanes,
) {
    debug_assert_eq!(x.len(), acc.len());
    let n = x.len();
    let x = x.view(n);
    let mut acc = acc.view_mut(n);
    let mut i = 0;
    while i + W <= n {
        let xa = Lanes::<W>::load(x, i);
        let mut out = Lanes::<W>::ZERO;
        for l in 0..W {
            out.set_elt(l, add_round::<T>(acc.elt(i + l), mul_round::<T>(xa.elt(l), s)));
        }
        out.store(&mut acc, i);
        i += W;
    }
    while i < n {
        let o = add_round::<T>(acc.elt(i), mul_round::<T>(x.elt(i), s));
        acc.set_elt(i, o);
        i += 1;
    }
}

fn dot_gather_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    vals: &UnpackedPlanes,
    lo: usize,
    idx: &[usize],
    x: &UnpackedPlanes,
) -> Unpacked {
    let n = idx.len();
    let vals = vals.view(vals.len());
    let x = x.view(x.len());
    let mut acc = Elt::ZERO;
    let mut i = 0;
    while i + W <= n {
        let va = Lanes::<W>::load(vals, lo + i);
        let xa = Lanes::<W>::gather(x, &idx[i..i + W]);
        let mut prod = Lanes::<W>::ZERO;
        for l in 0..W {
            prod.set_elt(l, mul_round::<T>(va.elt(l), xa.elt(l)));
        }
        for l in 0..W {
            acc = add_round::<T>(acc, prod.elt(l));
        }
        i += W;
    }
    while i < n {
        acc = add_round::<T>(acc, mul_round::<T>(vals.elt(lo + i), x.elt(idx[i])));
        i += 1;
    }
    acc.to_unpacked()
}

/// One CSR row of the portable SpMV path, in the scalar accumulation order.
#[inline(always)]
fn spmv_row<T: BatchReal<Dec = Unpacked>>(
    vals: View<'_>,
    col_idx: &[usize],
    x: View<'_>,
    lo: usize,
    hi: usize,
) -> Elt {
    let mut acc = Elt::ZERO;
    if lo < hi {
        acc = seed_zero_add::<T>(mul_round::<T>(vals.elt(lo), x.elt(col_idx[lo])));
        for q in lo + 1..hi {
            acc = add_round::<T>(acc, mul_round::<T>(vals.elt(q), x.elt(col_idx[q])));
        }
    }
    acc
}

fn spmv_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    vals: &UnpackedPlanes,
    row_ptr: &[usize],
    col_idx: &[usize],
    x: &UnpackedPlanes,
    y: &mut UnpackedPlanes,
) {
    let nrows = row_ptr.len() - 1;
    debug_assert_eq!(y.len(), nrows);
    let vals = vals.view(vals.len());
    let x = x.view(x.len());
    let mut y = y.view_mut(nrows);
    let mut r = 0;
    // W == 1 degenerates the block scaffolding below into pure overhead
    // (the `longest` scan and its per-position bound re-check buy nothing
    // when the "block" is one row), so the portable width takes the plain
    // row loop — the same loop as the ragged tail, same accumulation order.
    if W == 1 {
        // The portable path still pipelines *rows*: each row's accumulation
        // is one serial rounded-add chain, so walking rows one at a time
        // leaves the whole chain latency exposed.  Two adjacent rows are
        // independent chains, so the loop advances a pair in lockstep —
        // plain scalar element work, two rounds in flight — and each row's
        // own `q` still ascends strictly, keeping the accumulation order
        // (and therefore every output bit) unchanged.  Unlike the lane
        // blocks below, the pair lives entirely in registers: no gather
        // staging, no per-position bound re-check.
        while r + 2 <= nrows {
            let (lo0, hi0) = (row_ptr[r], row_ptr[r + 1]);
            let (lo1, hi1) = (row_ptr[r + 1], row_ptr[r + 2]);
            let k = (hi0 - lo0).min(hi1 - lo1);
            if k == 0 {
                // One of the rows is empty: no pairing to be had.
                y.set_elt(r, spmv_row::<T>(vals, col_idx, x, lo0, hi0));
                y.set_elt(r + 1, spmv_row::<T>(vals, col_idx, x, lo1, hi1));
            } else {
                let mut acc0 = seed_zero_add::<T>(mul_round::<T>(vals.elt(lo0), x.elt(col_idx[lo0])));
                let mut acc1 = seed_zero_add::<T>(mul_round::<T>(vals.elt(lo1), x.elt(col_idx[lo1])));
                // Cut every plane slice to exactly the lockstep prefix:
                // with slice length == loop bound the per-position index
                // checks fold away, leaving only the data-dependent `x`
                // gather guarded.
                let (vt0, ve0, vs0) =
                    (&vals.tag[lo0..lo0 + k], &vals.exp[lo0..lo0 + k], &vals.sig[lo0..lo0 + k]);
                let (vt1, ve1, vs1) =
                    (&vals.tag[lo1..lo1 + k], &vals.exp[lo1..lo1 + k], &vals.sig[lo1..lo1 + k]);
                let (ci0, ci1) = (&col_idx[lo0..lo0 + k], &col_idx[lo1..lo1 + k]);
                for p in 1..k {
                    let e0 = Elt { tag: vt0[p], exp: ve0[p], sig: vs0[p] };
                    let e1 = Elt { tag: vt1[p], exp: ve1[p], sig: vs1[p] };
                    let pr0 = mul_round::<T>(e0, x.elt(ci0[p]));
                    let pr1 = mul_round::<T>(e1, x.elt(ci1[p]));
                    acc0 = add_round::<T>(acc0, pr0);
                    acc1 = add_round::<T>(acc1, pr1);
                }
                // At most one of the rows has positions past the lockstep
                // prefix; finish it serially.
                for q in lo0 + k..hi0 {
                    acc0 = add_round::<T>(acc0, mul_round::<T>(vals.elt(q), x.elt(col_idx[q])));
                }
                for q in lo1 + k..hi1 {
                    acc1 = add_round::<T>(acc1, mul_round::<T>(vals.elt(q), x.elt(col_idx[q])));
                }
                y.set_elt(r, acc0);
                y.set_elt(r + 1, acc1);
            }
            r += 2;
        }
        if r < nrows {
            y.set_elt(r, spmv_row::<T>(vals, col_idx, x, row_ptr[r], row_ptr[r + 1]));
        }
        return;
    }
    // A block of W rows advances position-by-position: lane l handles row
    // r + l, and each row's own accumulation stays strictly ascending in p
    // — the W serial add chains are independent and overlap in flight.
    // Each row's first product seeds its accumulator through
    // [`seed_zero_add`]: the rows here are short (a handful of nonzeros),
    // so the folded `zero + first` add is a measurable share of the chain.
    while r + W <= nrows {
        let mut acc = [Elt::ZERO; W];
        let mut longest = 0;
        for l in 0..W {
            let (lo, hi) = (row_ptr[r + l], row_ptr[r + l + 1]);
            longest = longest.max(hi - lo);
            if lo < hi {
                let prod = mul_round::<T>(vals.elt(lo), x.elt(col_idx[lo]));
                acc[l] = seed_zero_add::<T>(prod);
            }
        }
        for p in 1..longest {
            for l in 0..W {
                let q = row_ptr[r + l] + p;
                if q < row_ptr[r + l + 1] {
                    let prod = mul_round::<T>(vals.elt(q), x.elt(col_idx[q]));
                    acc[l] = add_round::<T>(acc[l], prod);
                }
            }
        }
        for l in 0..W {
            y.set_elt(r + l, acc[l]);
        }
        r += W;
    }
    while r < nrows {
        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
        let mut acc = Elt::ZERO;
        if lo < hi {
            acc = seed_zero_add::<T>(mul_round::<T>(vals.elt(lo), x.elt(col_idx[lo])));
            for q in lo + 1..hi {
                acc = add_round::<T>(acc, mul_round::<T>(vals.elt(q), x.elt(col_idx[q])));
            }
        }
        y.set_elt(r, acc);
        r += 1;
    }
}

fn dot_bits_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(x: &[T], y: &[T]) -> Unpacked {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let mut acc = Elt::ZERO;
    let mut i = 0;
    while i + W <= n {
        let mut prod = Lanes::<W>::ZERO;
        for l in 0..W {
            let a = Elt::from_unpacked(&x[i + l].dec());
            let b = Elt::from_unpacked(&y[i + l].dec());
            prod.set_elt(l, mul_round::<T>(a, b));
        }
        for l in 0..W {
            acc = add_round::<T>(acc, prod.elt(l));
        }
        i += W;
    }
    while i < n {
        let a = Elt::from_unpacked(&x[i].dec());
        let b = Elt::from_unpacked(&y[i].dec());
        acc = add_round::<T>(acc, mul_round::<T>(a, b));
        i += 1;
    }
    acc.to_unpacked()
}

fn axpy_bits_kernel<T: BatchReal<Dec = Unpacked>, const W: usize>(
    alpha: Elt,
    x: &[T],
    y: &mut [T],
) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let mut i = 0;
    while i + W <= n {
        let mut out = Lanes::<W>::ZERO;
        for l in 0..W {
            let xe = Elt::from_unpacked(&x[i + l].dec());
            let ye = Elt::from_unpacked(&y[i + l].dec());
            out.set_elt(l, add_round::<T>(ye, mul_round::<T>(alpha, xe)));
        }
        for l in 0..W {
            y[i + l] = T::undec(out.elt(l).to_unpacked());
        }
        i += W;
    }
    while i < n {
        let xe = Elt::from_unpacked(&x[i].dec());
        let ye = Elt::from_unpacked(&y[i].dec());
        y[i] = T::undec(add_round::<T>(ye, mul_round::<T>(alpha, xe)).to_unpacked());
        i += 1;
    }
}

impl<T: BatchReal<Dec = Unpacked>> PlaneStore<T> for UnpackedPlanes {
    fn with_len(n: usize) -> Self {
        // The all-zero planes are exactly `n` copies of the decoded zero.
        UnpackedPlanes { tag: vec![0; n], exp: vec![0; n], sig: vec![0; n] }
    }

    fn len(&self) -> usize {
        self.tag.len()
    }

    #[inline]
    fn get(&self, i: usize) -> Unpacked {
        self.elt(i).to_unpacked()
    }

    #[inline]
    fn set(&mut self, i: usize, d: Unpacked) {
        self.set_elt(i, Elt::from_unpacked(&d));
    }

    fn decode_from(&mut self, bits: &[T]) {
        let n = bits.len();
        self.tag.resize(n, 0);
        self.exp.resize(n, 0);
        self.sig.resize(n, 0);
        for (i, &b) in bits.iter().enumerate() {
            self.set_elt(i, Elt::from_unpacked(&b.dec()));
        }
    }

    fn encode_into(&self, bits: &mut [T]) {
        debug_assert_eq!(bits.len(), self.len());
        for (i, b) in bits.iter_mut().enumerate() {
            *b = T::undec(self.elt(i).to_unpacked());
        }
    }

    fn fill_zero(&mut self) {
        self.tag.fill(0);
        self.exp.fill(0);
        self.sig.fill(0);
    }

    fn dot(x: &Self, y: &Self) -> Unpacked {
        with_lanes!(W => dot_kernel::<T, W>(x, y))
    }

    fn axpy(alpha: Unpacked, x: &Self, y: &mut Self) {
        let a = Elt::from_unpacked(&alpha);
        with_lanes!(W => axpy_kernel::<T, W>(a, x, y))
    }

    fn scale(alpha: Unpacked, x: &mut Self) {
        let a = Elt::from_unpacked(&alpha);
        with_lanes!(W => scale_kernel::<T, W>(a, x))
    }

    fn gaxpy(x: &Self, s: Unpacked, acc: &mut Self) {
        let s = Elt::from_unpacked(&s);
        with_lanes!(W => gaxpy_kernel::<T, W>(x, s, acc))
    }

    fn dot_gather(vals: &Self, lo: usize, idx: &[usize], x: &Self) -> Unpacked {
        with_lanes!(W => dot_gather_kernel::<T, W>(vals, lo, idx, x))
    }

    fn spmv(vals: &Self, row_ptr: &[usize], col_idx: &[usize], x: &Self, y: &mut Self) {
        with_lanes!(W => spmv_kernel::<T, W>(vals, row_ptr, col_idx, x, y))
    }

    fn dot_bits(x: &[T], y: &[T]) -> Unpacked {
        with_lanes!(W => dot_bits_kernel::<T, W>(x, y))
    }

    fn axpy_bits(alpha: T, x: &[T], y: &mut [T]) {
        let a = Elt::from_unpacked(&alpha.dec());
        with_lanes!(W => axpy_bits_kernel::<T, W>(a, x, y))
    }
}

/// The plane store of the `Dec = Self` formats (8-bit tables, hardware
/// floats): the values themselves, with the kernels as plain scalar loops —
/// their ops are already a table load or an instruction, so there is
/// nothing to fuse.
#[derive(Clone, Debug)]
pub struct ScalarPlanes<T> {
    vals: Vec<T>,
}

impl<T: BatchReal<Dec = T>> PlaneStore<T> for ScalarPlanes<T> {
    fn with_len(n: usize) -> Self {
        ScalarPlanes { vals: vec![T::zero(); n] }
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    #[inline]
    fn get(&self, i: usize) -> T {
        self.vals[i]
    }

    #[inline]
    fn set(&mut self, i: usize, d: T) {
        self.vals[i] = d;
    }

    fn decode_from(&mut self, bits: &[T]) {
        self.vals.clear();
        self.vals.extend_from_slice(bits);
    }

    fn encode_into(&self, bits: &mut [T]) {
        bits.copy_from_slice(&self.vals);
    }

    fn fill_zero(&mut self) {
        self.vals.fill(T::zero());
    }

    fn dot(x: &Self, y: &Self) -> T {
        let mut acc = T::zero();
        for (a, b) in x.vals.iter().zip(&y.vals) {
            acc = T::dec_add(acc, T::dec_mul(*a, *b));
        }
        acc
    }

    fn axpy(alpha: T, x: &Self, y: &mut Self) {
        for (yi, xi) in y.vals.iter_mut().zip(&x.vals) {
            *yi = T::dec_add(*yi, T::dec_mul(alpha, *xi));
        }
    }

    fn scale(alpha: T, x: &mut Self) {
        for xi in x.vals.iter_mut() {
            *xi = T::dec_mul(*xi, alpha);
        }
    }

    fn gaxpy(x: &Self, s: T, acc: &mut Self) {
        for (ai, xi) in acc.vals.iter_mut().zip(&x.vals) {
            *ai = T::dec_add(*ai, T::dec_mul(*xi, s));
        }
    }

    fn dot_gather(vals: &Self, lo: usize, idx: &[usize], x: &Self) -> T {
        let mut acc = T::zero();
        for (l, &j) in idx.iter().enumerate() {
            acc = T::dec_add(acc, T::dec_mul(vals.vals[lo + l], x.vals[j]));
        }
        acc
    }

    fn spmv(vals: &Self, row_ptr: &[usize], col_idx: &[usize], x: &Self, y: &mut Self) {
        let nrows = row_ptr.len() - 1;
        debug_assert_eq!(y.vals.len(), nrows);
        for r in 0..nrows {
            let mut acc = T::zero();
            for q in row_ptr[r]..row_ptr[r + 1] {
                acc = T::dec_add(acc, T::dec_mul(vals.vals[q], x.vals[col_idx[q]]));
            }
            y.vals[r] = acc;
        }
    }

    fn dot_bits(x: &[T], y: &[T]) -> T {
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(y) {
            acc = T::dec_add(acc, T::dec_mul(*a, *b));
        }
        acc
    }

    fn axpy_bits(alpha: T, x: &[T], y: &mut [T]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = T::dec_add(*yi, T::dec_mul(alpha, *xi));
        }
    }
}

/// A vector of scalars alongside their plane-form decoded shadows, kept in
/// sync — the struct-of-arrays successor of [`DecodedSlice`] and the
/// ready-made owner for callers building operand caches for the planes
/// kernels.
#[derive(Clone, Debug)]
pub struct DecodedPlanes<T: BatchReal> {
    bits: Vec<T>,
    planes: T::Planes,
}

impl<T: BatchReal> DecodedPlanes<T> {
    /// Decode every element of `xs` once.
    pub fn decode(xs: &[T]) -> DecodedPlanes<T> {
        DecodedPlanes { bits: xs.to_vec(), planes: T::Planes::decode(xs) }
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The encoded (bit-pattern) side.
    pub fn bits(&self) -> &[T] {
        &self.bits
    }

    /// The plane-form decoded side.
    pub fn planes(&self) -> &T::Planes {
        &self.planes
    }

    /// Overwrite element `i` on both sides.
    pub fn set(&mut self, i: usize, value: T) {
        self.bits[i] = value;
        self.planes.set(i, value.dec());
    }
}

impl<T: BatchReal> From<&DecodedSlice<T>> for DecodedPlanes<T> {
    /// Re-plane an array-of-structs cache, decoded values preserved
    /// element for element.
    fn from(s: &DecodedSlice<T>) -> DecodedPlanes<T> {
        let mut planes = T::Planes::with_len(s.len());
        for (i, d) in s.dec().iter().enumerate() {
            planes.set(i, *d);
        }
        DecodedPlanes { bits: s.bits().to_vec(), planes }
    }
}

impl<T: BatchReal> From<&DecodedPlanes<T>> for DecodedSlice<T> {
    /// Flatten back to the array-of-structs layout, element for element.
    fn from(p: &DecodedPlanes<T>) -> DecodedSlice<T> {
        DecodedSlice {
            bits: p.bits.clone(),
            dec: (0..p.len()).map(|i| p.planes.get(i)).collect(),
        }
    }
}

/// Dot product over plane stores; bit-identical to `lpa_dense::blas::dot`
/// on the encoded values.  Returns the decoded accumulator so chained
/// consumers skip the re-decode.
pub fn dot_planes<T: BatchReal>(x: &T::Planes, y: &T::Planes) -> T::Dec {
    // Fault point on the hottest kernel, one per *call* (not per element),
    // mirroring `dot_decoded` — the solver routes its dots through here.
    lpa_faults::stall(lpa_faults::SOLVER_STALL);
    T::Planes::dot(x, y)
}

/// `y += alpha * x` over plane stores; bit-identical to
/// `lpa_dense::blas::axpy` (including its `alpha == 0` early-out).
pub fn axpy_planes<T: BatchReal>(alpha: T::Dec, x: &T::Planes, y: &mut T::Planes) {
    if T::dec_is_zero(alpha) {
        return;
    }
    T::Planes::axpy(alpha, x, y);
}

/// `x *= alpha` over plane stores; bit-identical to
/// `lpa_dense::blas::scal`.
pub fn scale_planes<T: BatchReal>(alpha: T::Dec, x: &mut T::Planes) {
    T::Planes::scale(alpha, x);
}

/// `out[j] = sum_k a[k] * b_cols[j][k]` over plane-form columns — the
/// decoded-domain `DMatrix::matmul`: same `k`-ascending accumulation order,
/// same skip of zero coefficients, so the encoded result is bit-identical
/// to `a_mat.matmul(b_mat)` while the produced columns stay decoded (the
/// Krylov restart consumes them as fresh basis shadows directly).
pub fn gemm_planes<T: BatchReal>(nrows: usize, a: &[T::Planes], b_cols: &[&[T]]) -> Vec<T::Planes> {
    for col in a {
        debug_assert_eq!(col.len(), nrows);
    }
    b_cols
        .iter()
        .map(|bj| {
            assert_eq!(bj.len(), a.len(), "dimension mismatch in gemm_planes");
            let mut acc = T::Planes::with_len(nrows);
            for (k, &b) in bj.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                T::Planes::gaxpy(&a[k], b.dec(), &mut acc);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{force_kernel_lanes, DecodedSlice};
    use super::*;
    use crate::real::Real;
    use crate::types::{Posit32, Takum16, Takum32};

    fn corpus<T: BatchReal>() -> Vec<T> {
        let mut v: Vec<T> = (0..97)
            .map(|i| {
                T::from_f64(
                    (0.37 + (i % 17) as f64 * 0.21) * if i % 3 == 0 { -1.0 } else { 1.0 }
                        * 2f64.powi((i % 29) - 14),
                )
            })
            .collect();
        v[13] = T::zero();
        v[41] = T::max_finite();
        v[71] = T::min_positive();
        v
    }

    fn check_kernels_match_decoded<T: BatchReal>() {
        let x = corpus::<T>();
        let y: Vec<T> = corpus::<T>().into_iter().rev().collect();
        let xd = super::super::decode_slice(&x);
        let yd = super::super::decode_slice(&y);
        let xp = T::Planes::decode(&x);
        let yp = T::Planes::decode(&y);

        for w in [KernelLanes::W1, KernelLanes::W4, KernelLanes::W8] {
            force_kernel_lanes(w);
            // Round-trip through the planes preserves every element.
            for i in 0..x.len() {
                assert_eq!(xp.get(i), x[i].dec(), "{} planes round-trip [{i}], {w:?}", T::NAME);
            }
            let d_ref = super::super::dot_decoded::<T>(&xd, &yd);
            let d_pl = dot_planes::<T>(&xp, &yp);
            assert_eq!(d_pl, d_ref, "{} dot {w:?}", T::NAME);

            let alpha = T::from_f64(-0.625).dec();
            let mut y_ref = yd.clone();
            super::super::axpy_decoded::<T>(alpha, &xd, &mut y_ref);
            let mut y_pl = yp.clone();
            axpy_planes::<T>(alpha, &xp, &mut y_pl);
            for i in 0..x.len() {
                assert_eq!(y_pl.get(i), y_ref[i], "{} axpy[{i}] {w:?}", T::NAME);
            }

            let mut x_ref = xd.clone();
            super::super::scale_decoded::<T>(alpha, &mut x_ref);
            let mut x_pl = xp.clone();
            scale_planes::<T>(alpha, &mut x_pl);
            for i in 0..x.len() {
                assert_eq!(x_pl.get(i), x_ref[i], "{} scale[{i}] {w:?}", T::NAME);
            }
        }
        force_kernel_lanes(KernelLanes::WIDEST);
    }

    #[test]
    fn planes_kernels_bit_identical_across_widths() {
        check_kernels_match_decoded::<Posit32>();
        check_kernels_match_decoded::<Takum32>();
        check_kernels_match_decoded::<Takum16>();
        check_kernels_match_decoded::<f64>();
        check_kernels_match_decoded::<crate::types::Takum8>();
    }

    #[test]
    fn decoded_planes_round_trips_decoded_slice() {
        let xs = corpus::<Posit32>();
        let slice = DecodedSlice::decode(&xs);
        let planes = DecodedPlanes::from(&slice);
        let back = DecodedSlice::from(&planes);
        assert_eq!(slice.bits().len(), back.bits().len());
        for i in 0..xs.len() {
            assert_eq!(slice.bits()[i].to_bits(), back.bits()[i].to_bits());
            assert_eq!(
                Posit32::undec(slice.dec()[i]).to_bits(),
                Posit32::undec(back.dec()[i]).to_bits()
            );
        }
    }

    #[test]
    fn gemm_planes_matches_scalar_matmul_order() {
        // A 4x3 * 3x2 product, reference computed with the exact
        // `DMatrix::matmul` loop structure on scalars.
        let a_cols: Vec<Vec<Posit32>> = (0..3)
            .map(|k| (0..4).map(|i| Posit32::from_f64(0.3 * i as f64 - 0.41 * k as f64 + 0.2)).collect())
            .collect();
        let b_cols: Vec<Vec<Posit32>> = (0..2)
            .map(|j| {
                (0..3)
                    .map(|k| {
                        if (j + k) % 3 == 1 {
                            Posit32::zero()
                        } else {
                            Posit32::from_f64(0.7 * k as f64 - 0.55 * j as f64 + 0.11)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut reference = vec![vec![Posit32::zero(); 4]; 2];
        for j in 0..2 {
            for k in 0..3 {
                let b = b_cols[j][k];
                if b.is_zero() {
                    continue;
                }
                for i in 0..4 {
                    reference[j][i] += a_cols[k][i] * b;
                }
            }
        }
        let a_planes: Vec<<Posit32 as BatchReal>::Planes> =
            a_cols.iter().map(|c| <Posit32 as BatchReal>::Planes::decode(c)).collect();
        let b_refs: Vec<&[Posit32]> = b_cols.iter().map(|c| c.as_slice()).collect();
        let out = gemm_planes::<Posit32>(4, &a_planes, &b_refs);
        for j in 0..2 {
            for i in 0..4 {
                let got = <UnpackedPlanes as PlaneStore<Posit32>>::get(&out[j], i);
                assert_eq!(
                    Posit32::undec(got).to_bits(),
                    reference[j][i].to_bits(),
                    "gemm mismatch at ({i}, {j})"
                );
            }
        }
    }
}
