//! Batch kernel engine: bulk operations over **pre-decoded** operands.
//!
//! The scalar operators of the emulated formats pay two bit-pattern decodes
//! and one round/encode per operation.  In the Krylov hot loops most of
//! those decodes re-decode *loop-invariant* data: a CSR matrix's values are
//! decoded on every SpMV of every Arnoldi step, the basis vectors on every
//! Gram-Schmidt pass, yet neither changes between reads.  This module is
//! the decode-once tier for that pattern — the [`crate::lut::Lut16`] trick
//! generalized to every width, including the 32/64-bit tapered formats
//! where a full unpack table is impossible:
//!
//! * [`BatchReal`] extends [`Real`] with a pre-decoded operand form
//!   ([`BatchReal::Dec`]) and decoded-domain `add`/`mul`/`neg` that are
//!   **bit-identical** to the scalar operators: each op still runs the
//!   shared soft-float kernel and still rounds to the format's grid after
//!   every operation, it merely keeps the value in decoded form instead of
//!   round-tripping through the bit pattern.
//! * [`DecodedSlice`] owns a vector of scalars alongside their decoded
//!   shadow forms; [`dot_decoded`], [`axpy_decoded`] and [`scale_decoded`]
//!   are the bulk kernels over shadow slices.
//! * [`dot_slice`]/[`axpy_slice`]/[`scal_slice`] are drop-in versions of the
//!   BLAS-1 loops over plain (encoded) slices that pre-decode internally
//!   when the engine is enabled — the routing point for `lpa_dense::blas`.
//!
//! The rounding step uses [`round`]: a value-level round-to-format that
//! produces the canonical decoded form directly (`decode(encode(u))`
//! without materializing the bit pattern), falling back to the literal
//! `decode(encode(u))` reference composition near the tapered formats'
//! saturation boundaries where the bit-level tie rule inspects regime /
//! exponent-field bits.  `tests/batch_differential.rs` verifies the
//! equality exhaustively over exponent sweeps and differentially over
//! random and boundary-corpus operands.
//!
//! On top of the shadow tier sit the struct-of-arrays kernels: [`planes`]
//! splits the decoded form into separate tag/exponent/significand planes
//! ([`PlaneStore`], [`UnpackedPlanes`]) and runs the combine **and** the
//! round fused over the 128-bit kernel frame, blocked [`lanes`] wide
//! ([`dot_planes`], [`axpy_planes`], [`scale_planes`], [`gemm_planes`]).
//! Same bits, fewer memory shuffles — the accumulation order is preserved
//! exactly at every lane width.
//!
//! ## The `LPA_KERNEL_BATCH` knob
//!
//! Like the 16-bit tier ([`crate::tier`]), the engine is selectable at
//! runtime for verification, not semantics — both paths compute identical
//! bits.  Selection, in precedence order: [`force_kernel_batch`] (process
//! global, used by differential tests), the `LPA_KERNEL_BATCH` environment
//! variable (`batch`/`on`/`1` or `scalar`/`off`/`0`; read only in this
//! module), then the default: `batch`.

pub mod lanes;
pub mod planes;
pub mod round;

pub use lanes::{env_kernel_lanes, force_kernel_lanes, kernel_lanes, KernelLanes, Lanes};
pub use planes::{
    axpy_planes, dot_planes, gemm_planes, scale_planes, DecodedPlanes, PlaneStore, ScalarPlanes,
    UnpackedPlanes,
};

use std::sync::atomic::{AtomicU8, Ordering};

use crate::real::Real;
use crate::softfloat;
use crate::unpacked::Unpacked;

/// The kernel engine serving the bulk linear-algebra loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBatch {
    /// Loop-invariant operands are decoded once and the bulk kernels run in
    /// the decoded domain (the default).
    Batch,
    /// Every operation is the plain scalar operator (decode → kernel →
    /// round/encode per op) — the reference path.
    Scalar,
}

impl std::str::FromStr for KernelBatch {
    type Err = String;

    /// Accepts the `LPA_KERNEL_BATCH` vocabulary: `batch` (aliases `on`,
    /// `1`) and `scalar` (aliases `off`, `0`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "batch" | "on" | "1" => Ok(KernelBatch::Batch),
            "scalar" | "off" | "0" => Ok(KernelBatch::Scalar),
            other => Err(format!(
                "{other:?} is not a known kernel engine (expected \"batch\" or \"scalar\")"
            )),
        }
    }
}

/// The engine requested by the `LPA_KERNEL_BATCH` environment variable, if
/// any (`None` when unset or empty).  Panics on an unknown value, exactly
/// like lazy initialization does — a typo must not silently select a
/// default.
///
/// All environment reads of `LPA_KERNEL_BATCH` live in this module; harness
/// layers (`lpa_experiments::harness`) call this instead of reading the
/// variable themselves.
pub fn env_kernel_batch() -> Option<KernelBatch> {
    match std::env::var("LPA_KERNEL_BATCH").as_deref() {
        Ok("") | Err(_) => None,
        Ok(v) => Some(v.parse().unwrap_or_else(|e: String| panic!("LPA_KERNEL_BATCH={e}"))),
    }
}

const UNSET: u8 = 0;
const BATCH: u8 = 1;
const SCALAR: u8 = 2;

static KERNEL_BATCH: AtomicU8 = AtomicU8::new(UNSET);

/// Whether the bulk loops should run the decoded batch kernels (see the
/// module docs for the selection rules).
#[inline]
pub fn kernel_batch_enabled() -> bool {
    match KERNEL_BATCH.load(Ordering::Relaxed) {
        BATCH => true,
        SCALAR => false,
        _ => init_from_env(),
    }
}

/// The currently active kernel engine.
pub fn kernel_batch() -> KernelBatch {
    if kernel_batch_enabled() {
        KernelBatch::Batch
    } else {
        KernelBatch::Scalar
    }
}

/// Force the kernel engine for the rest of the process (overriding the
/// environment), taking effect on the next bulk operation.
///
/// Both engines are bit-identical, so flipping this mid-run never changes
/// any computed value — it exists so differential tests can run the same
/// workload through both paths in one process.
pub fn force_kernel_batch(engine: KernelBatch) {
    let v = match engine {
        KernelBatch::Batch => BATCH,
        KernelBatch::Scalar => SCALAR,
    };
    KERNEL_BATCH.store(v, Ordering::Relaxed);
}

#[cold]
fn init_from_env() -> bool {
    let v = match env_kernel_batch() {
        Some(KernelBatch::Scalar) => SCALAR,
        Some(KernelBatch::Batch) | None => BATCH,
    };
    // A racing `force_kernel_batch` may have stored a value in the
    // meantime; that call wins.  Both engines compute identical bits, so
    // the race is benign either way.
    let _ = KERNEL_BATCH.compare_exchange(UNSET, v, Ordering::Relaxed, Ordering::Relaxed);
    KERNEL_BATCH.load(Ordering::Relaxed) == BATCH
}

/// A [`Real`] with a pre-decoded operand form and decoded-domain kernels.
///
/// The contract every implementation upholds (and
/// `tests/batch_differential.rs` verifies): for all values `a`, `b` of the
/// format,
///
/// ```text
/// undec(dec(a))            == a            (on non-NaN canonical patterns)
/// undec(dec_add(dec(a), dec(b))) == a + b  (bit for bit, same for mul/neg)
/// ```
///
/// i.e. a chain of decoded ops, encoded once at the end, produces exactly
/// the bits the scalar operator chain would have stored.  Formats whose
/// scalar ops are already a table load or a hardware instruction (8-bit,
/// `f32`/`f64`/[`crate::Dd`]) use `Dec = Self` and gain nothing — and lose
/// nothing — from pre-decoding (`DECODED = false`).
pub trait BatchReal: Real {
    /// The pre-decoded operand form (the per-element cache entry).
    type Dec: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static;

    /// The struct-of-arrays store holding a vector of decoded elements,
    /// with the lane-blocked kernels over it (see [`planes`]).
    type Planes: planes::PlaneStore<Self>;

    /// Whether `Dec` actually differs from the stored bits — i.e. whether
    /// pre-decoding loop-invariant operands pays.
    const DECODED: bool;

    /// Which fused frame rounder the planes kernels may use for this
    /// format; `Generic` routes through `dec_add`/`dec_mul` per element.
    const ROUND: round::RoundPlan = round::RoundPlan::Generic;

    /// Decode once (the cache fill).
    fn dec(self) -> Self::Dec;

    /// Encode a decoded value back to its bit pattern.  Exact: decoded
    /// values are always on the format's grid.
    fn undec(d: Self::Dec) -> Self;

    /// Decoded-domain addition — bit-identical to the scalar `+`.
    fn dec_add(a: Self::Dec, b: Self::Dec) -> Self::Dec;

    /// Decoded-domain multiplication — bit-identical to the scalar `*`.
    fn dec_mul(a: Self::Dec, b: Self::Dec) -> Self::Dec;

    /// Decoded-domain negation — bit-identical to the scalar `-x`.
    fn dec_neg(a: Self::Dec) -> Self::Dec;

    /// Whether a decoded value is (any) zero, matching `Real::is_zero`.
    fn dec_is_zero(a: Self::Dec) -> bool;
}

/// Implements [`BatchReal`] with `Dec = Self` for formats whose scalar
/// operators are already a table load or a hardware instruction.
macro_rules! self_batch {
    ($($t:ty),* $(,)?) => {$(
        impl BatchReal for $t {
            type Dec = $t;
            type Planes = ScalarPlanes<$t>;
            const DECODED: bool = false;

            #[inline(always)]
            fn dec(self) -> $t {
                self
            }
            #[inline(always)]
            fn undec(d: $t) -> $t {
                d
            }
            #[inline(always)]
            fn dec_add(a: $t, b: $t) -> $t {
                a + b
            }
            #[inline(always)]
            fn dec_mul(a: $t, b: $t) -> $t {
                a * b
            }
            #[inline(always)]
            fn dec_neg(a: $t) -> $t {
                -a
            }
            #[inline(always)]
            fn dec_is_zero(a: $t) -> bool {
                a.is_zero()
            }
        }
    )*};
}

self_batch!(
    f32,
    f64,
    crate::dd::Dd,
    crate::types::E4M3,
    crate::types::E5M2,
    crate::types::Posit8,
    crate::types::Posit8Es0,
    crate::types::Takum8,
);

/// Shared decoded-domain kernel bodies for the [`Unpacked`]-shadow formats
/// (used by the backend macros in `types.rs`): run the soft-float kernel on
/// the pre-decoded operands, then round back onto the format's grid in the
/// decoded domain.
#[inline]
pub(crate) fn dec_add_via<R: Fn(&Unpacked) -> Unpacked>(a: &Unpacked, b: &Unpacked, round: R) -> Unpacked {
    round(&softfloat::add(a, b))
}

#[inline]
pub(crate) fn dec_mul_via<R: Fn(&Unpacked) -> Unpacked>(a: &Unpacked, b: &Unpacked, round: R) -> Unpacked {
    round(&softfloat::mul(a, b))
}

#[inline]
pub(crate) fn dec_neg_via<R: Fn(&Unpacked) -> Unpacked>(a: &Unpacked, round: R) -> Unpacked {
    let mut n = *a;
    if !n.is_nan() {
        n.sign = !n.sign;
    }
    // Negation of a canonical value is exact for every format in this
    // crate; the round only canonicalizes IEEE `-0` vs the tapered
    // formats' single zero.
    round(&n)
}

/// A vector of scalars alongside their pre-decoded shadow forms, kept in
/// sync — the ready-made owner for callers building their own operand
/// caches for the bulk kernels.  (The workspace's internal caches manage
/// the two sides separately for their specific access patterns:
/// `CsrDecoded` pairs the shadow array with the full CSR structure, and
/// the Krylov workspace defers its bit-side encodes to the end of each
/// step.)
#[derive(Clone, Debug)]
pub struct DecodedSlice<T: BatchReal> {
    bits: Vec<T>,
    dec: Vec<T::Dec>,
}

impl<T: BatchReal> DecodedSlice<T> {
    /// Decode every element of `xs` once.
    pub fn decode(xs: &[T]) -> DecodedSlice<T> {
        DecodedSlice { bits: xs.to_vec(), dec: decode_slice(xs) }
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The encoded (bit-pattern) side.
    pub fn bits(&self) -> &[T] {
        &self.bits
    }

    /// The decoded shadow side.
    pub fn dec(&self) -> &[T::Dec] {
        &self.dec
    }

    /// Overwrite element `i` on both sides.
    pub fn set(&mut self, i: usize, value: T) {
        self.bits[i] = value;
        self.dec[i] = value.dec();
    }
}

/// Decode a slice once (the cache-fill primitive).
pub fn decode_slice<T: BatchReal>(xs: &[T]) -> Vec<T::Dec> {
    xs.iter().map(|&x| x.dec()).collect()
}

/// Decode a slice into an existing shadow buffer of the same length.
pub fn decode_slice_into<T: BatchReal>(xs: &[T], out: &mut [T::Dec]) {
    debug_assert_eq!(xs.len(), out.len());
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = x.dec();
    }
}

/// Encode a shadow slice into an existing bit buffer of the same length.
pub fn encode_slice_into<T: BatchReal>(dec: &[T::Dec], out: &mut [T]) {
    debug_assert_eq!(dec.len(), out.len());
    for (o, &d) in out.iter_mut().zip(dec) {
        *o = T::undec(d);
    }
}

/// Dot product over pre-decoded operands; bit-identical to
/// `lpa_dense::blas::dot` on the encoded values.  Returns the decoded
/// accumulator so chained consumers skip the re-decode; [`BatchReal::undec`]
/// recovers the bits.
pub fn dot_decoded<T: BatchReal>(x: &[T::Dec], y: &[T::Dec]) -> T::Dec {
    debug_assert_eq!(x.len(), y.len());
    // Fault point on the hottest kernel, one per *call* (not per element):
    // disarmed this is a single relaxed atomic load, which the bench suite
    // guards as within-noise against a kernel without the point.
    lpa_faults::stall(lpa_faults::SOLVER_STALL);
    let mut acc = T::zero().dec();
    for (a, b) in x.iter().zip(y) {
        acc = T::dec_add(acc, T::dec_mul(*a, *b));
    }
    acc
}

/// `y += alpha * x` over pre-decoded operands; bit-identical to
/// `lpa_dense::blas::axpy` (including its `alpha == 0` early-out).
pub fn axpy_decoded<T: BatchReal>(alpha: T::Dec, x: &[T::Dec], y: &mut [T::Dec]) {
    debug_assert_eq!(x.len(), y.len());
    if T::dec_is_zero(alpha) {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = T::dec_add(*yi, T::dec_mul(alpha, *xi));
    }
}

/// `x *= alpha` over pre-decoded operands; bit-identical to
/// `lpa_dense::blas::scal`.
pub fn scale_decoded<T: BatchReal>(alpha: T::Dec, x: &mut [T::Dec]) {
    for xi in x.iter_mut() {
        *xi = T::dec_mul(*xi, alpha);
    }
}

/// Dot product over encoded slices: pre-decodes the operands and runs the
/// decoded kernel when the batch engine is enabled and the format profits;
/// the plain scalar loop otherwise.  Bit-identical either way — this is the
/// routing point `lpa_dense::blas::dot` goes through.
pub fn dot_slice<T: BatchReal>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    if T::DECODED && kernel_batch_enabled() {
        T::undec(T::Planes::dot_bits(x, y))
    } else {
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(y) {
            acc += *a * *b;
        }
        acc
    }
}

/// `y += alpha * x` over encoded slices with internal pre-decoding (see
/// [`dot_slice`]); the routing point of `lpa_dense::blas::axpy`.
pub fn axpy_slice<T: BatchReal>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha.is_zero() {
        return;
    }
    if T::DECODED && kernel_batch_enabled() {
        T::Planes::axpy_bits(alpha, x, y);
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * *xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Posit16, Posit32, Takum32};

    /// Serializes the tests that mutate the process-global engine knob —
    /// the unit tests run on parallel threads, and two mutators racing on
    /// the atomic would make the assertions flaky.
    static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn force_overrides_and_flips() {
        let _guard = KNOB_LOCK.lock().unwrap();
        force_kernel_batch(KernelBatch::Scalar);
        assert_eq!(kernel_batch(), KernelBatch::Scalar);
        assert!(!kernel_batch_enabled());
        force_kernel_batch(KernelBatch::Batch);
        assert_eq!(kernel_batch(), KernelBatch::Batch);
        assert!(kernel_batch_enabled());
    }

    #[test]
    fn parse_vocabulary() {
        assert_eq!("batch".parse::<KernelBatch>().unwrap(), KernelBatch::Batch);
        assert_eq!("on".parse::<KernelBatch>().unwrap(), KernelBatch::Batch);
        assert_eq!("1".parse::<KernelBatch>().unwrap(), KernelBatch::Batch);
        assert_eq!("scalar".parse::<KernelBatch>().unwrap(), KernelBatch::Scalar);
        assert_eq!("off".parse::<KernelBatch>().unwrap(), KernelBatch::Scalar);
        assert!("fast".parse::<KernelBatch>().is_err());
    }

    #[test]
    fn decoded_chain_matches_scalar_chain() {
        // A mul-add chain through the decoded domain, encoded once at the
        // end, must reproduce the scalar operator chain bit for bit.
        fn check<T: BatchReal>(values: &[f64]) {
            let xs: Vec<T> = values.iter().map(|&v| T::from_f64(v)).collect();
            let mut acc_scalar = T::one();
            let mut acc_dec = T::one().dec();
            for &x in &xs {
                acc_scalar = acc_scalar * x + T::from_f64(0.5);
                acc_dec = T::dec_add(
                    T::dec_mul(acc_dec, x.dec()),
                    T::from_f64(0.5).dec(),
                );
            }
            assert_eq!(
                T::undec(acc_dec).to_f64(),
                acc_scalar.to_f64(),
                "decoded chain diverged in {}",
                T::NAME
            );
        }
        let vals: Vec<f64> =
            (0..64).map(|i| (0.55 + (i % 13) as f64 * 0.075) * if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        check::<Posit16>(&vals);
        check::<Posit32>(&vals);
        check::<Takum32>(&vals);
        check::<f64>(&vals);
    }

    #[test]
    fn decoded_slice_stays_in_sync() {
        let xs: Vec<Posit32> = (0..8).map(|i| Posit32::from_f64(i as f64 * 0.3 - 1.0)).collect();
        let mut d = DecodedSlice::decode(&xs);
        assert_eq!(d.len(), 8);
        d.set(3, Posit32::from_f64(7.5));
        assert_eq!(d.bits()[3].to_f64(), 7.5);
        assert_eq!(Posit32::undec(d.dec()[3]).to_f64(), 7.5);
    }

    #[test]
    fn slice_ops_match_scalar_loops_both_engines() {
        let _guard = KNOB_LOCK.lock().unwrap();
        let x: Vec<Takum32> = (0..33).map(|i| Takum32::from_f64(0.1 * i as f64 - 1.6)).collect();
        let y: Vec<Takum32> = (0..33).map(|i| Takum32::from_f64(0.07 * i as f64 + 0.2)).collect();
        let scalar_dot = {
            let mut acc = Takum32::zero();
            for (a, b) in x.iter().zip(&y) {
                acc += *a * *b;
            }
            acc
        };
        for engine in [KernelBatch::Scalar, KernelBatch::Batch] {
            force_kernel_batch(engine);
            assert_eq!(dot_slice(&x, &y).to_bits(), scalar_dot.to_bits(), "{engine:?}");
            let alpha = Takum32::from_f64(-0.75);
            let mut y1 = y.clone();
            let mut y2 = y.clone();
            axpy_slice(alpha, &x, &mut y1);
            for (yi, xi) in y2.iter_mut().zip(&x) {
                *yi += alpha * *xi;
            }
            for (a, b) in y1.iter().zip(&y2) {
                assert_eq!(a.to_bits(), b.to_bits(), "{engine:?}");
            }
        }
        force_kernel_batch(KernelBatch::Batch);
    }
}
