//! Lane-width selection for the struct-of-arrays kernels, plus the
//! fixed-width block abstraction ([`Lanes`]) they iterate with.
//!
//! The planes kernels ([`super::planes`]) run their independent work — the
//! per-element multiply-and-round of a dot product, every element of an
//! `axpy` — over blocks of `W` lanes at a time: plain unrolled `u64`
//! arithmetic on the separated sign/exponent/significand planes, no
//! `std::simd`.  `W` never changes *what* is computed (the serial
//! accumulation order is preserved exactly, so all widths are bit-identical
//! — `tests/batch_differential.rs` asserts it); it only changes how much
//! independent work is in flight per iteration.
//!
//! ## The `LPA_KERNEL_LANES` knob
//!
//! Like `LPA_KERNEL_BATCH`, the width is selectable at runtime for
//! verification, not semantics.  Selection, in precedence order:
//! [`force_kernel_lanes`] (process global, used by differential tests), the
//! `LPA_KERNEL_LANES` environment variable (`1`/`scalar`, `4`, or
//! `8`/`wide`/`widest`; read only in this module), then the default:
//! one lane.  The portable width is the default because it measures
//! fastest on current out-of-order hardware — the CPU already overlaps
//! the independent per-lane chains on its own, so the unrolled widths
//! mostly add code size (and a dot product's single serial add chain
//! cannot be overlapped at any width without changing the accumulation
//! order).  The wide paths stay selectable for hardware where manual
//! blocking does win, and for the differential suites.

use std::sync::atomic::{AtomicU8, Ordering};

/// The lane width the planes kernels block their independent work by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelLanes {
    /// Portable scalar path: one element at a time (the default).
    W1,
    /// Four-lane unrolled blocks.
    W4,
    /// Eight-lane unrolled blocks (the widest).
    W8,
}

impl KernelLanes {
    /// The widest supported width (the far end the differential suites
    /// pair against the portable default).
    pub const WIDEST: KernelLanes = KernelLanes::W8;

    /// The block width as a count.
    pub fn width(self) -> usize {
        match self {
            KernelLanes::W1 => 1,
            KernelLanes::W4 => 4,
            KernelLanes::W8 => 8,
        }
    }
}

impl std::str::FromStr for KernelLanes {
    type Err = String;

    /// Accepts the `LPA_KERNEL_LANES` vocabulary: `1` (alias `scalar`),
    /// `4`, and `8` (aliases `wide`, `widest`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "1" | "scalar" => Ok(KernelLanes::W1),
            "4" => Ok(KernelLanes::W4),
            "8" | "wide" | "widest" => Ok(KernelLanes::W8),
            other => Err(format!(
                "{other:?} is not a known lane width (expected \"1\", \"4\", or \"8\")"
            )),
        }
    }
}

/// The width requested by the `LPA_KERNEL_LANES` environment variable, if
/// any (`None` when unset or empty).  Panics on an unknown value, exactly
/// like lazy initialization does — a typo must not silently select a
/// default.
///
/// All environment reads of `LPA_KERNEL_LANES` live in this module; harness
/// layers (`lpa_experiments::harness`) call this instead of reading the
/// variable themselves.
pub fn env_kernel_lanes() -> Option<KernelLanes> {
    match std::env::var("LPA_KERNEL_LANES").as_deref() {
        Ok("") | Err(_) => None,
        Ok(v) => Some(v.parse().unwrap_or_else(|e: String| panic!("LPA_KERNEL_LANES={e}"))),
    }
}

const UNSET: u8 = 0;
const W1: u8 = 1;
const W4: u8 = 4;
const W8: u8 = 8;

static KERNEL_LANES: AtomicU8 = AtomicU8::new(UNSET);

/// The currently active lane width (see the module docs for the selection
/// rules).
#[inline]
pub fn kernel_lanes() -> KernelLanes {
    match KERNEL_LANES.load(Ordering::Relaxed) {
        W1 => KernelLanes::W1,
        W4 => KernelLanes::W4,
        W8 => KernelLanes::W8,
        _ => init_from_env(),
    }
}

/// Force the lane width for the rest of the process (overriding the
/// environment), taking effect on the next planes kernel call.
///
/// All widths are bit-identical, so flipping this mid-run never changes
/// any computed value — it exists so differential tests can run the same
/// workload through every width in one process.
pub fn force_kernel_lanes(width: KernelLanes) {
    let v = match width {
        KernelLanes::W1 => W1,
        KernelLanes::W4 => W4,
        KernelLanes::W8 => W8,
    };
    KERNEL_LANES.store(v, Ordering::Relaxed);
}

#[cold]
fn init_from_env() -> KernelLanes {
    let v = match env_kernel_lanes() {
        Some(KernelLanes::W1) | None => W1,
        Some(KernelLanes::W4) => W4,
        Some(KernelLanes::W8) => W8,
    };
    // A racing `force_kernel_lanes` may have stored a value in the
    // meantime; that call wins.  All widths compute identical bits, so
    // the race is benign either way.
    let _ = KERNEL_LANES.compare_exchange(UNSET, v, Ordering::Relaxed, Ordering::Relaxed);
    match KERNEL_LANES.load(Ordering::Relaxed) {
        W1 => KernelLanes::W1,
        W4 => KernelLanes::W4,
        _ => KernelLanes::W8,
    }
}

/// A block of `W` decoded elements in struct-of-arrays registers: the
/// class/sign tags, exponents, and significands of `W` consecutive (or
/// gathered) elements, loaded together so the kernel inner loops run plain
/// unrolled integer arithmetic over them.
#[derive(Clone, Copy, Debug)]
pub struct Lanes<const W: usize> {
    pub tag: [u8; W],
    pub exp: [i32; W],
    pub sig: [u64; W],
}

impl<const W: usize> Lanes<W> {
    /// All-zero lanes (the decoded form of the formats' unsigned zero).
    pub const ZERO: Lanes<W> = Lanes { tag: [0; W], exp: [0; W], sig: [0; W] };
}
